"""iptables: filter-table rule administration.

Supported subset: ``-A CHAIN`` / ``-I CHAIN`` / ``-D CHAIN HANDLE`` /
``-F [CHAIN]`` / ``-P CHAIN POLICY`` / ``-L [CHAIN]`` with matches
``-s/-d CIDR``, ``-p tcp|udp|icmp``, ``--sport/--dport N``, ``-i/-o IFACE``,
``-m set --match-set NAME src|dst``, and targets ``-j ACCEPT|DROP|RETURN``.
"""

from __future__ import annotations

from typing import List
from repro.netlink import messages as m
from repro.netsim.addresses import IPv4Prefix
from repro.tools.common import NetlinkTool, ToolError, split_args

PROTO_NAMES = {"tcp": 6, "udp": 17, "icmp": 1}


class IptablesTool(NetlinkTool):
    def run(self, command: str) -> List[str]:
        args = split_args(command)
        if not args:
            raise ToolError("usage: iptables -A|-I|-D|-F|-P|-L ...")
        flag = args[0]
        if flag in ("-A", "-I"):
            return self._add_rule(args)
        if flag == "-D":
            if len(args) != 3:
                raise ToolError("iptables -D CHAIN HANDLE")
            self.request(m.NFT_DELRULE, {"table": "filter", "chain": args[1], "handle": int(args[2])})
            return []
        if flag == "-F":
            chain = args[1] if len(args) > 1 else "*"
            self.request(m.NFT_DELRULE, {"table": "filter", "chain": chain})
            return []
        if flag == "-P":
            if len(args) != 3:
                raise ToolError("iptables -P CHAIN POLICY")
            self.request(m.NFT_SETPOLICY, {"table": "filter", "chain": args[1], "policy": args[2]})
            return []
        if flag == "-L":
            wanted = args[1] if len(args) > 1 else None
            out = []
            for reply in self.request(m.NFT_GETRULE, dump=True):
                a = reply.attrs
                if wanted is not None and a.get("chain") != wanted:
                    continue
                if reply.msg_type == m.NFT_SETPOLICY:
                    out.append(f"Chain {a['chain']} (policy {a['policy']})")
                else:
                    parts = [f"[{a.get('handle', 0)}]"]
                    if "src" in a:
                        parts.append(f"-s {a['src']}/{a.get('src_len', 32)}")
                    if "dst" in a:
                        parts.append(f"-d {a['dst']}/{a.get('dst_len', 32)}")
                    if "match_set" in a:
                        parts.append(f"-m set --match-set {a['match_set']} {a.get('set_dir', 'src')}")
                    parts.append(f"-j {a.get('target', 'ACCEPT')}")
                    out.append(" ".join(parts))
            return out
        raise ToolError(f"unknown iptables flag {flag!r}")

    def _add_rule(self, args: List[str]) -> List[str]:
        chain = args[1] if len(args) > 1 else None
        if chain is None:
            raise ToolError("iptables -A CHAIN [matches] -j TARGET")
        attrs: dict = {"table": "filter", "chain": chain}
        i = 2
        while i < len(args):
            word = args[i]
            if word == "-s":
                prefix = IPv4Prefix.parse(args[i + 1])
                attrs["src"] = prefix.address
                attrs["src_len"] = prefix.length
                i += 2
            elif word == "-d":
                prefix = IPv4Prefix.parse(args[i + 1])
                attrs["dst"] = prefix.address
                attrs["dst_len"] = prefix.length
                i += 2
            elif word == "-p":
                proto = PROTO_NAMES.get(args[i + 1])
                if proto is None:
                    raise ToolError(f"unknown protocol {args[i + 1]!r}")
                attrs["proto"] = proto
                i += 2
            elif word == "--sport":
                attrs["sport"] = int(args[i + 1])
                i += 2
            elif word == "--dport":
                attrs["dport"] = int(args[i + 1])
                i += 2
            elif word == "-i":
                attrs["in_iface"] = args[i + 1]
                i += 2
            elif word == "-o":
                attrs["out_iface"] = args[i + 1]
                i += 2
            elif word == "-m":
                if args[i + 1] not in ("set", "state"):
                    raise ToolError(f"unsupported match {args[i + 1]!r}")
                i += 2
            elif word == "--state":
                attrs["ct_state"] = args[i + 1]
                i += 2
            elif word == "--match-set":
                attrs["match_set"] = args[i + 1]
                if i + 2 < len(args) and args[i + 2] in ("src", "dst"):
                    attrs["set_dir"] = args[i + 2]
                    i += 3
                else:
                    attrs["set_dir"] = "src"
                    i += 2
            elif word == "-j":
                attrs["target"] = args[i + 1]
                i += 2
            else:
                raise ToolError(f"unknown iptables option {word!r}")
        if "target" not in attrs:
            raise ToolError("missing -j TARGET")
        self.request(m.NFT_NEWRULE, attrs)
        return []


def iptables(kernel, command: str) -> List[str]:
    """One-shot ``iptables`` invocation."""
    tool = IptablesTool(kernel)
    try:
        return tool.run(command)
    finally:
        tool.socket.close()
