"""A Flannel-like CNI plugin (vxlan backend).

Configures each node exactly the way real Flannel does, using ONLY the
standard management surface (our netlink-backed tools):

- bridge ``cni0`` with the node's pod-subnet gateway address;
- vxlan device ``flannel.1`` (VNI 1, UDP 8472) with the node's underlay IP;
- per remote node: a route ``10.244.J.0/24 via 10.244.J.0 dev flannel.1``,
  a permanent neighbor entry mapping that gateway to the remote vtep MAC,
  and a vtep FDB entry mapping the remote MAC to the remote node IP;
- ``net.ipv4.ip_forward=1``.

Pod attachment (the CNI ADD operation) creates a veth pair, moves one end
into the pod, enslaves the host end to ``cni0``, and assigns the pod its
IP + default route. Nothing here knows LinuxFP exists.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netsim.addresses import IPv4Addr, MacAddr
from repro.tools import bridge_tool, ip, sysctl

VNI = 1
VXLAN_PORT = 8472


@dataclass
class NodeNetInfo:
    """What Flannel's key-value store holds per node."""

    index: int
    underlay_ip: IPv4Addr
    pod_subnet: str  # e.g. "10.244.1.0/24"
    vtep_mac: MacAddr
    flannel_ip: IPv4Addr  # 10.244.<i>.0


class FlannelDaemon:
    """flanneld for one node."""

    def __init__(self, kernel, node_index: int, underlay_ip: IPv4Addr, underlay_dev: str = "eth0") -> None:
        self.kernel = kernel
        self.node_index = node_index
        self.underlay_ip = underlay_ip
        self.underlay_dev = underlay_dev
        self.pod_subnet = f"10.244.{node_index}.0/24"
        self.gateway_ip = f"10.244.{node_index}.1"
        self.flannel_ip = IPv4Addr.parse(f"10.244.{node_index}.0")
        self._next_pod_host = 2
        self._next_veth = 0

    def start(self) -> NodeNetInfo:
        """Create cni0 + flannel.1; returns this node's published info."""
        k = self.kernel
        sysctl(k, "-w net.ipv4.ip_forward=1")
        ip(k, "link add cni0 type bridge")
        ip(k, f"addr add {self.gateway_ip}/24 dev cni0")
        ip(k, "link set cni0 up")
        ip(
            k,
            f"link add flannel.1 type vxlan id {VNI} local {self.underlay_ip} "
            f"dstport {VXLAN_PORT} dev {self.underlay_dev}",
        )
        ip(k, f"addr add {self.flannel_ip}/32 dev flannel.1")
        ip(k, "link set flannel.1 up")
        vtep_mac = k.devices.by_name("flannel.1").mac
        return NodeNetInfo(
            index=self.node_index,
            underlay_ip=self.underlay_ip,
            pod_subnet=self.pod_subnet,
            vtep_mac=vtep_mac,
            flannel_ip=self.flannel_ip,
        )

    def learn_remote(self, info: NodeNetInfo) -> None:
        """Install the route/ARP/FDB triple for one remote node."""
        if info.index == self.node_index:
            return
        k = self.kernel
        ip(k, f"route add {info.pod_subnet} via {info.flannel_ip} dev flannel.1 onlink")
        ip(k, f"neigh add {info.flannel_ip} lladdr {info.vtep_mac} dev flannel.1")
        bridge_tool(k, f"fdb add {info.vtep_mac} dev flannel.1 dst {info.underlay_ip}")

    # ------------------------------------------------------------- CNI ADD

    def attach_pod(self, pod_kernel) -> str:
        """Wire a pod into cni0; returns the pod's IP address."""
        k = self.kernel
        host_if = f"veth{self.node_index}{self._next_veth:02d}"
        self._next_veth += 1
        pod_ip = f"10.244.{self.node_index}.{self._next_pod_host}"
        self._next_pod_host += 1
        # veth pair with one end in the pod's netns
        k.add_veth_pair(host_if, "eth0", peer_kernel=pod_kernel)
        ip(k, f"link set {host_if} up")
        ip(k, f"link set {host_if} master cni0")
        ip(pod_kernel, "link set eth0 up")
        ip(pod_kernel, f"addr add {pod_ip}/24 dev eth0")
        ip(pod_kernel, f"route add default via {self.gateway_ip}")
        return pod_ip
