"""Kubernetes substrate: nodes, pods, and the Flannel CNI plugin.

Models the paper's §VI-A2 evaluation environment: a multi-node cluster
whose pod networking is configured by an **unmodified** Flannel-like CNI
plugin using only standard kernel APIs (bridge + veth + vxlan + routes +
neighbor/FDB entries installed via netlink). Because the configuration
surface is plain Linux networking, running the LinuxFP controller on each
node transparently accelerates pod-to-pod traffic — no change to the
plugin, pods, or "kubelet" logic.
"""

from repro.k8s.cluster import Cluster, Node, Pod

__all__ = ["Cluster", "Node", "Pod"]
