"""Cluster, nodes, and pods.

A :class:`Cluster` is N nodes on a 192.168.1.0/24 underlay joined by a
learning switch, each running flanneld. Pods are lightweight network
namespaces (their own :class:`~repro.kernel.Kernel`) attached through the
CNI. ``accelerate()`` starts a LinuxFP controller on every node at the TC
hook, exactly as the paper deploys it for this scenario.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.k8s.flannel import FlannelDaemon, NodeNetInfo
from repro.k8s.underlay import UnderlaySwitch
from repro.kernel import Kernel
from repro.netsim.addresses import IPv4Addr
from repro.netsim.clock import Clock
from repro.netsim.cost import CostModel
from repro.tools import ip


@dataclass
class Pod:
    name: str
    kernel: Kernel
    node: "Node"
    ip: str


class Node:
    def __init__(self, cluster: "Cluster", index: int) -> None:
        self.cluster = cluster
        self.index = index
        self.name = f"node{index}"
        self.kernel = Kernel(self.name, clock=cluster.clock, costs=cluster.costs)
        self.underlay_ip = IPv4Addr.parse(f"192.168.1.{10 + index}")
        self.kernel.add_physical("eth0")
        ip(self.kernel, "link set eth0 up")
        ip(self.kernel, f"addr add {self.underlay_ip}/24 dev eth0")
        cluster.switch.attach(self.kernel.devices.by_name("eth0").nic)
        self.flannel = FlannelDaemon(self.kernel, index, self.underlay_ip)
        self.net_info: Optional[NodeNetInfo] = None
        self.pods: List[Pod] = []
        self.controller = None  # LinuxFP, when accelerated

    def host_veth_names(self) -> List[str]:
        return [d.name for d in self.kernel.devices.all() if d.kind == "veth"]


class Cluster:
    """One primary plus ``workers`` worker nodes (paper: 1 + 2)."""

    def __init__(self, workers: int = 2, costs: Optional[CostModel] = None) -> None:
        self.clock = Clock()
        self.costs = costs if costs is not None else CostModel()
        self.switch = UnderlaySwitch()
        self.nodes: List[Node] = [Node(self, i) for i in range(1, workers + 2)]
        self._pod_count = 0
        # flanneld on every node, then full-mesh subnet discovery
        infos = [node.flannel.start() for node in self.nodes]
        for node in self.nodes:
            node.net_info = infos[node.index - 1]
            for info in infos:
                node.flannel.learn_remote(info)

    @property
    def primary(self) -> Node:
        return self.nodes[0]

    @property
    def workers(self) -> List[Node]:
        return self.nodes[1:]

    def create_pod(self, node: Node, name: Optional[str] = None) -> Pod:
        self._pod_count += 1
        pod_name = name or f"pod-{self._pod_count}"
        pod_kernel = Kernel(pod_name, clock=self.clock, costs=self.costs)
        pod_ip = node.flannel.attach_pod(pod_kernel)
        pod = Pod(name=pod_name, kernel=pod_kernel, node=node, ip=pod_ip)
        node.pods.append(pod)
        return pod

    def accelerate(self, enable_ipvs: bool = False) -> None:
        """Install LinuxFP on every node (TC hook, as in the paper)."""
        from repro.core import Controller

        for node in self.nodes:
            node.controller = Controller(node.kernel, hook="tc", enable_ipvs=enable_ipvs)
            node.controller.start()

    def pod_pair(self, intra: bool) -> (Pod, Pod):
        """A (client, server) pod pair, co-located or on different nodes."""
        client_node = self.workers[0]
        server_node = self.workers[0] if intra else self.workers[1]
        return self.create_pod(client_node), self.create_pod(server_node)
