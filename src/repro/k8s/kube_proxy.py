"""kube-proxy (ipvs mode), miniature.

Kubernetes Services give pods a stable virtual IP; kube-proxy's ipvs mode
realizes them by assigning the ClusterIP to a local dummy interface on
every node and programming ipvs with the endpoint pods. The paper names
ipvs ("used in Kubernetes services") as its next acceleration target —
this module provides the substrate that workload runs on.

Like everything else in :mod:`repro.k8s`, configuration happens through
the standard tools (``ip addr`` + ``ipvsadm``), so the LinuxFP controller
with ``enable_ipvs=True`` can accelerate established service flows
transparently.

Simplification: replies travel directly from the endpoint pod to the
client (our toy sockets demultiplex by port only, so the missing source
un-NAT is invisible); real ipvs NAT mode rewrites them on the director.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List

from repro.k8s.cluster import Cluster, Pod
from repro.tools import ip, ipvsadm


class ServiceError(ValueError):
    """Invalid service operation."""


@dataclass
class Service:
    name: str
    cluster_ip: str
    port: int
    target_port: int
    endpoints: List[Pod] = field(default_factory=list)


class KubeProxy:
    """Programs every node's ipvs tables for the cluster's Services."""

    def __init__(self, cluster: Cluster) -> None:
        self.cluster = cluster
        self.services: Dict[str, Service] = {}
        self._ip_alloc = itertools.count(1)

    def create_service(
        self, name: str, port: int, endpoints: List[Pod], target_port: int = None
    ) -> Service:
        if name in self.services:
            raise ServiceError(f"service {name!r} exists")
        if not endpoints:
            raise ServiceError("a service needs at least one endpoint")
        service = Service(
            name=name,
            cluster_ip=f"10.96.0.{next(self._ip_alloc)}",
            port=port,
            target_port=target_port if target_port is not None else port,
            endpoints=list(endpoints),
        )
        for node in self.cluster.nodes:
            ip(node.kernel, f"addr add {service.cluster_ip}/32 dev lo")
            ipvsadm(node.kernel, f"-A -t {service.cluster_ip}:{service.port} -s rr")
            for pod in service.endpoints:
                ipvsadm(
                    node.kernel,
                    f"-a -t {service.cluster_ip}:{service.port} -r {pod.ip}:{service.target_port}",
                )
        self.services[name] = service
        return service

    def add_endpoint(self, name: str, pod: Pod) -> None:
        service = self._require(name)
        service.endpoints.append(pod)
        for node in self.cluster.nodes:
            ipvsadm(
                node.kernel,
                f"-a -t {service.cluster_ip}:{service.port} -r {pod.ip}:{service.target_port}",
            )

    def remove_endpoint(self, name: str, pod: Pod) -> None:
        service = self._require(name)
        if pod not in service.endpoints:
            raise ServiceError(f"{pod.name} is not an endpoint of {name!r}")
        service.endpoints.remove(pod)
        for node in self.cluster.nodes:
            ipvsadm(
                node.kernel,
                f"-d -t {service.cluster_ip}:{service.port} -r {pod.ip}:{service.target_port}",
            )

    def delete_service(self, name: str) -> None:
        service = self._require(name)
        for node in self.cluster.nodes:
            ipvsadm(node.kernel, f"-D -t {service.cluster_ip}:{service.port}")
            ip(node.kernel, f"addr del {service.cluster_ip}/32 dev lo")
        del self.services[name]

    def _require(self, name: str) -> Service:
        service = self.services.get(name)
        if service is None:
            raise ServiceError(f"no service {name!r}")
        return service
