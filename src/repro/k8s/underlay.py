"""The cluster underlay: a learning L2 switch joining the node NICs."""

from __future__ import annotations

from typing import Dict, List

from repro.netsim.addresses import MacAddr
from repro.netsim.nic import NIC, Wire


class UnderlaySwitch:
    """A simple learning switch with one port per node."""

    def __init__(self, name: str = "tor") -> None:
        self.name = name
        self.ports: List[NIC] = []
        self.mac_table: Dict[MacAddr, int] = {}

    def attach(self, peer_nic: NIC) -> None:
        """Create a switch port and wire it to ``peer_nic``."""
        port = NIC(f"{self.name}-p{len(self.ports)}")
        port_index = len(self.ports)
        self.ports.append(port)
        port.attach(lambda frame, queue, idx=port_index: self._forward(idx, frame))
        Wire(port, peer_nic)

    def _forward(self, in_port: int, frame: bytes) -> None:
        if len(frame) < 14:
            return
        dst = MacAddr.from_bytes(frame[0:6])
        src = MacAddr.from_bytes(frame[6:12])
        self.mac_table[src] = in_port
        out = self.mac_table.get(dst)
        if out is not None and not dst.is_multicast:
            if out != in_port:
                self.ports[out].transmit(frame)
            return
        for index, port in enumerate(self.ports):
            if index != in_port:
                port.transmit(frame)
