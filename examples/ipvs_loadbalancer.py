#!/usr/bin/env python3
"""ipvs load balancing: the paper's future-work acceleration, prototyped.

The paper leaves ipvs (Linux's L4 load balancer, used by kube-proxy) as
future work with "initial prototyping showing promising results". This
repo includes that prototype: with ``Controller(enable_ipvs=True)`` the
synthesized fast path DNATs established flows via the conntrack helper,
while first packets still reach the slow path where the scheduler runs.

Run: python examples/ipvs_loadbalancer.py
"""

from collections import Counter

from repro.core import Controller
from repro.measure import LineTopology, Pktgen
from repro.netsim.packet import IPPROTO_TCP, make_tcp
from repro.tools import ip, ipvsadm, sysctl


def main() -> None:
    topo = LineTopology()
    dut = topo.dut
    # real servers live behind the sink; the VIP is on the DUT
    ip(dut, "addr add 10.96.0.1/32 dev lo")
    for i in range(3):
        ip(dut, f"route add 10.200.{i}.0/24 via 10.0.2.2")
    ipvsadm(dut, "-A -t 10.96.0.1:80 -s rr")
    for i in range(3):
        ipvsadm(dut, f"-a -t 10.96.0.1:80 -r 10.200.{i}.10:8080")
    topo.prewarm_neighbors()

    print("ipvs service:", "\n  ".join([""] + ipvsadm(dut, "-L")))

    # observe scheduling: new flows hit the slow path and get pinned
    backends = Counter()
    topo.sink_eth.nic.attach(
        lambda frame, q: backends.update(
            [__import__("repro.netsim.packet", fromlist=["Packet"]).Packet.from_bytes(frame).ip.dst]
        )
    )
    for flow in range(9):
        frame = make_tcp(topo.src_eth.mac, topo.dut_in.mac, "10.0.1.2", "10.96.0.1",
                         sport=10000 + flow, dport=80).to_bytes()
        topo.dut_in.nic.receive_from_wire(frame)
    print("\nround-robin distribution over 9 new flows:")
    for backend, count in sorted(backends.items(), key=lambda kv: str(kv[0])):
        print(f"  {backend}: {count} flows")

    # accelerate: established flows bypass the slow path
    controller = Controller(dut, hook="xdp", enable_ipvs=True)
    controller.start()
    print(f"\nfast paths: {controller.deployed_summary()}")

    # steady-state packets of a pinned flow take the fast path DNAT
    flow_frames = [
        make_tcp(topo.src_eth.mac, topo.dut_in.mac, "10.0.1.2", "10.96.0.1",
                 sport=10000, dport=80).to_bytes()
    ]
    generator = Pktgen(topo, frames=flow_frames)
    result = generator.throughput(cores=1, packets=800)
    print(f"established-flow fast path: {result.mpps:.3f} Mpps ({result.per_packet_ns:.0f} ns/pkt)")
    entry = controller.deployer.deployed["eth0"].current
    assert "fpm_ipvs" in entry.source
    print("(fpm_ipvs synthesized into the fast path; scheduler stays in the slow path)")


if __name__ == "__main__":
    main()
