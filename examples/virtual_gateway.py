#!/usr/bin/env python3
"""Virtual gateway: filtering + forwarding, and the ipset optimization.

Reproduces the paper's §VI-A1 gateway scenario end to end:

- a 100-address blacklist as plain iptables rules (linear scan — both the
  kernel and LinuxFP's ``bpf_ipt_lookup`` helper pay per rule);
- the same blacklist aggregated into one ipset-backed rule (O(1) lookup);
- a comparison against the Polycube baseline's bitvector classifier.

Run: python examples/virtual_gateway.py
"""

from repro.measure.pktgen import Pktgen
from repro.measure.scenarios import blacklist_address, setup_gateway
from repro.netsim.packet import make_udp


def throughput(topo):
    return Pktgen(topo).throughput(cores=1, packets=1000)


def main() -> None:
    print("virtual gateway: 50 prefixes + 100-address blacklist, one core\n")

    rows = []
    for label, platform, kwargs in (
        ("Linux (iptables)", "linux", {}),
        ("Linux (ipset)", "linux", {"use_ipset": True}),
        ("LinuxFP (iptables)", "linuxfp", {}),
        ("LinuxFP (ipset)", "linuxfp", {"use_ipset": True}),
        ("Polycube", "polycube", {}),
        ("VPP", "vpp", {}),
    ):
        topo = setup_gateway(platform, **kwargs)
        result = throughput(topo)
        rows.append((label, result))
        print(f"{label:20s} {result.mpps:6.3f} Mpps   ({result.per_packet_ns:5.0f} ns/pkt)")

    print("\nfiltering correctness (blacklisted source must be dropped):")
    topo = setup_gateway("linuxfp", use_ipset=True)
    delivered = []
    topo.sink_eth.nic.attach(lambda frame, q: delivered.append(frame))
    blocked = make_udp(topo.src_eth.mac, topo.dut_in.mac, blacklist_address(7), "10.100.0.1").to_bytes()
    allowed = make_udp(topo.src_eth.mac, topo.dut_in.mac, "10.0.1.2", "10.100.0.1").to_bytes()
    topo.dut_in.nic.receive_from_wire(blocked)
    topo.dut_in.nic.receive_from_wire(allowed)
    print(f"  sent 1 blacklisted + 1 clean packet -> {len(delivered)} delivered "
          f"({'OK' if len(delivered) == 1 else 'WRONG'})")

    print("\nrule-count scaling (the Fig 8 story, 64B packets):")
    print(f"{'rules':>8s} {'Linux':>8s} {'LinuxFP':>8s} {'LFP+ipset':>10s} {'Polycube':>9s}")
    for rules in (10, 100, 500):
        cells = []
        for platform, kwargs in (("linux", {}), ("linuxfp", {}), ("linuxfp", {"use_ipset": True}), ("polycube", {})):
            topo = setup_gateway(platform, num_rules=rules, **kwargs)
            cells.append(throughput(topo).mpps)
        print(f"{rules:8d} " + " ".join(f"{c:8.3f}" for c in cells[:2]) + f" {cells[2]:10.3f} {cells[3]:9.3f}")


if __name__ == "__main__":
    main()
