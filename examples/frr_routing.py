#!/usr/bin/env python3
"""Control-plane software works unmodified: FRR-style dynamic routing.

Two routers exchange routes with a distance-vector daemon (our FRR stand-
in). The daemon installs learned routes through netlink — and the LinuxFP
controller, watching the same netlink surface, keeps the fast path current
as routes come and go. Neither program knows about the other.

Run: python examples/frr_routing.py
"""

from repro.core import Controller
from repro.kernel import Kernel
from repro.netsim.addresses import IPv4Addr
from repro.netsim.clock import Clock
from repro.netsim.nic import Wire
from repro.tools import ip, sysctl
from repro.tools.frr import FrrDaemon, converge


def make_router(name: str, clock: Clock, lan: str, wan: str) -> Kernel:
    kernel = Kernel(name, clock=clock)
    kernel.add_physical("lan0")
    kernel.add_physical("wan0")
    ip(kernel, "link set lan0 up")
    ip(kernel, "link set wan0 up")
    ip(kernel, f"addr add {lan} dev lan0")
    ip(kernel, f"addr add {wan} dev wan0")
    sysctl(kernel, "-w net.ipv4.ip_forward=1")
    return kernel


def main() -> None:
    clock = Clock()
    r1 = make_router("r1", clock, "10.1.0.1/24", "192.168.0.1/30")
    r2 = make_router("r2", clock, "10.2.0.1/24", "192.168.0.2/30")
    Wire(r1.devices.by_name("wan0").nic, r2.devices.by_name("wan0").nic)

    # LinuxFP first: routers are already forwarding-capable
    ctl1 = Controller(r1, hook="xdp")
    ctl1.start()
    print(f"r1 fast paths before routing protocol: {ctl1.deployed_summary()}")

    # FRR-style daemons discover and exchange routes
    d1, d2 = FrrDaemon(r1, "1.1.1.1"), FrrDaemon(r2, "2.2.2.2")
    d1.learn_connected()
    d2.learn_connected()
    d1.add_peer(d2, IPv4Addr.parse("192.168.0.1"))
    d2.add_peer(d1, IPv4Addr.parse("192.168.0.2"))
    rounds = converge([d1, d2])
    print(f"routing protocol converged in {rounds} rounds")

    route = r1.fib.lookup("10.2.0.42")
    print(f"r1 learned: 10.2.0.0/24 via {route.gateway} (installed over netlink)")
    print(f"r1 fast paths after convergence:       {ctl1.deployed_summary()}")
    print(f"controller reactions so far: {len(ctl1.reactions)} "
          f"(last took {ctl1.last_reaction_seconds() * 1e3:.2f} ms)")

    # a withdrawal flows through the same machinery
    prefix = next(iter(d2.rib))
    from repro.tools.frr import Advertisement, INFINITY_METRIC
    from repro.netsim.addresses import IPv4Prefix

    withdrawn = IPv4Prefix.parse("10.2.0.0/24")
    d1.receive(Advertisement(origin="2.2.2.2", prefix=withdrawn, metric=INFINITY_METRIC,
                             next_hop=IPv4Addr.parse("192.168.0.2")))
    print(f"after withdrawal, r1 route to 10.2.0.42: {r1.fib.lookup('10.2.0.42')}")
    print(f"r1 fast paths: {ctl1.deployed_summary()} (falls back to slow path when routing empties)")


if __name__ == "__main__":
    main()
