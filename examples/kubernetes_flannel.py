#!/usr/bin/env python3
"""Kubernetes: accelerate an unmodified Flannel CNI.

Builds a 3-node cluster whose pod network is configured by a Flannel-like
CNI plugin using only standard kernel APIs, runs netperf-style TCP_RR
between pods (co-located and across nodes), then installs LinuxFP on every
node at the TC hook. The plugin, the pods, and the workload are untouched —
throughput goes up anyway (paper §VI-A2).

Run: python examples/kubernetes_flannel.py
"""

from repro.measure.k8s_bench import measure_pod_rr


def main() -> None:
    print("3-node cluster, Flannel (vxlan backend), netperf TCP_RR, 1 pod pair\n")

    rows = []
    for label, intra, accel in (
        ("Linux (intra)", True, False),
        ("LinuxFP (intra)", True, True),
        ("Linux (inter)", False, False),
        ("LinuxFP (inter)", False, True),
    ):
        result = measure_pod_rr(intra=intra, accelerated=accel, transactions=2000)
        rows.append((label, result))
        print(f"{label:18s} avg={result.avg_ms:7.3f} ms  p99={result.p99_ms:6.1f} ms  "
              f"tput={result.transactions_per_s:7.0f} tps")

    intra_gain = rows[1][1].transactions_per_s / rows[0][1].transactions_per_s
    inter_gain = rows[3][1].transactions_per_s / rows[2][1].transactions_per_s
    print(f"\nthroughput gain: intra {intra_gain * 100:.0f}%  inter {inter_gain * 100:.0f}%  "
          f"(paper: 120% / 116%)")

    # what got deployed, per node, without touching Flannel:
    from repro.k8s import Cluster
    from repro.measure.k8s_bench import container_cost_model

    cluster = Cluster(workers=2, costs=container_cost_model())
    cluster.pod_pair(intra=True)
    cluster.accelerate()
    node = cluster.workers[0]
    print(f"\nfast paths on {node.name} (TC hook):")
    for ifname, chain in node.controller.deployed_summary().items():
        print(f"  {ifname:10s} {chain}")


if __name__ == "__main__":
    main()
