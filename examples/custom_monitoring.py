#!/usr/bin/env python3
"""Custom functionality in the pipeline (paper §VIII future work).

Two extensions the paper sketches, both implemented here:

1. a **custom monitoring FPM** woven into every synthesized fast path
   (per-protocol counters exported through a shared map);
2. an **AF_XDP-style userspace path**: an XDP program steering selected
   raw frames directly to a userspace socket, bypassing the stack.

Run: python examples/custom_monitoring.py
"""

from repro.core import Controller
from repro.core.custom import make_protocol_counter, read_protocol_counter
from repro.ebpf.af_xdp import XskMap, XskSocket
from repro.ebpf.loader import Loader
from repro.ebpf.minic import compile_c
from repro.measure import LineTopology
from repro.netsim.packet import IPPROTO_ICMP, IPPROTO_TCP, IPPROTO_UDP, Packet, make_tcp, make_udp


def monitoring_demo() -> None:
    print("=== custom monitoring FPM ===")
    topo = LineTopology()
    topo.install_prefixes(5)
    counter = make_protocol_counter("mon")
    controller = Controller(topo.dut, hook="xdp", custom_fpms=[counter])
    controller.start()
    topo.prewarm_neighbors()

    for __ in range(7):
        topo.dut_in.nic.receive_from_wire(
            make_udp(topo.src_eth.mac, topo.dut_in.mac, "10.0.1.2", topo.flow_destination(0, 5)).to_bytes()
        )
    for __ in range(3):
        topo.dut_in.nic.receive_from_wire(
            make_tcp(topo.src_eth.mac, topo.dut_in.mac, "10.0.1.2", topo.flow_destination(1, 5)).to_bytes()
        )

    print("synthesized chain:", controller.deployed_summary()["eth0"],
          "(+ fpm_mon at ingress)")
    for name, proto in (("UDP", IPPROTO_UDP), ("TCP", IPPROTO_TCP), ("ICMP", IPPROTO_ICMP)):
        print(f"  {name:4s} packets seen by the fast path: {read_protocol_counter(counter, proto)}")


STEER_PROG = """
extern map xsks;
u32 main(u8* pkt, u64 len, u64 ifindex) {
    // steer UDP/9000 ("telemetry") to userspace; the stack gets the rest
    if (len < 34) { return 2; }
    if (ld16(pkt, 12) != 0x0800) { return 2; }
    if (ld8(pkt, 23) != 17) { return 2; }
    if (ld16(pkt, 36) != 9000) { return 2; }
    return redirect_xsk(xsks, 0, 2);
}
"""


def af_xdp_demo() -> None:
    print("\n=== AF_XDP userspace steering ===")
    from repro.kernel import Kernel

    kernel = Kernel("edge")
    dev = kernel.add_physical("eth0")
    kernel.set_link("eth0", True)
    kernel.add_address("eth0", "10.0.0.1/24")

    xsks = XskMap("xsks")
    socket = XskSocket(kernel, dev.ifindex)
    xsks.set_socket(0, socket)
    loader = Loader(kernel)
    loader.attach_xdp("eth0", loader.load(compile_c(STEER_PROG, name="steer", hook="xdp", maps={"xsks": xsks})))

    for dport in (9000, 53, 9000, 443, 9000):
        dev.nic.receive_from_wire(
            make_udp("02:aa:00:00:00:01", dev.mac, "10.0.0.2", "10.0.0.1", dport=dport).to_bytes()
        )
    frames = socket.recv()
    print(f"userspace app drained {len(frames)} raw frames "
          f"(ports: {[Packet.from_bytes(f).l4.dport for f in frames]})")
    print(f"kernel stack handled the other {kernel.stack.drops['no_socket']} packets")


if __name__ == "__main__":
    monitoring_demo()
    af_xdp_demo()
