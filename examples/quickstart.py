#!/usr/bin/env python3
"""Quickstart: transparently accelerate a Linux virtual router.

The LinuxFP workflow in one file:

1. build a source ── DUT ── sink testbed (simulated 25G links);
2. configure the DUT *only* with standard tools (``ip route``, ``sysctl``);
3. measure Linux forwarding;
4. start the LinuxFP controller — it introspects the kernel over netlink,
   synthesizes a minimal XDP fast path, and deploys it;
5. measure again: same configuration, same tools, ~1.8x the throughput.

Run: python examples/quickstart.py
"""

from repro.core import Controller
from repro.measure import LineTopology, Pktgen
from repro.tools import ip, sysctl


def main() -> None:
    # 1. testbed
    topo = LineTopology(dut_forwarding=False)
    dut = topo.dut

    # 2. configure the router with plain iproute2 + sysctl (50 prefixes,
    #    like the paper's virtual-router experiment)
    sysctl(dut, "-w net.ipv4.ip_forward=1")
    for i in range(50):
        ip(dut, f"route add 10.{100 + i}.0.0/16 via 10.0.2.2")
    topo.prewarm_neighbors()

    # 3. baseline: the Linux slow path
    baseline = Pktgen(topo).throughput(cores=1, packets=1500)
    print(f"Linux forwarding : {baseline.mpps:6.3f} Mpps  ({baseline.per_packet_ns:.0f} ns/pkt)")

    # 4. start LinuxFP — nothing else changes
    controller = Controller(dut, hook="xdp")
    controller.start()
    print(f"LinuxFP deployed : {controller.deployed_summary()}")

    # 5. measure again with the identical workload
    accelerated = Pktgen(topo).throughput(cores=1, packets=1500)
    print(f"LinuxFP fast path: {accelerated.mpps:6.3f} Mpps  ({accelerated.per_packet_ns:.0f} ns/pkt)")
    print(f"speedup          : {accelerated.pps / baseline.pps:.2f}x  (paper: 1.77x)")

    # the fast path is synthesized C, compiled to verified bytecode:
    path = controller.deployer.deployed["eth0"].current
    print("\n--- synthesized fast path for eth0 (excerpt) ---")
    for line in path.source.strip().splitlines()[:14]:
        print(line)
    print(f"... compiled to {len(path.program)} instructions, "
          f"verified and hot-swapped via tail call")

    # transparency: change the config with iptables, LinuxFP reacts
    from repro.tools import iptables

    iptables(dut, "-A FORWARD -s 172.16.0.0/24 -j DROP")
    print(f"\nafter 'iptables -A FORWARD ... -j DROP': {controller.deployed_summary()}")
    print(f"reaction time: {controller.last_reaction_seconds() * 1e3:.1f} ms")


if __name__ == "__main__":
    main()
