"""Tests for Service Introspection and the Topology Manager."""

import json

import pytest

from repro.core.graph import TopologyManager
from repro.core.introspection import ServiceIntrospection
from repro.kernel import Kernel
from repro.tools import brctl, ip, ipset, iptables, ipvsadm, sysctl


@pytest.fixture
def kernel():
    k = Kernel("intro-test")
    k.add_physical("eth0")
    k.add_physical("eth1")
    k.set_link("eth0", True)
    k.set_link("eth1", True)
    return k


def start_introspection(kernel):
    intro = ServiceIntrospection(kernel.bus.open_socket())
    intro.start()
    return intro


class TestIntrospection:
    def test_initial_dump_sees_interfaces(self, kernel):
        intro = start_introspection(kernel)
        names = sorted(i.name for i in intro.view.interfaces.values())
        assert names == ["eth0", "eth1", "lo"]

    def test_initial_dump_sees_addresses_and_routes(self, kernel):
        ip(kernel, "addr add 10.0.1.1/24 dev eth0")
        intro = start_introspection(kernel)
        eth0 = intro.view.interface_by_name("eth0")
        assert eth0.has_l3
        assert len(intro.view.routes) == 1  # the connected route

    def test_notifications_update_view(self, kernel):
        intro = start_introspection(kernel)
        ip(kernel, "addr add 10.0.1.1/24 dev eth0")
        sysctl(kernel, "-w net.ipv4.ip_forward=1")
        assert intro.view.interface_by_name("eth0").has_l3
        assert intro.view.ip_forward
        assert intro.events_seen >= 2

    def test_link_deletion(self, kernel):
        intro = start_introspection(kernel)
        brctl(kernel, "addbr br0")
        assert intro.view.interface_by_name("br0") is not None
        brctl(kernel, "delbr br0")
        assert intro.view.interface_by_name("br0") is None

    def test_bridge_attrs_tracked(self, kernel):
        intro = start_introspection(kernel)
        brctl(kernel, "addbr br0")
        brctl(kernel, "stp br0 on")
        assert intro.view.interface_by_name("br0").stp_enabled

    def test_enslavement_tracked(self, kernel):
        intro = start_introspection(kernel)
        brctl(kernel, "addbr br0")
        ip(kernel, "link set eth0 master br0")
        br_ifindex = intro.view.interface_by_name("br0").ifindex
        assert intro.view.interface_by_name("eth0").master == br_ifindex
        ip(kernel, "link set eth0 nomaster")
        assert intro.view.interface_by_name("eth0").master is None

    def test_filter_rules_tracked(self, kernel):
        intro = start_introspection(kernel)
        iptables(kernel, "-A FORWARD -s 1.2.3.0/24 -j DROP")
        assert len(intro.view.filter.rules["FORWARD"]) == 1
        iptables(kernel, "-F FORWARD")
        assert len(intro.view.filter.rules["FORWARD"]) == 0

    def test_rule_deletion_by_handle(self, kernel):
        intro = start_introspection(kernel)
        iptables(kernel, "-A FORWARD -s 1.2.3.0/24 -j DROP")
        handle = kernel.netfilter.chain("FORWARD").rules[0].handle
        iptables(kernel, f"-D FORWARD {handle}")
        assert len(intro.view.filter.rules["FORWARD"]) == 0

    def test_ipset_and_policy_tracked(self, kernel):
        intro = start_introspection(kernel)
        ipset(kernel, "create bl hash:ip")
        iptables(kernel, "-P FORWARD DROP")
        assert "bl" in intro.view.ipsets
        assert intro.view.filter.policies["FORWARD"] == "DROP"

    def test_ipvs_tracked(self, kernel):
        intro = start_introspection(kernel)
        ipvsadm(kernel, "-A -t 10.96.0.1:80 -s rr")
        ipvsadm(kernel, "-a -t 10.96.0.1:80 -r 10.244.1.10:8080")
        assert len(intro.view.ipvs_services) == 1
        assert intro.view.ipvs_services[0].dest_count == 1

    def test_route_removal_on_link_down(self, kernel):
        intro = start_introspection(kernel)
        ip(kernel, "addr add 10.0.1.1/24 dev eth0")
        assert len(intro.view.routes) == 1
        ip(kernel, "link set eth0 down")
        assert len(intro.view.routes) == 0

    def test_existing_state_before_start(self, kernel):
        """The controller can start on an already-configured system."""
        ip(kernel, "addr add 10.0.1.1/24 dev eth0")
        iptables(kernel, "-A FORWARD -j ACCEPT")
        sysctl(kernel, "-w net.ipv4.ip_forward=1")
        intro = start_introspection(kernel)
        assert intro.view.ip_forward
        assert len(intro.view.filter.rules["FORWARD"]) == 1


class TestTopologyManager:
    def configure_router(self, kernel):
        ip(kernel, "addr add 10.0.1.1/24 dev eth0")
        ip(kernel, "addr add 10.0.2.1/24 dev eth1")
        ip(kernel, "route add 10.99.0.0/16 via 10.0.2.2")
        sysctl(kernel, "-w net.ipv4.ip_forward=1")

    def test_empty_config_empty_graph(self, kernel):
        intro = start_introspection(kernel)
        graph = TopologyManager().build(intro.view)
        assert all(g.empty for g in graph.interfaces.values())

    def test_router_graph(self, kernel):
        self.configure_router(kernel)
        intro = start_introspection(kernel)
        graph = TopologyManager().build(intro.view)
        for name in ("eth0", "eth1"):
            nodes = graph.interfaces[name].nodes
            assert [n.nf for n in nodes] == ["router"]

    def test_ip_forward_off_means_no_router(self, kernel):
        self.configure_router(kernel)
        sysctl(kernel, "-w net.ipv4.ip_forward=0")
        intro = start_introspection(kernel)
        graph = TopologyManager().build(intro.view)
        assert all(g.empty for g in graph.interfaces.values())

    def test_gateway_graph_filter_before_router(self, kernel):
        self.configure_router(kernel)
        iptables(kernel, "-A FORWARD -s 172.16.0.0/24 -j DROP")
        intro = start_introspection(kernel)
        graph = TopologyManager().build(intro.view)
        nodes = graph.interfaces["eth0"].nodes
        assert [n.nf for n in nodes] == ["filter", "router"]
        assert nodes[0].next_nf == "router"
        assert nodes[0].conf["chain"] == "FORWARD"

    def test_bridge_graph(self, kernel):
        brctl(kernel, "addbr br0")
        ip(kernel, "link set br0 up")
        ip(kernel, "link set eth0 master br0")
        intro = start_introspection(kernel)
        graph = TopologyManager().build(intro.view)
        nodes = graph.interfaces["eth0"].nodes
        assert [n.nf for n in nodes] == ["bridge"]
        assert nodes[0].next_nf is None  # pure L2

    def test_bridge_with_l3_chains_router(self, kernel):
        brctl(kernel, "addbr br0")
        ip(kernel, "link set br0 up")
        ip(kernel, "link set eth0 master br0")
        ip(kernel, "addr add 10.0.5.1/24 dev br0")
        ip(kernel, "addr add 10.0.2.1/24 dev eth1")
        ip(kernel, "route add 10.99.0.0/16 via 10.0.2.2")
        sysctl(kernel, "-w net.ipv4.ip_forward=1")
        intro = start_introspection(kernel)
        graph = TopologyManager().build(intro.view)
        bridge_node = graph.interfaces["eth0"].node("bridge")
        assert bridge_node.next_nf == "router"
        assert bridge_node.conf["bridge_mac"] is not None

    def test_bridge_conf_subkeys(self, kernel):
        brctl(kernel, "addbr br0")
        brctl(kernel, "stp br0 on")
        ip(kernel, "link set br0 up")
        ip(kernel, "link set eth0 master br0")
        intro = start_introspection(kernel)
        graph = TopologyManager().build(intro.view)
        conf = graph.interfaces["eth0"].node("bridge").conf
        assert conf["STP_enabled"] is True
        assert conf["VLAN_enabled"] is False

    def test_ipvs_node_behind_flag(self, kernel):
        self.configure_router(kernel)
        ipvsadm(kernel, "-A -t 10.96.0.1:80")
        intro = start_introspection(kernel)
        graph_off = TopologyManager(enable_ipvs=False).build(intro.view)
        assert graph_off.interfaces["eth0"].node("ipvs") is None
        graph_on = TopologyManager(enable_ipvs=True).build(intro.view)
        node = graph_on.interfaces["eth0"].node("ipvs")
        assert node is not None and node.conf["services"][0]["port"] == 80

    def test_target_interface_restriction(self, kernel):
        self.configure_router(kernel)
        intro = start_introspection(kernel)
        graph = TopologyManager().build(intro.view, target_interfaces=["eth0"])
        assert "eth1" not in graph.interfaces

    def test_json_model_shape(self, kernel):
        """The Fig 3 JSON model: keys = FPMs, sub-keys = conf + next_nf."""
        self.configure_router(kernel)
        iptables(kernel, "-A FORWARD -j ACCEPT")
        intro = start_introspection(kernel)
        graph = TopologyManager().build(intro.view)
        model = json.loads(graph.to_json())
        assert set(model["eth0"].keys()) == {"filter", "router"}
        assert model["eth0"]["filter"]["next_nf"] == "router"
        assert "conf" in model["eth0"]["router"]

    def test_signature_stability(self, kernel):
        self.configure_router(kernel)
        intro = start_introspection(kernel)
        manager = TopologyManager()
        assert manager.build(intro.view).signature() == manager.build(intro.view).signature()
