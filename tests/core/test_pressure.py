"""State pressure: fast/slow equivalence with every table at capacity.

The resilience claim under test: when conntrack hits ``nf_conntrack_max``,
the flow cache hits its LRU capacity, and a custom FPM's flow-keyed map is
full, the accelerated pipeline must *degrade*, never *diverge* — identical
per-packet outcomes to plain Linux, with the pressure visible on counters
(``early_drops``, ``evictions``, ``update_errors``) instead of exceptions.

The final class is the PR's acceptance workload: 10 000 mixed packets
(valid flows cycling far beyond every capacity, plus hostile frames) with
an atomic redeploy mid-stream that must carry flow state across via the
Deployer's live map migration.
"""

import pytest

from repro.core import Controller
from repro.core.custom import flow_counter_key, make_flow_counter
from repro.kernel.netfilter import Rule
from repro.measure.topology import LineTopology
from repro.netsim.addresses import IPv4Addr
from repro.netsim.packet import make_udp
from repro.observability.drop_reasons import reason_names

NUM_PREFIXES = 8


def build_dut(rules=(), accelerated=False, conntrack_max=None, flow_cache=False,
              custom_fpms=None):
    topo = LineTopology()
    topo.install_prefixes(NUM_PREFIXES)
    if conntrack_max is not None:
        topo.dut.sysctl_set("net.netfilter.nf_conntrack_max", str(conntrack_max))
    for rule in rules:
        topo.dut.ipt_append("FORWARD", rule)
    controller = None
    if accelerated:
        controller = Controller(
            topo.dut, hook="xdp", flow_cache=flow_cache,
            custom_fpms=list(custom_fpms or []),
        )
        controller.start()
    topo.prewarm_neighbors()
    delivered = []
    topo.sink_eth.nic.attach(lambda frame, q: delivered.append(frame))
    return topo, controller, delivered


def drive_flows(topo, delivered, count, sport_base=1024):
    """One UDP packet per distinct flow; True per packet iff it reached the sink."""
    results = []
    for i in range(count):
        frame = make_udp(
            topo.src_eth.mac, topo.dut_in.mac, "10.0.1.2",
            topo.flow_destination(i, NUM_PREFIXES),
            sport=sport_base + i, dport=9, ttl=16,
        ).to_bytes()
        before = len(delivered)
        topo.dut_in.nic.receive_from_wire(frame)
        results.append(len(delivered) > before)
    return results


def assert_conserved(stack):
    pending = stack.pending_packets()
    assert stack.rx_packets + stack.tx_local_packets == stack.settled + pending
    assert stack.settled == sum(stack.outcomes.values()) + stack.dropped


class TestDifferentialUnderPressure:
    def test_conntrack_at_capacity_no_divergence(self):
        # a stateful FORWARD rule forces conntrack onto the forward path;
        # with nf_conntrack_max far below the flow count both pipelines
        # must early-drop identically and still agree on every packet
        rules = [Rule(target="ACCEPT", ct_state="NEW")]
        slow, _, slow_out = build_dut(rules, accelerated=False, conntrack_max=8)
        fast, _, fast_out = build_dut(rules, accelerated=True, conntrack_max=8)
        assert drive_flows(slow, slow_out, 64) == drive_flows(fast, fast_out, 64)
        for topo in (slow, fast):
            ct = topo.dut.conntrack
            assert len(ct) <= 8
            assert ct.early_drops > 0
            assert_conserved(topo.dut.stack)
        assert slow.dut.conntrack.early_drops == fast.dut.conntrack.early_drops

    def test_flow_cache_at_capacity_no_divergence(self):
        slow, _, slow_out = build_dut(accelerated=False)
        fast, _, fast_out = build_dut(accelerated=True, flow_cache=True)
        fast.dut.flow_cache.capacity = 8
        # first pass populates (and overflows) the cache; second replays
        for _ in range(2):
            assert drive_flows(slow, slow_out, 32) == drive_flows(fast, fast_out, 32)
        assert fast.dut.flow_cache.stats.evictions > 0
        assert [f[14:] for f in slow_out] == [f[14:] for f in fast_out]
        assert_conserved(fast.dut.stack)

    def test_flow_keyed_map_at_capacity_keeps_forwarding(self):
        # the synthesizer upgrades the flow-keyed hash to LRU: inserts past
        # max_flows evict instead of failing, and forwarding never flinches
        flowmon = make_flow_counter(max_flows=8)
        slow, _, slow_out = build_dut(accelerated=False)
        fast, _, fast_out = build_dut(accelerated=True, custom_fpms=[flowmon])
        assert drive_flows(slow, slow_out, 32) == drive_flows(fast, fast_out, 32)
        assert all(drive_flows(fast, fast_out, 32, sport_base=5000))
        flows = next(iter(flowmon.maps.values()))
        assert flows.map_type == "lru_hash"
        assert len(flows) <= 8
        assert flows.evictions > 0
        assert flows.update_errors == 0  # LRU degrades by evicting, not failing
        assert_conserved(fast.dut.stack)


class TestAcceptanceWorkload:
    """10k mixed packets at capacity, with an atomic redeploy mid-stream."""

    TOTAL = 10_000
    REDEPLOY_AT = 5_000
    HOSTILE_EVERY = 41     # garbage / truncated frames interleaved
    HOT_EVERY = 10         # one hot flow kept warm so LRU never evicts it
    FLOWS = 200            # distinct cold flows, cycling

    def _cold_frame(self, topo, i):
        flow = i % self.FLOWS
        return make_udp(
            topo.src_eth.mac, topo.dut_in.mac, "10.0.1.2",
            topo.flow_destination(flow, NUM_PREFIXES),
            sport=10_000 + flow, dport=9, ttl=16,
        ).to_bytes()

    def _hot_frame(self, topo):
        return make_udp(
            topo.src_eth.mac, topo.dut_in.mac, "10.0.1.2",
            topo.flow_destination(0, NUM_PREFIXES),
            sport=55_555, dport=9, ttl=16,
        ).to_bytes()

    def _hot_count(self, controller):
        entry = controller.deployer.deployed["eth0"]
        flows = next(m for m in entry.current.program.maps if m.name == "flowmon_flows")
        key = flow_counter_key(
            IPv4Addr.parse("10.0.1.2"), IPv4Addr.parse("10.100.0.1"), 55_555, 9
        )
        value = flows.lookup(key)
        return int.from_bytes(value, "big") if value else 0

    def test_ten_thousand_packets_survive_pressure_and_redeploy(self):
        flowmon = make_flow_counter(max_flows=64, pin_maps=False)
        topo, controller, delivered = build_dut(
            accelerated=True, conntrack_max=32, custom_fpms=[flowmon],
        )
        stack = topo.dut.stack
        hostile = valid = 0
        hot_at_swap = 0
        for i in range(self.TOTAL):
            if i == self.REDEPLOY_AT:
                hot_at_swap = self._hot_count(controller)
                swaps_before = controller.deployer.deployed["eth0"].swaps
                # the first FORWARD rule changes the processing graph
                # (a filter FPM appears): atomic swap + live migration,
                # and conntrack joins the forward path for the second half
                topo.dut.ipt_append("FORWARD", Rule(target="ACCEPT", ct_state="NEW"))
                controller.tick()
                assert controller.deployer.deployed["eth0"].swaps > swaps_before
                report = controller.deployer.migrations["eth0"]
                assert report.migrated.get("flowmon_flows", 0) > 0
                assert report.dropped == 0
                # the hot flow's count crossed the swap intact
                assert self._hot_count(controller) >= hot_at_swap > 0
            if i % self.HOSTILE_EVERY == 0:
                # alternate pure garbage and a truncated valid frame
                blob = b"\x00" * 10 if i % 2 == 0 else self._cold_frame(topo, i)[:21]
                topo.dut_in.nic.receive_from_wire(blob)
                hostile += 1
            elif i % self.HOT_EVERY == 0:
                topo.dut_in.nic.receive_from_wire(self._hot_frame(topo))
                valid += 1
            else:
                topo.dut_in.nic.receive_from_wire(self._cold_frame(topo, i))
                valid += 1

        # no uncaught exception reached here; the ledger balances exactly
        assert_conserved(stack)
        assert len(delivered) == valid  # pressure fails open: every valid packet forwarded
        assert stack.dropped == hostile
        assert set(stack.drops) <= set(reason_names())

        # every pressure valve visibly fired
        ct = topo.dut.conntrack
        assert len(ct) <= 32
        assert ct.early_drops > 0
        entry = controller.deployer.deployed["eth0"]
        flows = next(m for m in entry.current.program.maps if m.name == "flowmon_flows")
        assert len(flows) <= 64
        assert flows.evictions > 0

        # post-redeploy state survived and kept accumulating
        health = controller.health()
        assert health["migrations"]["eth0"]["migrated"]["flowmon_flows"] > 0
        assert self._hot_count(controller) > hot_at_swap

        # and all of it is scrapeable
        prom = controller.metrics().to_prometheus()
        assert "linuxfp_conntrack_early_drops_total" in prom
        assert 'linuxfp_map_evictions_total{map="flowmon_flows"}' in prom
        assert 'linuxfp_migrated_entries_total{interface="eth0"}' in prom
