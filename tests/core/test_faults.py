"""Unit tests for the seeded fault-injection framework and its wired sites."""

import pytest

from repro.ebpf.loader import Loader
from repro.ebpf.maps import ArrayMap, HashMap, LpmTrieMap, ProgArray
from repro.ebpf.minic import compile_c
from repro.ebpf.verifier import verify
from repro.kernel.kernel import Kernel
from repro.testing import faults
from repro.testing.faults import FaultInjector, InjectedFault

SOURCE = "u32 main() { return 2; }"


def compile_ok(name="prog"):
    return compile_c(SOURCE, name=name, hook="xdp")


class TestInjectorMechanics:
    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError):
            FaultInjector().arm("warp-core")

    def test_count_limits_fires(self):
        inj = FaultInjector()
        inj.arm("verify", count=2)
        assert [inj.decide("verify") for _ in range(4)] == ["raise", "raise", None, None]
        assert len(inj.fired_at("verify")) == 2

    def test_match_filters_by_detail(self):
        inj = FaultInjector()
        inj.arm("load", match="eth0")
        assert inj.decide("load", "fpm_eth1") is None
        assert inj.decide("load", "fpm_eth0") == "raise"

    def test_seed_determinism(self):
        def run(seed):
            inj = FaultInjector(seed)
            inj.arm("compile", probability=0.5)
            return [inj.decide("compile") for _ in range(50)]

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_uninstalled_sites_are_free(self):
        assert not faults.active()
        faults.fire("verify", "anything")  # no injector: never raises

    def test_context_manager_installs_and_removes(self):
        with faults.injected(seed=1) as inj:
            assert faults.current() is inj
            inj.arm("verify")
            with pytest.raises(InjectedFault) as excinfo:
                faults.fire("verify", "demo")
            assert excinfo.value.site == "verify"
            assert excinfo.value.detail == "demo"
        assert not faults.active()

    def test_raise_sites_reject_netlink_actions(self):
        with pytest.raises(ValueError):
            FaultInjector().arm("verify", action="drop")
        with pytest.raises(ValueError):
            FaultInjector().arm("netlink_deliver", action="raise")

    def test_disarm(self):
        inj = FaultInjector()
        inj.arm("verify")
        inj.arm("load")
        inj.disarm("verify")
        assert inj.decide("verify") is None
        assert inj.decide("load") == "raise"
        inj.disarm()
        assert inj.decide("load") is None


class TestWiredSites:
    def test_compile_site(self):
        with faults.injected() as inj:
            inj.arm("compile")
            with pytest.raises(InjectedFault):
                compile_ok()

    def test_verify_site(self):
        program = compile_ok()
        with faults.injected() as inj:
            inj.arm("verify")
            with pytest.raises(InjectedFault):
                verify(program)

    def test_load_site(self):
        program = compile_ok()
        loader = Loader(Kernel("k"))
        with faults.injected() as inj:
            inj.arm("load")
            with pytest.raises(InjectedFault):
                loader.load(program)

    def test_prog_array_set_fails_but_clear_never_does(self):
        arr = ProgArray("jmp")
        with faults.injected() as inj:
            inj.arm("prog_array")
            with pytest.raises(InjectedFault):
                arr.set_prog(0, object())
            arr.clear(0)  # delete semantics: always succeeds

    def test_map_update_site(self):
        with faults.injected() as inj:
            inj.arm("map_update")
            with pytest.raises(InjectedFault):
                HashMap("h", 4, 4).update(b"\x00" * 4, b"\x00" * 4)
            with pytest.raises(InjectedFault):
                ArrayMap("a", 4, 8).update(b"\x00" * 4, b"\x00" * 4)
            with pytest.raises(InjectedFault):
                LpmTrieMap("t", 4).update(b"\x00" * 8, b"\x00" * 4)
