"""Tests for the template engine and LinuxFP object model."""

import pytest

from repro.core.objects import FilterState, InterfaceObject, KernelView, RouteObject, RuleObject
from repro.core.templates import Template, TemplateError, render
from repro.netsim.addresses import IPv4Addr


class TestTemplateEngine:
    def test_substitution(self):
        assert render("hello {{ name }}!", name="world") == "hello world!"

    def test_expressions(self):
        assert render("{{ a + b }}", a=2, b=3) == "5"
        assert render("{{ items[1] }}", items=["x", "y"]) == "y"
        assert render("{{ conf['key'] }}", conf={"key": 7}) == "7"

    def test_if_true_false(self):
        template = "{% if flag %}ON{% else %}OFF{% endif %}"
        assert render(template, flag=True) == "ON"
        assert render(template, flag=False) == "OFF"

    def test_elif(self):
        template = "{% if x == 1 %}one{% elif x == 2 %}two{% else %}many{% endif %}"
        assert render(template, x=1) == "one"
        assert render(template, x=2) == "two"
        assert render(template, x=9) == "many"

    def test_for_loop(self):
        assert render("{% for i in items %}[{{ i }}]{% endfor %}", items=[1, 2, 3]) == "[1][2][3]"

    def test_loop_index(self):
        assert render("{% for x in items %}{{ loop_index }}{% endfor %}", items="ab") == "01"

    def test_nested_blocks(self):
        template = "{% for i in items %}{% if i > 1 %}{{ i }}{% endif %}{% endfor %}"
        assert render(template, items=[1, 2, 3]) == "23"

    def test_comments_stripped(self):
        assert render("a{# not shown #}b") == "ab"

    def test_unclosed_block_rejected(self):
        with pytest.raises(TemplateError):
            Template("{% if x %}oops")

    def test_unknown_tag_rejected(self):
        with pytest.raises(TemplateError):
            Template("{% include foo %}")

    def test_bad_expression_reported(self):
        with pytest.raises(TemplateError, match="nope"):
            render("{{ nope }}")

    def test_builtin_functions(self):
        assert render("{{ len(items) }}", items=[1, 2]) == "2"
        assert render("{{ hex(255) }}") == "0xff"


class TestKernelView:
    def make_view(self):
        view = KernelView()
        view.interfaces[1] = InterfaceObject(ifindex=1, name="eth0", kind="physical", up=True)
        view.interfaces[2] = InterfaceObject(ifindex=2, name="br0", kind="bridge", up=True)
        view.interfaces[3] = InterfaceObject(ifindex=3, name="veth0", kind="veth", up=True, master=2)
        return view

    def test_interface_by_name(self):
        view = self.make_view()
        assert view.interface_by_name("br0").ifindex == 2
        assert view.interface_by_name("ghost") is None

    def test_bridge_ports(self):
        view = self.make_view()
        assert [p.name for p in view.bridge_ports(2)] == ["veth0"]

    def test_routing_configured_needs_both(self):
        view = self.make_view()
        assert not view.routing_configured()
        view.ip_forward = True
        assert not view.routing_configured()  # no routes yet
        route = RouteObject(dst=IPv4Addr.parse("10.0.0.0"), dst_len=24, oif=1)
        view.routes[route.key()] = route
        assert view.routing_configured()

    def test_filter_forward_configured(self):
        state = FilterState()
        assert not state.forward_configured()
        state.rules["FORWARD"].append(RuleObject(chain="FORWARD", handle=1, target="DROP"))
        assert state.forward_configured()
        state = FilterState()
        state.policies["FORWARD"] = "DROP"
        assert state.forward_configured()

    def test_summary(self):
        summary = self.make_view().summary()
        assert summary["bridges"] == ["br0"]
        assert summary["routes"] == 0
