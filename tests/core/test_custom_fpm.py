"""Tests for custom FPM injection (the paper's future-work extension)."""

import pytest

from repro.core import Controller
from repro.core.custom import (
    CustomFpm,
    CustomFpmError,
    make_protocol_counter,
    read_protocol_counter,
)
from repro.measure.topology import LineTopology
from repro.measure.pktgen import Pktgen
from repro.netsim.packet import IPPROTO_TCP, IPPROTO_UDP, make_tcp, make_udp


def accelerated_topo(customs):
    topo = LineTopology()
    topo.install_prefixes(5)
    controller = Controller(topo.dut, hook="xdp", custom_fpms=customs)
    controller.start()
    topo.prewarm_neighbors()
    return topo, controller


class TestCustomFpmSpec:
    def test_bad_name_rejected(self):
        with pytest.raises(CustomFpmError):
            CustomFpm(name="Bad Name", fn_source="static u64 fpm_x() { return 0; }")

    def test_bad_point_rejected(self):
        with pytest.raises(CustomFpmError):
            CustomFpm(name="x", fn_source="static u64 fpm_x() { return 0; }", point="egress")

    def test_fn_name_mismatch_rejected(self):
        with pytest.raises(CustomFpmError):
            CustomFpm(name="x", fn_source="static u64 fpm_y() { return 0; }")

    def test_decls_from_maps(self):
        custom = make_protocol_counter("mon")
        assert custom.decls == ["extern map mon_counters;"]


class TestMonitoringModule:
    def test_counters_count_per_protocol(self):
        counter = make_protocol_counter("mon")
        topo, controller = accelerated_topo([counter])
        assert "fpm_mon" in controller.deployer.deployed["eth0"].current.source
        for __ in range(3):
            topo.dut_in.nic.receive_from_wire(
                make_udp(topo.src_eth.mac, topo.dut_in.mac, "10.0.1.2", topo.flow_destination(0, 5)).to_bytes()
            )
        for __ in range(2):
            topo.dut_in.nic.receive_from_wire(
                make_tcp(topo.src_eth.mac, topo.dut_in.mac, "10.0.1.2", topo.flow_destination(0, 5)).to_bytes()
            )
        assert read_protocol_counter(counter, IPPROTO_UDP) == 3
        assert read_protocol_counter(counter, IPPROTO_TCP) == 2

    def test_monitoring_does_not_change_forwarding(self):
        plain_topo, __ = accelerated_topo([])
        mon_topo, __c = accelerated_topo([make_protocol_counter("mon")])
        plain = Pktgen(plain_topo, num_prefixes=5).throughput(packets=300)
        monitored = Pktgen(mon_topo, num_prefixes=5).throughput(packets=300)
        assert plain.delivery_ratio == monitored.delivery_ratio == 1.0
        # monitoring costs something, but not much
        assert monitored.per_packet_ns > plain.per_packet_ns
        assert monitored.per_packet_ns < plain.per_packet_ns * 1.5

    def test_deployed_even_with_empty_graph(self):
        """Monitoring runs on interfaces with no configured function."""
        topo = LineTopology(dut_forwarding=False)
        controller = Controller(topo.dut, hook="xdp", custom_fpms=[make_protocol_counter("mon")])
        controller.start()
        assert controller.deployer.deployed["eth0"].current is not None

    def test_add_custom_fpm_at_runtime(self):
        topo, controller = accelerated_topo([])
        before = controller.deployer.deployed["eth0"].current.source
        assert "fpm_mon" not in before
        counter = make_protocol_counter("mon")
        controller.add_custom_fpm(counter)
        after = controller.deployer.deployed["eth0"].current.source
        assert "fpm_mon" in after

    def test_custom_drop_module(self):
        """A custom module may also enforce verdicts (e.g. rate limiting)."""
        dropper = CustomFpm(
            name="droptcp",
            fn_source="""
static u64 fpm_droptcp(u8* pkt, u64 len, u64 ifindex) {
    if (ld16(pkt, 12) == 0x0800) {
        if (ld8(pkt, 23) == 6) { return {{ DROP }}; }
    }
    return {{ CONTINUE }};
}
""",
            point="pre_forward",
        )
        topo, controller = accelerated_topo([dropper])
        delivered = []
        topo.sink_eth.nic.attach(lambda frame, q: delivered.append(frame))
        topo.dut_in.nic.receive_from_wire(
            make_tcp(topo.src_eth.mac, topo.dut_in.mac, "10.0.1.2", topo.flow_destination(0, 5)).to_bytes()
        )
        topo.dut_in.nic.receive_from_wire(
            make_udp(topo.src_eth.mac, topo.dut_in.mac, "10.0.1.2", topo.flow_destination(0, 5)).to_bytes()
        )
        assert len(delivered) == 1  # TCP dropped, UDP forwarded
