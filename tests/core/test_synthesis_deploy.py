"""Tests for the synthesizer, capability manager, deployer, and controller."""

import pytest

from repro.core import Controller
from repro.core.capability import CapabilityManager
from repro.core.graph import TopologyManager
from repro.core.introspection import ServiceIntrospection
from repro.core.synthesizer import Synthesizer
from repro.kernel import Kernel
from repro.measure import LineTopology, Pktgen
from repro.netsim.packet import make_udp
from repro.tools import brctl, ip, ipset, iptables, sysctl


def router_topo():
    topo = LineTopology()
    topo.install_prefixes(50)
    topo.prewarm_neighbors()
    return topo


def build_graph(kernel, **manager_kwargs):
    intro = ServiceIntrospection(kernel.bus.open_socket())
    intro.start()
    return TopologyManager(**manager_kwargs).build(intro.view)


class TestCapabilityManager:
    def test_full_kernel_supports_everything(self):
        caps = CapabilityManager.linuxfp()
        for nf in ("router", "bridge", "filter", "ipvs"):
            assert caps.supports(nf)

    def test_mainline_kernel_only_routes(self):
        caps = CapabilityManager.mainline()
        assert caps.supports("router")
        assert not caps.supports("bridge")
        assert not caps.supports("filter")
        assert caps.missing_for("bridge") == {"fdb_lookup"}

    def test_unknown_helper_rejected(self):
        with pytest.raises(ValueError):
            CapabilityManager({"warp_speed"})

    def test_filter_nodes_preserves_order(self):
        caps = CapabilityManager.mainline()
        assert caps.filter_nodes(["filter", "router"]) == ["router"]


class TestSynthesizer:
    def test_router_only_graph_synthesizes_router(self):
        topo = router_topo()
        graph = build_graph(topo.dut)
        paths = Synthesizer().synthesize(graph, hook="xdp")
        assert set(paths) == {"eth0", "eth1"}
        source = paths["eth0"].source
        assert "fpm_router" in source
        assert "fpm_filter" not in source  # minimality: no filtering configured
        assert "fdb_lookup" not in source

    def test_gateway_graph_adds_filter(self):
        topo = router_topo()
        iptables(topo.dut, "-A FORWARD -s 172.16.0.0/24 -j DROP")
        graph = build_graph(topo.dut)
        paths = Synthesizer().synthesize(graph, hook="xdp")
        source = paths["eth0"].source
        assert "fpm_filter" in source and "fpm_router" in source
        assert source.index("fpm_filter(") < source.index("fpm_router(pkt")

    def test_programs_verify_and_have_distinct_hook_verdicts(self):
        topo = router_topo()
        graph = build_graph(topo.dut)
        xdp = Synthesizer().synthesize(graph, hook="xdp")["eth0"]
        tc = Synthesizer().synthesize(graph, hook="tc")["eth0"]
        assert "return 2" in xdp.source  # XDP_PASS
        assert "return 0" in tc.source  # TC_ACT_OK
        assert xdp.program.hook == "xdp" and tc.program.hook == "tc"

    def test_synthesized_paths_are_lint_clean(self):
        # Library templates must not carry dead code, redundant checks, or
        # unused maps after DCE — the lint pass proves it per synthesis.
        topo = router_topo()
        iptables(topo.dut, "-A FORWARD -s 172.16.0.0/24 -j DROP")
        graph = build_graph(topo.dut)
        for hook in ("xdp", "tc"):
            for path in Synthesizer().synthesize(graph, hook=hook).values():
                assert path.lint_findings == []

    def test_mainline_capabilities_prune_filter_and_router(self):
        """Correctness rule: no filter helper ⇒ no fast-path forwarding."""
        topo = router_topo()
        iptables(topo.dut, "-A FORWARD -s 172.16.0.0/24 -j DROP")
        graph = build_graph(topo.dut)
        paths = Synthesizer(CapabilityManager.mainline()).synthesize(graph, hook="xdp")
        assert paths == {}  # filter unpruned would change semantics

    def test_mainline_capabilities_keep_pure_router(self):
        topo = router_topo()
        graph = build_graph(topo.dut)
        paths = Synthesizer(CapabilityManager.mainline()).synthesize(graph, hook="xdp")
        assert set(paths) == {"eth0", "eth1"}

    def test_vlan_enabled_changes_source(self):
        kernel = Kernel("s")
        kernel.add_physical("eth0")
        kernel.set_link("eth0", True)
        brctl(kernel, "addbr br0")
        ip(kernel, "link set br0 up")
        ip(kernel, "link set eth0 master br0")
        graph = build_graph(kernel)
        plain = Synthesizer().synthesize(graph, hook="xdp")["eth0"].source
        assert "0x8100) { return 2; }" in plain.replace("ethertype == ", "")
        kernel.set_bridge_attrs("br0", vlan_filtering=True)
        graph = build_graph(kernel)
        tagged = Synthesizer().synthesize(graph, hook="xdp")["eth0"].source
        assert "vid = ld16(pkt, 14) & 0xfff" in tagged


class TestDeployerAtomicSwap:
    def test_swap_without_loss(self):
        """Traffic keeps flowing across a fast-path regeneration (Fig 4)."""
        topo = router_topo()
        ctl = Controller(topo.dut, hook="xdp")
        ctl.start()
        generator = Pktgen(topo)
        generator.blackhole_sink()
        frame = make_udp(
            topo.src_eth.mac, topo.dut_in.mac, "10.0.1.2", topo.flow_destination(0)
        ).to_bytes()
        nic = topo.dut_in.nic
        lost_before = topo.dut.stack.drops["xdp_drop"] + topo.dut.stack.drops["xdp_aborted"]
        for i in range(50):
            nic.receive_from_wire(frame)
            if i % 10 == 0:  # reconfigure mid-traffic
                iptables(topo.dut, f"-A FORWARD -s 172.16.{i}.0/24 -j DROP")
        lost_after = topo.dut.stack.drops["xdp_drop"] + topo.dut.stack.drops["xdp_aborted"]
        assert lost_after == lost_before
        assert generator.delivered == 50

    def test_dispatcher_attached_once_swaps_counted(self):
        topo = router_topo()
        ctl = Controller(topo.dut, hook="xdp")
        ctl.start()
        entry = ctl.deployer.deployed["eth0"]
        swaps_before = entry.swaps
        iptables(topo.dut, "-A FORWARD -j ACCEPT")
        assert ctl.deployer.deployed["eth0"] is entry  # same dispatcher
        assert entry.swaps > swaps_before

    def test_withdraw_falls_back_to_linux(self):
        topo = router_topo()
        ctl = Controller(topo.dut, hook="xdp")
        ctl.start()
        sysctl(topo.dut, "-w net.ipv4.ip_forward=0")
        # fast path withdrawn; dispatcher remains but slot is empty
        entry = ctl.deployer.deployed["eth0"]
        assert entry.current is None
        # forwarding disabled in Linux too: packets are dropped by the stack
        frame = make_udp(topo.src_eth.mac, topo.dut_in.mac, "10.0.1.2", "10.100.0.1").to_bytes()
        topo.dut_in.nic.receive_from_wire(frame)
        assert topo.dut.stack.drops["not_forwarding"] == 1


class TestControllerTransparency:
    def test_transparent_acceleration_end_to_end(self):
        """The paper's headline flow: plain tools, faster data plane."""
        topo = LineTopology()
        ctl = Controller(topo.dut, hook="xdp")
        ctl.start()
        # configure the DUT purely with standard tools, *after* start
        ip(topo.dut, "route add 10.100.0.0/16 via 10.0.2.2")
        topo.prewarm_neighbors()
        generator = Pktgen(topo, num_prefixes=1)
        result = generator.throughput(cores=1, packets=500)
        assert result.delivery_ratio == 1.0
        # the fast path (not Linux) carried the traffic
        assert result.per_packet_ns < 700
        assert ctl.deployed_summary()["eth0"] == "router"

    def test_reaction_records(self):
        topo = router_topo()
        ctl = Controller(topo.dut, hook="xdp")
        ctl.start()
        iptables(topo.dut, "-A FORWARD -j ACCEPT")
        assert ctl.reactions
        last = ctl.reactions[-1]
        assert last.trigger == "NFT_NEWRULE"
        assert last.seconds > 0
        assert "eth0" in last.redeployed

    def test_unrelated_change_no_redeploy(self):
        topo = router_topo()
        ctl = Controller(topo.dut, hook="xdp")
        ctl.start()
        rebuilds = ctl.rebuilds
        ip(topo.dut, "neigh add 10.0.1.77 lladdr 02:aa:00:00:00:77 dev eth0")
        assert ctl.rebuilds == rebuilds  # graph signature unchanged

    def test_stop_detaches_everything(self):
        topo = router_topo()
        ctl = Controller(topo.dut, hook="xdp")
        ctl.start()
        ctl.stop()
        assert topo.dut.devices.by_name("eth0").xdp_prog is None
        # changes after stop are ignored
        iptables(topo.dut, "-A FORWARD -j ACCEPT")
        assert ctl.deployer.deployed == {}

    def test_tc_hook_controller(self):
        topo = router_topo()
        ctl = Controller(topo.dut, hook="tc")
        ctl.start()
        dev = topo.dut.devices.by_name("eth0")
        assert dev.tc_ingress_prog is not None and dev.xdp_prog is None
        generator = Pktgen(topo)
        result = generator.throughput(cores=1, packets=300)
        assert result.delivery_ratio == 1.0

    def test_correctness_fast_vs_slow_same_result(self):
        """The same packet stream yields identical outcomes on both paths."""
        def run(accelerated):
            topo = LineTopology()
            topo.install_prefixes(4)
            iptables(topo.dut, "-A FORWARD -s 10.0.1.66/32 -j DROP")
            if accelerated:
                Controller(topo.dut, hook="xdp").start()
            topo.prewarm_neighbors()
            delivered = []
            topo.sink_eth.nic.attach(lambda frame, q: delivered.append(frame))
            for i, src in enumerate(["10.0.1.2", "10.0.1.66", "10.0.1.2"]):
                frame = make_udp(topo.src_eth.mac, topo.dut_in.mac, src, topo.flow_destination(i, 4)).to_bytes()
                topo.dut_in.nic.receive_from_wire(frame)
            return len(delivered)

        assert run(accelerated=False) == run(accelerated=True) == 2
