"""Property: the fast path's incremental TTL/checksum update (RFC 1624)
produces valid IPv4 headers for every TTL, including the carry cases."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Controller
from repro.measure.topology import LineTopology
from repro.netsim.checksum import verify_checksum
from repro.netsim.packet import Packet, make_udp


def accelerated_topo():
    topo = LineTopology()
    topo.install_prefixes(4)
    Controller(topo.dut, hook="xdp").start()
    topo.prewarm_neighbors()
    captured = []
    topo.sink_eth.nic.attach(lambda frame, q: captured.append(frame))
    return topo, captured


class TestIncrementalChecksum:
    @settings(max_examples=30, deadline=None)
    @given(
        ttl=st.integers(min_value=2, max_value=255),
        ident=st.integers(min_value=0, max_value=0xFFFF),
        src=st.integers(min_value=0x0A000100, max_value=0x0A0001FF),
    )
    def test_forwarded_header_checksum_valid(self, ttl, ident, src):
        topo, captured = accelerated_topo()
        from repro.netsim.addresses import IPv4Addr

        pkt = make_udp(topo.src_eth.mac, topo.dut_in.mac, IPv4Addr(src), topo.flow_destination(0, 4), ttl=ttl)
        pkt.ip.ident = ident
        topo.dut_in.nic.receive_from_wire(pkt.to_bytes())
        assert len(captured) == 1
        raw = captured[0]
        # the IP header (bytes 14..34) must still checksum to zero
        assert verify_checksum(raw[14:34])
        # and parse cleanly with the decremented TTL
        out = Packet.from_bytes(raw)
        assert out.ip.ttl == ttl - 1
        assert out.ip.ident == ident

    def test_carry_wrap_case(self):
        """TTL decrements that overflow the checksum's high byte (the
        classic RFC 1624 pitfall) must still produce a valid header."""
        topo, captured = accelerated_topo()
        # scan all TTLs; each produces a different checksum alignment
        for ttl in range(2, 256):
            captured.clear()
            pkt = make_udp(topo.src_eth.mac, topo.dut_in.mac, "10.0.1.2", topo.flow_destination(0, 4), ttl=ttl)
            topo.dut_in.nic.receive_from_wire(pkt.to_bytes())
            assert captured, f"ttl={ttl} lost"
            assert verify_checksum(captured[0][14:34]), f"ttl={ttl} corrupted the checksum"
