"""Controller lifecycle and deployment-policy tests."""

import pytest

from repro.core import Controller
from repro.core.capability import CapabilityManager
from repro.measure.pktgen import Pktgen
from repro.measure.topology import LineTopology
from repro.netsim.packet import make_udp
from repro.tools import ip, iptables, sysctl


def router_topo(prefixes=5):
    topo = LineTopology()
    topo.install_prefixes(prefixes)
    topo.prewarm_neighbors()
    return topo


class TestLifecycle:
    def test_restart_after_stop(self):
        topo = router_topo()
        controller = Controller(topo.dut, hook="xdp")
        controller.start()
        controller.stop()
        second = Controller(topo.dut, hook="xdp")
        second.start()
        assert second.deployed_summary()["eth0"] == "router"
        result = Pktgen(topo, num_prefixes=5).throughput(packets=200)
        assert result.delivery_ratio == 1.0

    def test_start_on_preconfigured_system(self):
        """Starting late must produce the same deployment as starting early."""
        topo = router_topo()
        iptables(topo.dut, "-A FORWARD -s 172.16.0.0/24 -j DROP")
        controller = Controller(topo.dut, hook="xdp")
        controller.start()
        assert controller.deployed_summary()["eth0"] == "filter -> router"

    def test_traffic_correct_after_stop(self):
        topo = router_topo()
        controller = Controller(topo.dut, hook="xdp")
        controller.start()
        controller.stop()
        delivered = []
        topo.sink_eth.nic.attach(lambda f, q: delivered.append(f))
        frame = make_udp(topo.src_eth.mac, topo.dut_in.mac, "10.0.1.2", topo.flow_destination(0, 5)).to_bytes()
        topo.dut_in.nic.receive_from_wire(frame)
        assert len(delivered) == 1  # Linux slow path took over seamlessly

    def test_interface_scoping(self):
        topo = router_topo()
        controller = Controller(topo.dut, hook="xdp", interfaces=["eth0"])
        controller.start()
        assert topo.dut.devices.by_name("eth0").xdp_prog is not None
        assert topo.dut.devices.by_name("eth1").xdp_prog is None

    def test_new_interface_picked_up(self):
        topo = router_topo()
        controller = Controller(topo.dut, hook="xdp")
        controller.start()
        topo.dut.add_physical("eth2")
        ip(topo.dut, "link set eth2 up")
        assert "eth2" in controller.deployed_summary()

    def test_interface_removal_cleans_up(self):
        topo = router_topo()
        controller = Controller(topo.dut, hook="xdp")
        controller.start()
        topo.dut.add_physical("eth2")
        ip(topo.dut, "link set eth2 up")
        assert "eth2" in controller.deployer.deployed
        ip(topo.dut, "link del eth2")
        assert "eth2" not in controller.current_graph.interfaces


class TestCapabilityPolicy:
    def test_mainline_kernel_gateway_stays_slow_but_correct(self):
        """On a kernel without bpf_ipt_lookup, the gateway cannot be
        accelerated — and must NOT be mis-accelerated (forwarding without
        filtering would change semantics)."""
        topo = router_topo()
        iptables(topo.dut, "-A FORWARD -s 10.0.1.66/32 -j DROP")
        controller = Controller(topo.dut, hook="xdp", capabilities=CapabilityManager.mainline())
        controller.start()
        entry = controller.deployer.deployed.get("eth0")
        assert entry is None or entry.current is None
        delivered = []
        topo.sink_eth.nic.attach(lambda f, q: delivered.append(f))
        blocked = make_udp(topo.src_eth.mac, topo.dut_in.mac, "10.0.1.66", topo.flow_destination(0, 5)).to_bytes()
        allowed = make_udp(topo.src_eth.mac, topo.dut_in.mac, "10.0.1.2", topo.flow_destination(0, 5)).to_bytes()
        topo.dut_in.nic.receive_from_wire(blocked)
        topo.dut_in.nic.receive_from_wire(allowed)
        assert len(delivered) == 1  # slow path filtered correctly

    def test_mainline_kernel_router_still_accelerated(self):
        topo = router_topo()
        controller = Controller(topo.dut, hook="xdp", capabilities=CapabilityManager.mainline())
        controller.start()
        assert controller.deployed_summary()["eth0"] == "router"

    def test_flush_restores_acceleration(self):
        """Rules gone ⇒ the filter FPM is synthesized away again."""
        topo = router_topo()
        controller = Controller(topo.dut, hook="xdp")
        controller.start()
        iptables(topo.dut, "-A FORWARD -s 172.16.0.0/24 -j DROP")
        assert controller.deployed_summary()["eth0"] == "filter -> router"
        iptables(topo.dut, "-F FORWARD")
        assert controller.deployed_summary()["eth0"] == "router"

    def test_forwarding_toggle(self):
        topo = router_topo()
        controller = Controller(topo.dut, hook="xdp")
        controller.start()
        sysctl(topo.dut, "-w net.ipv4.ip_forward=0")
        assert controller.deployer.deployed["eth0"].current is None
        sysctl(topo.dut, "-w net.ipv4.ip_forward=1")
        assert controller.deployer.deployed["eth0"].current is not None


class TestDeploymentStats:
    def test_swap_counter_tracks_changes(self):
        topo = router_topo()
        controller = Controller(topo.dut, hook="xdp")
        controller.start()
        entry = controller.deployer.deployed["eth0"]
        baseline = entry.swaps
        iptables(topo.dut, "-A FORWARD -j ACCEPT")  # structural change
        iptables(topo.dut, "-A FORWARD -j ACCEPT")  # rule-only change
        assert entry.swaps == baseline + 1  # second rule did not resynthesize

    def test_synthesized_source_recorded(self):
        topo = router_topo()
        controller = Controller(topo.dut, hook="xdp")
        controller.start()
        path = controller.deployer.deployed["eth0"].current
        assert path.source is not None
        assert path.program.source == path.source
