"""The megaflow-style flow cache (extension beyond the paper).

Covers the four correctness pillars: conservative key extraction, per-table
generation-tag invalidation, LRU eviction at capacity, and counter accuracy
(including mirroring of the helper side effects a skipped run would have
had on netfilter rule counters).
"""

import pytest

from repro.core import Controller
from repro.kernel import Kernel
from repro.kernel.netfilter import Rule
from repro.measure.topology import LineTopology
from repro.netsim.addresses import ipv4
from repro.netsim.flowkey import FlowKey, extract_flow_key
from repro.netsim.packet import IPPROTO_ICMP, IPv4, Ethernet, Packet, make_tcp, make_udp

SRC_MAC = "02:00:00:00:00:01"
DST_MAC = "02:00:00:00:00:02"


def udp_frame(ttl=64, dport=53):
    return make_udp(SRC_MAC, DST_MAC, "10.0.1.2", "10.100.0.1", sport=1234, dport=dport, ttl=ttl).to_bytes()


class TestKeyExtraction:
    def test_good_udp_frame_keys(self):
        key = extract_flow_key(udp_frame(), 3)
        assert key == FlowKey(3, 0x0A000102, 0x0A640001, 17, 1234, 53)

    def test_good_tcp_frame_keys(self):
        frame = make_tcp(SRC_MAC, DST_MAC, "10.0.1.2", "10.100.0.1", sport=555, dport=80).to_bytes()
        key = extract_flow_key(frame, 1)
        assert key is not None
        assert (key.proto, key.sport, key.dport) == (6, 555, 80)

    def test_ifindex_distinguishes_flows(self):
        frame = udp_frame()
        assert extract_flow_key(frame, 1) != extract_flow_key(frame, 2)

    def test_short_frame_bypasses(self):
        assert extract_flow_key(udp_frame()[:37], 1) is None

    def test_non_ip_ethertype_bypasses(self):
        frame = bytearray(udp_frame())
        frame[12:14] = b"\x08\x06"  # ARP
        assert extract_flow_key(bytes(frame), 1) is None

    def test_ip_options_bypass(self):
        frame = bytearray(udp_frame())
        frame[14] = 0x46  # IHL 6: options present
        assert extract_flow_key(bytes(frame), 1) is None

    def test_corrupt_ip_checksum_bypasses(self):
        frame = bytearray(udp_frame())
        frame[24] ^= 0xFF
        assert extract_flow_key(bytes(frame), 1) is None

    def test_fragment_bypasses(self):
        pkt = Packet(
            eth=Ethernet.parse(udp_frame()[:14])[0],
            ip=IPv4(src=ipv4("10.0.1.2"), dst=ipv4("10.100.0.1"), proto=17, flags=1),  # MF
            payload=b"\x00" * 8,
        )
        assert extract_flow_key(pkt.to_bytes(), 1) is None
        pkt2 = Packet(
            eth=pkt.eth,
            ip=IPv4(src=ipv4("10.0.1.2"), dst=ipv4("10.100.0.1"), proto=17, frag_offset=3),
            payload=b"\x00" * 8,
        )
        assert extract_flow_key(pkt2.to_bytes(), 1) is None

    def test_non_tcp_udp_bypasses(self):
        pkt = Packet(
            eth=Ethernet.parse(udp_frame()[:14])[0],
            ip=IPv4(src=ipv4("10.0.1.2"), dst=ipv4("10.100.0.1"), proto=IPPROTO_ICMP),
            payload=b"\x00" * 8,
        )
        assert extract_flow_key(pkt.to_bytes(), 1) is None


def cached_router(num_prefixes=8, rules=()):
    topo = LineTopology()
    topo.install_prefixes(num_prefixes)
    for rule in rules:
        topo.dut.ipt_append("FORWARD", rule)
    controller = Controller(topo.dut, hook="xdp", flow_cache=True)
    controller.start()
    topo.prewarm_neighbors()
    outcomes = []
    topo.sink_eth.nic.attach(lambda frame, q: outcomes.append(frame))
    return topo, controller, outcomes


def send(topo, flow=0, dport=53, ttl=64, num_prefixes=8):
    frame = make_udp(
        topo.src_eth.mac,
        topo.dut_in.mac,
        "10.0.1.2",
        topo.flow_destination(flow, num_prefixes),
        sport=1234,
        dport=dport,
        ttl=ttl,
    ).to_bytes()
    topo.dut_in.nic.receive_from_wire(frame)


class TestGenerationInvalidation:
    def test_route_change_invalidates(self):
        topo, __, out = cached_router()
        cache = topo.dut.flow_cache
        send(topo)
        send(topo)
        assert cache.stats.hits["xdp"] == 1
        topo.dut.route_add("192.168.0.0/24", dev="eth0")
        send(topo)
        assert cache.stats.invalidations["gen:fib"] == 1
        assert len(out) == 3  # all still delivered via the full run + re-record

    def test_route_del_reroutes_correctly(self):
        """The load-bearing case: a more-specific route flips where packets
        go, and the cache must not keep forwarding them the old way."""
        topo, __, out = cached_router()
        cache = topo.dut.flow_cache
        send(topo, flow=0)
        send(topo, flow=0)
        delivered_before = len(out)
        # a /24 covering flow 0's destination, toward a black hole (eth0)
        topo.dut.route_add("10.100.0.0/24", via="10.0.1.2")
        for __ in range(3):
            send(topo, flow=0)
        assert len(out) == delivered_before  # nothing more reached the sink
        topo.dut.route_del("10.100.0.0/24")
        send(topo, flow=0)
        assert len(out) == delivered_before + 1
        assert any(r.startswith("gen:fib") for r in cache.stats.invalidations)

    def test_netfilter_change_invalidates(self):
        # a non-matching rule so the filter FPM exists from the start
        topo, __, out = cached_router(rules=[Rule(target="ACCEPT", dport=9999)])
        cache = topo.dut.flow_cache
        send(topo)
        send(topo)
        assert cache.stats.hits["xdp"] == 1
        before = len(out)
        drop = topo.dut.ipt_append("FORWARD", Rule(target="DROP", dport=53))
        send(topo)
        assert len(out) == before  # dropped, not replayed from the cache
        topo.dut.ipt_delete("FORWARD", drop.handle)
        send(topo)
        assert len(out) == before + 1

    def test_neighbor_change_invalidates(self):
        topo, __, out = cached_router()
        cache = topo.dut.flow_cache
        send(topo)
        send(topo)
        assert cache.stats.hits["xdp"] == 1
        topo.dut.neigh_del("eth1", "10.0.2.2")
        before_hits = cache.stats.hits["xdp"]
        send(topo)
        assert cache.stats.hits["xdp"] == before_hits
        assert any(r in ("gen:neighbor", "gen:devices") for r in cache.stats.invalidations)

    def test_ipset_change_invalidates(self):
        topo = LineTopology()
        topo.install_prefixes(8)
        topo.dut.ipset_create("bl", "hash:ip")
        topo.dut.ipt_append("FORWARD", Rule(target="DROP", match_set="bl", set_dir="src"))
        Controller(topo.dut, hook="xdp", flow_cache=True).start()
        topo.prewarm_neighbors()
        out = []
        topo.sink_eth.nic.attach(lambda frame, q: out.append(frame))
        send(topo)
        send(topo)
        assert len(out) == 2
        topo.dut.ipset_add("bl", "10.0.1.2")
        send(topo)
        assert len(out) == 2  # blacklisted now; cache must not deliver

    def test_expiry_deadline_invalidates_conntrack_entries(self):
        """Entries that consulted time-based state re-run after the deadline."""
        from repro.fastpath.flowcache import FlowEntry

        kernel = Kernel("t")
        cache = kernel.flow_cache
        entry = FlowEntry(
            key=None, verdict=2, redirect_ifindex=None, actions=None, deps={},
            expires_ns=kernel.clock.now_ns + 1000, eth_match=None, rules=(),
            ct_entries=(), fpms=(), full_ns=0.0, insns=0,
        )
        assert cache._staleness(entry) is None
        kernel.clock.advance(2000)
        assert cache._staleness(entry) == "expired"


class TestLruEviction:
    def test_capacity_bounds_entries_and_evicts_lru(self):
        topo, __, out = cached_router(num_prefixes=8)
        cache = topo.dut.flow_cache
        cache.capacity = 4
        for flow in range(6):  # 6 distinct flows through a 4-entry cache
            send(topo, flow=flow)
        assert len(cache) == 4
        assert cache.stats.evictions == 2
        # flows 0 and 1 were evicted; 2..5 remain and hit
        before = cache.stats.hits["xdp"]
        send(topo, flow=5)
        assert cache.stats.hits["xdp"] == before + 1
        send(topo, flow=0)  # evicted: a miss that re-records (evicting flow 2)
        assert cache.stats.evictions == 3

    def test_hit_refreshes_lru_position(self):
        topo, __, out = cached_router(num_prefixes=8)
        cache = topo.dut.flow_cache
        cache.capacity = 2
        send(topo, flow=0)
        send(topo, flow=1)
        send(topo, flow=0)  # refresh flow 0 to most-recent
        send(topo, flow=2)  # evicts flow 1, not flow 0
        before = cache.stats.misses["xdp"]
        send(topo, flow=0)
        assert cache.stats.misses["xdp"] == before  # still cached: a hit

    def test_flush_clears_partition(self):
        topo, __, out = cached_router()
        cache = topo.dut.flow_cache
        send(topo, flow=0)
        send(topo, flow=1)
        assert len(cache) == 2
        dropped = cache.flush(hook="xdp", ifindex=topo.dut_in.ifindex)
        assert dropped == 2
        assert len(cache) == 0


class TestCounters:
    def test_hit_miss_record_accounting(self):
        topo, __, out = cached_router()
        cache = topo.dut.flow_cache
        for __unused in range(5):
            send(topo, flow=0)
        for __unused in range(3):
            send(topo, flow=1)
        stats = cache.stats
        assert stats.misses["xdp"] == 2
        assert stats.records["xdp"] == 2
        assert stats.hits["xdp"] == 6
        assert stats.fpm_hits["router"] == 6
        assert stats.insns_avoided > 0
        assert stats.ns_saved > 0
        assert stats.hit_rate("xdp") == pytest.approx(6 / 8)
        assert len(out) == 8

    def test_ttl_expiring_packets_bypass_not_hit(self):
        topo, __, out = cached_router()
        cache = topo.dut.flow_cache
        send(topo, flow=0)
        hits_before = cache.stats.hits["xdp"]
        send(topo, flow=0, ttl=1)  # router FPM punts TTL<=1 to the slow path
        assert cache.stats.hits["xdp"] == hits_before
        # and the good flow's entry is still intact afterwards
        send(topo, flow=0)
        assert cache.stats.hits["xdp"] == hits_before + 1

    def test_rule_packet_counters_mirror_helper(self):
        """With the cache on, iptables counters advance exactly as if every
        packet had taken the full run (operator-visible fidelity)."""
        rule = Rule(target="ACCEPT", dport=53)
        cached = cached_router(rules=[Rule(target="ACCEPT", dport=53)])
        plain_topo = LineTopology()
        plain_topo.install_prefixes(8)
        plain_rule = plain_topo.dut.ipt_append("FORWARD", Rule(target="ACCEPT", dport=53))
        Controller(plain_topo.dut, hook="xdp", flow_cache=False).start()
        plain_topo.prewarm_neighbors()
        plain_topo.sink_eth.nic.attach(lambda frame, q: None)

        topo, __, out = cached
        cached_rule = topo.dut.netfilter.chain("FORWARD").rules[0]
        for __unused in range(7):
            send(topo)
            send(plain_topo)
        assert topo.dut.flow_cache.stats.hits["xdp"] > 0
        assert cached_rule.packets == plain_rule.packets

    def test_stats_reset(self):
        topo, __, out = cached_router()
        cache = topo.dut.flow_cache
        send(topo)
        send(topo)
        cache.stats.reset()
        assert cache.stats.hits["xdp"] == 0
        assert cache.stats.as_dict()["records"] == {}

    def test_stats_helpers(self):
        from repro.measure.stats import flow_cache_summary, format_flow_cache

        topo, __, out = cached_router()
        cache = topo.dut.flow_cache
        for __unused in range(4):
            send(topo)
        summary = flow_cache_summary(cache.stats)
        assert summary["hit_rate"] == pytest.approx(3 / 4)
        assert summary["hit_rate_xdp"] == pytest.approx(3 / 4)
        lines = format_flow_cache(cache.stats)
        assert any("hit rate" in line for line in lines)
        assert any("router" in line for line in lines)

    def test_stats_helpers_distinguish_no_traffic_from_zero(self):
        """Regression: a cache with no lookups reported a misleading 0.00%
        hit rate. No traffic means no rate at all."""
        from repro.fastpath import FlowCacheStats
        from repro.measure.stats import flow_cache_summary, format_flow_cache

        stats = FlowCacheStats()
        stats.records["xdp"] += 2  # warmed entries, but no lookup ever ran
        summary = flow_cache_summary(stats)
        assert summary["hit_rate"] is None
        assert "hit_rate_xdp" not in summary
        lines = format_flow_cache(stats)
        assert "n/a" in lines[0]
        assert any("xdp" in line and "rate=n/a" in line for line in lines)
        # a genuinely cold cache that DID see traffic still reports 0.00%
        stats.misses["xdp"] += 1
        assert flow_cache_summary(stats)["hit_rate"] == 0.0
        assert "0.00%" in format_flow_cache(stats)[0]


class TestControllerIntegration:
    def test_cache_disabled_by_default(self):
        topo = LineTopology()
        topo.install_prefixes(4)
        Controller(topo.dut, hook="xdp").start()
        assert topo.dut.flow_cache.enabled is False

    def test_env_variable_enables(self, monkeypatch):
        monkeypatch.setenv("LINUXFP_FLOW_CACHE", "1")
        topo = LineTopology()
        topo.install_prefixes(4)
        Controller(topo.dut, hook="xdp").start()
        assert topo.dut.flow_cache.enabled is True

    def test_custom_fpm_disables_cache(self):
        from repro.core.custom import make_protocol_counter

        topo, controller, out = cached_router()
        assert topo.dut.flow_cache.enabled is True
        send(topo)
        controller.add_custom_fpm(make_protocol_counter("probe"))
        assert topo.dut.flow_cache.enabled is False
        assert len(topo.dut.flow_cache) == 0  # flushed on disable

    def test_stop_disables_and_flushes(self):
        topo, controller, out = cached_router()
        send(topo)
        assert len(topo.dut.flow_cache) == 1
        controller.stop()
        assert topo.dut.flow_cache.enabled is False
        assert len(topo.dut.flow_cache) == 0

    def test_redeploy_flushes_partition(self):
        topo, controller, out = cached_router()
        cache = topo.dut.flow_cache
        send(topo)
        assert len(cache) == 1
        flushes_before = cache.stats.flushes
        # a structural change (the first iptables rule adds the filter FPM
        # to the graph) forces an atomic swap, which flushes the partition
        topo.dut.ipt_append("FORWARD", Rule(target="ACCEPT", dport=9999))
        assert cache.stats.flushes > flushes_before
        assert len(cache) == 0
