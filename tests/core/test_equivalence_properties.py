"""Property-based tests of the paper's central correctness invariant:

    "every packet must be able to be processed either by the LinuxFP fast
     path or by the kernel with the identical result under all
     circumstances" (§IV-B2).

Hypothesis generates random rule sets, routing tables, and packets; the
accelerated DUT and the plain-Linux DUT must agree on the outcome of every
single packet.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import Controller
from repro.kernel.netfilter import Rule
from repro.measure.topology import LineTopology
from repro.netsim.addresses import IPv4Addr, IPv4Prefix
from repro.netsim.packet import IPPROTO_TCP, IPPROTO_UDP, make_tcp, make_udp

# strategies -----------------------------------------------------------------

rule_strategy = st.builds(
    Rule,
    target=st.sampled_from(["ACCEPT", "DROP"]),
    src=st.one_of(
        st.none(),
        st.builds(
            IPv4Prefix,
            st.builds(IPv4Addr, st.integers(min_value=0x0A000000, max_value=0x0A0001FF)),
            st.sampled_from([16, 24, 28, 32]),
        ),
    ),
    proto=st.one_of(st.none(), st.sampled_from([IPPROTO_TCP, IPPROTO_UDP])),
    dport=st.one_of(st.none(), st.integers(min_value=1, max_value=100)),
)

packet_strategy = st.tuples(
    st.integers(min_value=0x0A000000, max_value=0x0A0001FF),  # src in 10.0.0.0/23
    st.integers(min_value=0, max_value=99),                   # flow -> dst prefix index
    st.sampled_from(["udp", "tcp"]),
    st.integers(min_value=1, max_value=100),                  # dport
    st.integers(min_value=2, max_value=64),                   # ttl
)


def build_dut(rules, accelerated):
    topo = LineTopology()
    topo.install_prefixes(8)
    for rule in rules:
        topo.dut.ipt_append("FORWARD", rule)
    if accelerated:
        Controller(topo.dut, hook="xdp").start()
    topo.prewarm_neighbors()
    outcomes = []
    topo.sink_eth.nic.attach(lambda frame, q: outcomes.append(frame))
    return topo, outcomes


def drive(topo, outcomes, packets):
    """Returns the delivery outcome (True/False) per packet, in order."""
    results = []
    for src_value, flow, proto, dport, ttl in packets:
        src = str(IPv4Addr(src_value))
        dst = topo.flow_destination(flow, 8)
        maker = make_udp if proto == "udp" else make_tcp
        frame = maker(topo.src_eth.mac, topo.dut_in.mac, src, dst, sport=1234, dport=dport, ttl=ttl).to_bytes()
        before = len(outcomes)
        topo.dut_in.nic.receive_from_wire(frame)
        results.append(len(outcomes) > before)
    return results


class TestFastSlowEquivalence:
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        rules=st.lists(rule_strategy, max_size=6),
        packets=st.lists(packet_strategy, min_size=1, max_size=8),
    )
    def test_filter_and_forward_equivalence(self, rules, packets):
        slow_topo, slow_out = build_dut(rules, accelerated=False)
        fast_topo, fast_out = build_dut(rules, accelerated=True)
        assert drive(slow_topo, slow_out, packets) == drive(fast_topo, fast_out, packets)

    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(packets=st.lists(packet_strategy, min_size=1, max_size=8))
    def test_forwarded_packets_identical_bytes(self, packets):
        """Not just the same verdicts: the same rewritten frames."""
        slow_topo, slow_out = build_dut([], accelerated=False)
        fast_topo, fast_out = build_dut([], accelerated=True)
        drive(slow_topo, slow_out, packets)
        drive(fast_topo, fast_out, packets)
        # MACs differ between topologies (unique per kernel); compare the
        # IP layer onward, which must be byte-identical.
        assert [f[14:] for f in slow_out] == [f[14:] for f in fast_out]

    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        entries=st.lists(st.integers(min_value=0x0A000000, max_value=0x0A0001FF), min_size=1, max_size=20),
        packets=st.lists(packet_strategy, min_size=1, max_size=6),
    )
    def test_ipset_equivalence(self, entries, packets):
        def setup(accelerated):
            topo = LineTopology()
            topo.install_prefixes(8)
            topo.dut.ipset_create("bl", "hash:ip")
            for value in entries:
                try:
                    topo.dut.ipset_add("bl", IPv4Addr(value))
                except Exception:
                    pass  # duplicates are fine
            topo.dut.ipt_append("FORWARD", Rule(target="DROP", match_set="bl", set_dir="src"))
            if accelerated:
                Controller(topo.dut, hook="xdp").start()
            topo.prewarm_neighbors()
            outcomes = []
            topo.sink_eth.nic.attach(lambda frame, q: outcomes.append(frame))
            return topo, outcomes

        slow_topo, slow_out = setup(False)
        fast_topo, fast_out = setup(True)
        assert drive(slow_topo, slow_out, packets) == drive(fast_topo, fast_out, packets)
