"""Property-based tests of the paper's central correctness invariant:

    "every packet must be able to be processed either by the LinuxFP fast
     path or by the kernel with the identical result under all
     circumstances" (§IV-B2).

Hypothesis generates random rule sets, routing tables, and packets; the
accelerated DUT and the plain-Linux DUT must agree on the outcome of every
single packet.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import Controller
from repro.kernel.netfilter import Rule
from repro.measure.topology import LineTopology
from repro.netsim.addresses import IPv4Addr, IPv4Prefix
from repro.netsim.packet import IPPROTO_TCP, IPPROTO_UDP, make_tcp, make_udp

# strategies -----------------------------------------------------------------

rule_strategy = st.builds(
    Rule,
    target=st.sampled_from(["ACCEPT", "DROP"]),
    src=st.one_of(
        st.none(),
        st.builds(
            IPv4Prefix,
            st.builds(IPv4Addr, st.integers(min_value=0x0A000000, max_value=0x0A0001FF)),
            st.sampled_from([16, 24, 28, 32]),
        ),
    ),
    proto=st.one_of(st.none(), st.sampled_from([IPPROTO_TCP, IPPROTO_UDP])),
    dport=st.one_of(st.none(), st.integers(min_value=1, max_value=100)),
)

packet_strategy = st.tuples(
    st.integers(min_value=0x0A000000, max_value=0x0A0001FF),  # src in 10.0.0.0/23
    st.integers(min_value=0, max_value=99),                   # flow -> dst prefix index
    st.sampled_from(["udp", "tcp"]),
    st.integers(min_value=1, max_value=100),                  # dport
    st.integers(min_value=2, max_value=64),                   # ttl
)


def build_dut(rules, accelerated):
    topo = LineTopology()
    topo.install_prefixes(8)
    for rule in rules:
        topo.dut.ipt_append("FORWARD", rule)
    if accelerated:
        Controller(topo.dut, hook="xdp").start()
    topo.prewarm_neighbors()
    outcomes = []
    topo.sink_eth.nic.attach(lambda frame, q: outcomes.append(frame))
    return topo, outcomes


def drive(topo, outcomes, packets):
    """Returns the delivery outcome (True/False) per packet, in order."""
    results = []
    for src_value, flow, proto, dport, ttl in packets:
        src = str(IPv4Addr(src_value))
        dst = topo.flow_destination(flow, 8)
        maker = make_udp if proto == "udp" else make_tcp
        frame = maker(topo.src_eth.mac, topo.dut_in.mac, src, dst, sport=1234, dport=dport, ttl=ttl).to_bytes()
        before = len(outcomes)
        topo.dut_in.nic.receive_from_wire(frame)
        results.append(len(outcomes) > before)
    return results


class TestFastSlowEquivalence:
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        rules=st.lists(rule_strategy, max_size=6),
        packets=st.lists(packet_strategy, min_size=1, max_size=8),
    )
    def test_filter_and_forward_equivalence(self, rules, packets):
        slow_topo, slow_out = build_dut(rules, accelerated=False)
        fast_topo, fast_out = build_dut(rules, accelerated=True)
        assert drive(slow_topo, slow_out, packets) == drive(fast_topo, fast_out, packets)

    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(packets=st.lists(packet_strategy, min_size=1, max_size=8))
    def test_forwarded_packets_identical_bytes(self, packets):
        """Not just the same verdicts: the same rewritten frames."""
        slow_topo, slow_out = build_dut([], accelerated=False)
        fast_topo, fast_out = build_dut([], accelerated=True)
        drive(slow_topo, slow_out, packets)
        drive(fast_topo, fast_out, packets)
        # MACs differ between topologies (unique per kernel); compare the
        # IP layer onward, which must be byte-identical.
        assert [f[14:] for f in slow_out] == [f[14:] for f in fast_out]

    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        entries=st.lists(st.integers(min_value=0x0A000000, max_value=0x0A0001FF), min_size=1, max_size=20),
        packets=st.lists(packet_strategy, min_size=1, max_size=6),
    )
    def test_ipset_equivalence(self, entries, packets):
        def setup(accelerated):
            topo = LineTopology()
            topo.install_prefixes(8)
            topo.dut.ipset_create("bl", "hash:ip")
            for value in entries:
                try:
                    topo.dut.ipset_add("bl", IPv4Addr(value))
                except Exception:
                    pass  # duplicates are fine
            topo.dut.ipt_append("FORWARD", Rule(target="DROP", match_set="bl", set_dir="src"))
            if accelerated:
                Controller(topo.dut, hook="xdp").start()
            topo.prewarm_neighbors()
            outcomes = []
            topo.sink_eth.nic.attach(lambda frame, q: outcomes.append(frame))
            return topo, outcomes

        slow_topo, slow_out = setup(False)
        fast_topo, fast_out = setup(True)
        assert drive(slow_topo, slow_out, packets) == drive(fast_topo, fast_out, packets)


# churn strategies ------------------------------------------------------------
#
# Operations interleave packets with live configuration mutations. Config ops
# apply to BOTH the accelerated and the plain DUT; cache ops apply only to the
# accelerated one (the plain DUT has nothing to flush). The invariant is the
# same as above — identical per-packet outcomes and identical forwarded
# bytes — but now it must hold *across* mutations, which is exactly what the
# flow cache's generation-tag invalidation is for.

churn_op = st.one_of(
    st.tuples(st.just("pkt"), packet_strategy),
    st.tuples(st.just("route_shadow"), st.integers(min_value=0, max_value=7)),
    st.tuples(st.just("route_unshadow"), st.integers(min_value=0, max_value=7)),
    st.tuples(st.just("rule_add"), st.integers(min_value=1, max_value=100)),
    st.tuples(st.just("rule_del"), st.just(0)),
    st.tuples(st.just("neigh_del"), st.just(0)),
    st.tuples(st.just("neigh_add"), st.just(0)),
    st.tuples(st.just("age"), st.sampled_from([1, 301, 4000])),  # seconds
    st.tuples(st.just("cache_flush"), st.just(0)),
    st.tuples(st.just("cache_toggle"), st.booleans()),
)


def _apply_config_op(topo, handles, op, arg):
    """Apply one mutation through the standard kernel APIs; idempotent-safe."""
    kernel = topo.dut
    if op == "route_shadow":
        # a more-specific /24 hijacking prefix `arg` back toward the source
        try:
            kernel.route_add(f"10.{100 + arg}.0.0/24", via="10.0.1.2")
        except Exception:
            pass  # already shadowed: same state on both DUTs
    elif op == "route_unshadow":
        try:
            kernel.route_del(f"10.{100 + arg}.0.0/24")
        except Exception:
            pass
    elif op == "rule_add":
        handles.append(kernel.ipt_append("FORWARD", Rule(target="DROP", dport=arg)).handle)
    elif op == "rule_del":
        if handles:
            kernel.ipt_delete("FORWARD", handles.pop())
    elif op == "neigh_del":
        kernel.neigh_del("eth1", "10.0.2.2")
    elif op == "neigh_add":
        kernel.neigh_add("eth1", "10.0.2.2", topo.sink_eth.mac)
    elif op == "age":
        # both topologies share one clock per topology; advance and run the
        # timers so FDB ageing / conntrack expiry fire
        topo.clock.advance(arg * 1_000_000_000)
        kernel.run_housekeeping()


def _ip_payloads(frames):
    """IPv4 payloads only: ARP requests triggered by neigh churn embed the
    per-topology sender MAC in their payload and must not be compared."""
    return [f[14:] for f in frames if f[12:14] == b"\x08\x00"]


class TestChurnEquivalence:
    """Fast/slow agreement while the configuration mutates mid-stream."""

    @settings(max_examples=150, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(ops=st.lists(churn_op, min_size=1, max_size=14))
    def test_equivalence_under_churn_with_cache(self, ops):
        slow_topo, slow_out = build_dut([], accelerated=False)
        fast_topo, fast_out = build_dut([], accelerated=False)
        from repro.core import Controller as _Controller

        _Controller(fast_topo.dut, hook="xdp", flow_cache=True).start()
        fast_topo.prewarm_neighbors()
        slow_handles, fast_handles = [], []

        for op, arg in ops:
            if op == "pkt":
                assert drive(slow_topo, slow_out, [arg]) == drive(fast_topo, fast_out, [arg])
            elif op == "cache_flush":
                fast_topo.dut.flow_cache.flush()
            elif op == "cache_toggle":
                fast_topo.dut.flow_cache.enabled = arg
            else:
                _apply_config_op(slow_topo, slow_handles, op, arg)
                _apply_config_op(fast_topo, fast_handles, op, arg)
        # not just verdicts: every IPv4 frame that reached the sink,
        # byte-identical from the IP layer. MACs legitimately differ between
        # topologies, so skip the Ethernet header and exclude ARP frames
        # (their *payload* embeds the per-topology sender MAC).
        assert _ip_payloads(slow_out) == _ip_payloads(fast_out)

    @settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(ops=st.lists(churn_op, min_size=1, max_size=10))
    def test_cache_on_equals_cache_off(self, ops):
        """Two accelerated DUTs — cache on vs off — must agree exactly."""
        from repro.core import Controller as _Controller

        def build(flow_cache):
            topo = LineTopology()
            topo.install_prefixes(8)
            _Controller(topo.dut, hook="xdp", flow_cache=flow_cache).start()
            topo.prewarm_neighbors()
            out = []
            topo.sink_eth.nic.attach(lambda frame, q: out.append(frame))
            return topo, out

        off_topo, off_out = build(False)
        on_topo, on_out = build(True)
        off_handles, on_handles = [], []
        for op, arg in ops:
            if op == "pkt":
                assert drive(off_topo, off_out, [arg]) == drive(on_topo, on_out, [arg])
            elif op == "cache_flush":
                on_topo.dut.flow_cache.flush()
            elif op == "cache_toggle":
                on_topo.dut.flow_cache.enabled = arg
            else:
                _apply_config_op(off_topo, off_handles, op, arg)
                _apply_config_op(on_topo, on_handles, op, arg)
        assert _ip_payloads(off_out) == _ip_payloads(on_out)
