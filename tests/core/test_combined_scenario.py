"""Combined-subsystem scenario: bridge + filter + router on one DUT.

The paper evaluates subsystems "individually and in combinations" (§VII).
Here the DUT bridges a LAN segment AND routes/filters it to an uplink —
a home-gateway-like composition — and LinuxFP must synthesize the full
bridge → filter → router chain while staying packet-for-packet equivalent
to the slow path.
"""

import pytest

from repro.core import Controller
from repro.kernel import Kernel
from repro.netsim.clock import Clock
from repro.netsim.nic import Wire
from repro.netsim.packet import Packet, make_udp
from repro.tools import brctl, ip, iptables, sysctl


def build_gateway(accelerated):
    """Two LAN hosts bridged on the DUT (br0 owns 10.1.0.1/24), uplink eth2."""
    clock = Clock()
    dut = Kernel("homegw", clock=clock)
    host_a = Kernel("hostA", clock=clock)
    host_b = Kernel("hostB", clock=clock)
    uplink = Kernel("isp", clock=clock)

    for peer, dut_if in ((host_a, "eth0"), (host_b, "eth1"), (uplink, "eth2")):
        dut.add_physical(dut_if)
        ip(dut, f"link set {dut_if} up")
        peer.add_physical("eth0")
        ip(peer, "link set eth0 up")
        Wire(dut.devices.by_name(dut_if).nic, peer.devices.by_name("eth0").nic)

    brctl(dut, "addbr br0")
    brctl(dut, "addif br0 eth0")
    brctl(dut, "addif br0 eth1")
    ip(dut, "addr add 10.1.0.1/24 dev br0")
    ip(dut, "link set br0 up")
    ip(dut, "addr add 203.0.113.2/30 dev eth2")
    ip(dut, "route add default via 203.0.113.1")
    sysctl(dut, "-w net.ipv4.ip_forward=1")
    iptables(dut, "-A FORWARD -s 10.1.0.66/32 -j DROP")  # a misbehaving host

    host_a.add_address("eth0", "10.1.0.10/24")
    host_a.route_add("0.0.0.0/0", via="10.1.0.1")
    host_b.add_address("eth0", "10.1.0.11/24")
    host_b.route_add("0.0.0.0/0", via="10.1.0.1")
    uplink.add_address("eth0", "203.0.113.1/30")

    controller = None
    if accelerated:
        controller = Controller(dut, hook="xdp")
        controller.start()

    # warm: DUT knows the uplink and LAN MACs; bridge learned both hosts
    dut.neigh_add("eth2", "203.0.113.1", uplink.devices.by_name("eth0").mac)
    bridge = dut.devices.by_name("br0").bridge
    dut.fdb_add("eth0", host_a.devices.by_name("eth0").mac)
    dut.fdb_add("eth1", host_b.devices.by_name("eth0").mac)
    dut.neigh_add("br0", "10.1.0.10", host_a.devices.by_name("eth0").mac)
    dut.neigh_add("br0", "10.1.0.11", host_b.devices.by_name("eth0").mac)
    return dut, host_a, host_b, uplink, controller


class TestCombinedChain:
    def test_synthesized_chain_is_bridge_filter_router(self):
        dut, *_rest, controller = build_gateway(accelerated=True)
        summary = controller.deployed_summary()
        assert summary["eth0"] == "bridge -> filter -> router"
        assert summary["eth1"] == "bridge -> filter -> router"
        assert summary["eth2"] == "filter -> router"
        source = controller.deployer.deployed["eth0"].current.source
        for fn in ("fdb_lookup", "ipt_lookup", "fib_lookup"):
            assert fn in source

    def test_lan_to_lan_bridged(self):
        dut, host_a, host_b, uplink, controller = build_gateway(accelerated=True)
        got = []
        host_b.devices.by_name("eth0").nic.attach(lambda f, q: got.append(Packet.from_bytes(f)))
        frame = make_udp(
            host_a.devices.by_name("eth0").mac, host_b.devices.by_name("eth0").mac,
            "10.1.0.10", "10.1.0.11",
        ).to_bytes()
        host_a.devices.by_name("eth0").nic.transmit(frame)
        assert len(got) == 1 and got[0].ip.ttl == 64  # pure L2: TTL untouched

    def test_lan_to_wan_routed_and_filtered(self):
        dut, host_a, host_b, uplink, controller = build_gateway(accelerated=True)
        got = []
        uplink.devices.by_name("eth0").nic.attach(lambda f, q: got.append(Packet.from_bytes(f)))
        bridge_mac = dut.devices.by_name("br0").mac
        ok = make_udp(host_a.devices.by_name("eth0").mac, bridge_mac, "10.1.0.10", "8.8.8.8").to_bytes()
        bad = make_udp(host_a.devices.by_name("eth0").mac, bridge_mac, "10.1.0.66", "8.8.8.8").to_bytes()
        host_a.devices.by_name("eth0").nic.transmit(ok)
        host_a.devices.by_name("eth0").nic.transmit(bad)
        assert len(got) == 1  # blacklisted host filtered
        assert got[0].ip.ttl == 63  # routed: TTL decremented
        assert got[0].eth.src == dut.devices.by_name("eth2").mac

    def test_equivalence_with_slow_path(self):
        """Identical outcomes accelerated vs not, across all three paths."""
        def run(accelerated):
            dut, host_a, host_b, uplink, __ = build_gateway(accelerated)
            wan, lan = [], []
            uplink.devices.by_name("eth0").nic.attach(lambda f, q: wan.append(f))
            host_b.devices.by_name("eth0").nic.attach(lambda f, q: lan.append(f))
            a_mac = host_a.devices.by_name("eth0").mac
            b_mac = host_b.devices.by_name("eth0").mac
            bridge_mac = dut.devices.by_name("br0").mac
            frames = [
                make_udp(a_mac, b_mac, "10.1.0.10", "10.1.0.11").to_bytes(),     # L2
                make_udp(a_mac, bridge_mac, "10.1.0.10", "8.8.8.8").to_bytes(),  # L3 ok
                make_udp(a_mac, bridge_mac, "10.1.0.66", "8.8.8.8").to_bytes(),  # filtered
                make_udp(a_mac, bridge_mac, "10.1.0.10", "8.8.4.4", ttl=1).to_bytes(),  # ttl
            ]
            for frame in frames:
                host_a.devices.by_name("eth0").nic.transmit(frame)
            return len(wan), len(lan)

        assert run(False) == run(True) == (1, 1)

    def test_combined_fast_path_still_faster(self):
        def per_packet(accelerated):
            dut, host_a, host_b, uplink, __ = build_gateway(accelerated)
            uplink.devices.by_name("eth0").nic.attach(lambda f, q: None)
            bridge_mac = dut.devices.by_name("br0").mac
            frame = make_udp(
                host_a.devices.by_name("eth0").mac, bridge_mac, "10.1.0.10", "8.8.8.8"
            ).to_bytes()
            nic = dut.devices.by_name("eth0").nic
            for __w in range(50):
                nic.receive_from_wire(frame)
            t0 = dut.clock.now_ns
            for __m in range(300):
                nic.receive_from_wire(frame)
            return (dut.clock.now_ns - t0) / 300

        slow = per_packet(False)
        fast = per_packet(True)
        assert fast < slow
