"""Live map migration across redeploys.

The Deployer carries a serving program's map state into its replacement:
schemas (type + key/value sizes + ``schema_version``) are matched by name,
the old maps are frozen for a tear-free copy, and per-entry failures are
counted — never raised. Pinned (shared-object) maps are skipped because
their state never left. A failed swap must unfreeze the old maps, since
whatever keeps serving needs to accept writes.

The property test at the bottom is the PR's churn claim: under random
config churn with live traffic, per-flow state survives any number of
atomic redeploys with nothing lost.
"""

from types import SimpleNamespace

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import Controller
from repro.core.custom import flow_counter_key, make_flow_counter
from repro.core.deployer import Deployer
from repro.core.synthesizer import Synthesizer
from repro.ebpf.maps import HashMap, LruHashMap, ProgArray
from repro.kernel.kernel import Kernel
from repro.kernel.netfilter import Rule
from repro.measure.topology import LineTopology
from repro.netsim.addresses import IPv4Addr
from repro.netsim.packet import make_udp
from repro.testing import faults


def k(i: int) -> bytes:
    return i.to_bytes(4, "little")


def v(i: int) -> bytes:
    return i.to_bytes(8, "little")


def filled(name="flows", n=5, **kwargs):
    m = HashMap(name, 4, 8, max_entries=16, **kwargs)
    for i in range(n):
        m.update(k(i), v(i))
    return m


def migrate(old_maps, new_maps):
    """Run Deployer._migrate_maps against a fake serving/staged pair."""
    deployer = Deployer(Kernel("host"))
    entry = SimpleNamespace(current=SimpleNamespace(program=SimpleNamespace(maps=old_maps)))
    path = SimpleNamespace(ifname="eth0", program=SimpleNamespace(maps=new_maps))
    return deployer._migrate_maps(entry, path)


class TestMigrateMaps:
    def test_matching_schema_copies_everything_and_freezes_old(self):
        old = filled(n=5)
        new = old.clone_empty()
        report, frozen = migrate([old], [new])
        assert report.migrated == {"flows": 5}
        assert report.dropped == 0 and report.skipped == []
        assert sorted(new.items()) == sorted(old.items())
        assert frozen == [old] and old.frozen

    def test_pinned_shared_map_is_skipped_not_copied(self):
        shared = filled(n=3)
        report, frozen = migrate([shared], [shared])
        assert report.migrated == {}
        assert frozen == [] and not shared.frozen
        assert any("pinned" in s for s in report.skipped)

    def test_schema_mismatch_is_skipped_with_reason(self):
        for new in (
            HashMap("flows", 8, 8, max_entries=16),              # key size changed
            HashMap("flows", 4, 8, max_entries=16, schema_version=2),
            LruHashMap("flows", 4, 8, max_entries=16),           # type changed
        ):
            report, frozen = migrate([filled(n=3)], [new])
            assert report.migrated == {}
            assert frozen == []
            assert any("schema mismatch" in s for s in report.skipped), new.schema()

    def test_prog_array_is_skipped_as_non_byte_addressable(self):
        report, frozen = migrate([ProgArray("flows")], [ProgArray("flows")])
        assert report.migrated == {} and frozen == []
        assert any("control-plane objects" in s for s in report.skipped)

    def test_faulted_copies_are_counted_as_dropped(self):
        old = filled(n=4)
        new = old.clone_empty()
        with faults.injected(seed=1) as inj:
            inj.arm("map_update", match="flows")
            report, _ = migrate([old], [new])
        assert report.dropped == 4
        assert report.migrated == {"flows": 0}
        assert len(new) == 0

    def test_lru_upgrade_is_idempotent_across_syntheses(self):
        custom = make_flow_counter(max_flows=8)
        synthesizer = Synthesizer(customs=[custom])
        synthesizer._prepare_custom_maps()
        upgraded = custom.maps["flowmon_flows"]
        assert isinstance(upgraded, LruHashMap)
        synthesizer._prepare_custom_maps()
        assert custom.maps["flowmon_flows"] is upgraded  # stable across redeploys


# ---------------------------------------------------------------- end to end

HOT = dict(sport=55_555, dport=9)


def build(max_flows=256):
    topo = LineTopology()
    topo.install_prefixes(4)
    flowmon = make_flow_counter(max_flows=max_flows, pin_maps=False)
    controller = Controller(topo.dut, hook="xdp", custom_fpms=[flowmon])
    controller.start()
    topo.prewarm_neighbors()
    delivered = []
    topo.sink_eth.nic.attach(lambda frame, q: delivered.append(frame))
    return topo, controller, delivered


def hot_frame(topo):
    return make_udp(
        topo.src_eth.mac, topo.dut_in.mac, "10.0.1.2",
        topo.flow_destination(0, 4), ttl=16, **HOT,
    ).to_bytes()


def hot_count(controller):
    entry = controller.deployer.deployed["eth0"]
    if entry.current is None:
        return None  # serving the slow path: no map to read
    flows = next(m for m in entry.current.program.maps if m.name == "flowmon_flows")
    key = flow_counter_key(
        IPv4Addr.parse("10.0.1.2"), IPv4Addr.parse("10.100.0.1"), HOT["sport"], HOT["dport"]
    )
    value = flows.lookup(key)
    return int.from_bytes(value, "big") if value else 0


class TestRedeployCarriesState:
    def test_counter_survives_explicit_redeploy_cycles(self):
        topo, controller, delivered = build()
        sent = 0
        for cycle in range(5):
            for _ in range(3):
                topo.dut_in.nic.receive_from_wire(hot_frame(topo))
                sent += 1
            # toggle FORWARD filtering: the graph changes shape both ways
            if cycle % 2 == 0:
                topo.dut.ipt_append("FORWARD", Rule(target="ACCEPT", ct_state="NEW"))
            else:
                topo.dut.ipt_flush("FORWARD")
            controller.tick()
            assert controller.deployer.migrations["eth0"].dropped == 0
            assert hot_count(controller) == sent  # nothing lost at any swap
        assert controller.deployer.deployed["eth0"].swaps >= 6
        assert len(delivered) == sent

    def test_failed_swap_unfreezes_old_maps_and_falls_back(self):
        topo, controller, delivered = build()
        topo.dut_in.nic.receive_from_wire(hot_frame(topo))
        serving = next(
            m for m in controller.deployer.deployed["eth0"].current.program.maps
            if m.name == "flowmon_flows"
        )
        with faults.injected(seed=2) as inj:
            inj.arm("prog_array", count=1)  # eth0 deploys first: its swap fails
            topo.dut.ipt_append("FORWARD", Rule(target="ACCEPT", ct_state="NEW"))
            controller.tick()
        failure = controller.deployer.failures["eth0"]
        assert failure.stage == "swap"
        assert not serving.frozen  # migration froze it; the failure path let go
        # config changed under a failed deploy: eth0 fell back to the slow
        # path (serving the stale program would diverge) and still forwards
        assert controller.deployer.deployed["eth0"].current is None
        before = len(delivered)
        topo.dut_in.nic.receive_from_wire(hot_frame(topo))
        assert len(delivered) == before + 1
        # once the retry backoff elapses, a healthy tick recovers the fast path
        topo.clock.advance(20_000_000)
        controller.tick()
        assert controller.deployer.deployed["eth0"].current is not None
        assert "eth0" not in controller.deployer.failures


config_op = st.sampled_from(["add_rule", "flush_rules", "add_route", "burst"])


class TestChurnProperty:
    @settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(ops=st.lists(config_op, min_size=4, max_size=10))
    def test_flow_state_survives_random_config_churn(self, ops):
        topo, controller, delivered = build()
        sent = 0
        route_idx = 0
        for op in ops:
            if op == "add_rule":
                topo.dut.ipt_append("FORWARD", Rule(target="ACCEPT", ct_state="NEW"))
            elif op == "flush_rules":
                topo.dut.ipt_flush("FORWARD")
            elif op == "add_route":
                topo.dut.route_add(f"10.{200 + route_idx}.0.0/16", via="10.0.2.2")
                route_idx += 1
            else:
                for _ in range(2):
                    topo.dut_in.nic.receive_from_wire(hot_frame(topo))
                    sent += 1
            controller.tick()
            count = hot_count(controller)
            assert count is not None  # no healthy-path withdraws under pure churn
            assert count == sent  # established-flow state intact after every op
        for report in controller.deployer.migrations.values():
            assert report.dropped == 0
        assert len(delivered) == sent
        stack = topo.dut.stack
        assert stack.rx_packets + stack.tx_local_packets == stack.settled + stack.pending_packets()
