"""Tests for the FPM template library: minimality and hook specialization."""

import pytest

from repro.core.fpm.library import render_dispatcher, render_fast_path
from repro.ebpf.minic import compile_c
from repro.ebpf.verifier import verify


def router_nodes():
    return {"router": {"conf": {"decrement_ttl": True}, "next_nf": None}}

def gateway_nodes():
    return {
        "filter": {"conf": {"chain": "FORWARD"}, "next_nf": "router"},
        "router": {"conf": {"decrement_ttl": True}, "next_nf": None},
    }

def bridge_nodes(vlan=False, chain_l3=False):
    conf = {"bridge_ifindex": 7, "STP_enabled": False, "VLAN_enabled": vlan, "ports": ["v0", "v1"]}
    if chain_l3:
        conf["bridge_mac"] = "02:00:00:00:00:07"
    return {"bridge": {"conf": conf, "next_nf": "router" if chain_l3 else None}}


class TestMinimality:
    """'Less code leads to more efficient code paths': unconfigured features
    must contribute nothing to the synthesized program."""

    def test_pure_router_has_no_other_helpers(self):
        source = render_fast_path("eth0", "xdp", router_nodes())
        assert "fib_lookup" in source
        for absent in ("fdb_lookup", "ipt_lookup", "conntrack_lookup"):
            assert absent not in source

    def test_pure_bridge_has_no_l3_code(self):
        source = render_fast_path("eth0", "xdp", bridge_nodes())
        assert "fdb_lookup" in source
        assert "fib_lookup" not in source
        assert "ipt_lookup" not in source

    def test_vlan_code_only_when_enabled(self):
        without = render_fast_path("eth0", "xdp", bridge_nodes(vlan=False))
        with_vlan = render_fast_path("eth0", "xdp", bridge_nodes(vlan=True))
        assert "vid = ld16" not in without
        assert "vid = ld16" in with_vlan
        # untagged-only fast path punts tagged frames to the slow path
        assert "0x8100" in without

    def test_gateway_is_strictly_bigger_than_router(self):
        router = compile_c(render_fast_path("eth0", "xdp", router_nodes()))
        gateway = compile_c(render_fast_path("eth0", "xdp", gateway_nodes()))
        assert len(gateway) > len(router)

    def test_all_rendered_sources_compile_and_verify(self):
        for nodes in (router_nodes(), gateway_nodes(), bridge_nodes(),
                      bridge_nodes(vlan=True), bridge_nodes(chain_l3=True)):
            for hook in ("xdp", "tc"):
                program = compile_c(render_fast_path("eth0", hook, nodes), hook=hook)
                verify(program)


class TestHookSpecialization:
    def test_xdp_verdicts(self):
        source = render_fast_path("eth0", "xdp", router_nodes())
        assert "return 2; }" in source  # XDP_PASS

    def test_tc_verdicts(self):
        source = render_fast_path("eth0", "tc", router_nodes())
        assert "return 0; }" in source  # TC_ACT_OK

    def test_filter_drop_verdicts_differ(self):
        xdp = render_fast_path("eth0", "xdp", gateway_nodes())
        tc = render_fast_path("eth0", "tc", gateway_nodes())
        assert "if (v == 1) { return 1; }" in xdp  # XDP_DROP
        assert "if (v == 1) { return 2; }" in tc  # TC_ACT_SHOT


class TestChaining:
    def test_bridge_chains_to_router_via_bridge_mac(self):
        source = render_fast_path("eth0", "xdp", bridge_nodes(chain_l3=True))
        assert "goto_l3" in source
        assert "fpm_router" in source
        assert hex(0x020000000007) in source or "2199023255559" in source

    def test_filter_continue_sentinel_threads_to_router(self):
        source = render_fast_path("eth0", "xdp", gateway_nodes())
        assert "fpm_filter(pkt, len, ifindex)" in source
        assert "999" in source  # CONTINUE

    def test_fpm_comments_cite_table1_split(self):
        """Each FPM documents its slow-path delegation (Table I)."""
        source = render_fast_path("eth0", "xdp", gateway_nodes())
        assert "slow path" in source


class TestDispatcher:
    def test_dispatcher_renders_and_compiles(self):
        from repro.ebpf.maps import ProgArray

        source = render_dispatcher("eth0", "xdp")
        assert "tail_call" in source
        program = compile_c(source, hook="xdp", maps={"jmp": ProgArray("jmp")})
        verify(program)

    def test_dispatcher_pass_verdict_per_hook(self):
        assert "return 2;" in render_dispatcher("eth0", "xdp")
        assert "return 0;" in render_dispatcher("eth0", "tc")
