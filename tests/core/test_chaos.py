"""Chaos suite: random faults at random sites during churn.

The three invariants the self-healing control plane promises (ISSUE:
robustness archetype), checked under Hypothesis-driven fault schedules:

1. **No unhandled exception** — whatever fails inside compile / verify /
   load / prog-array swap / map update / netlink delivery, neither the
   controller nor the datapath ever lets an exception reach the caller.
2. **Packet-for-packet agreement with the plain kernel** — degradation is
   always to something correct (last-good only while semantically current,
   otherwise the slow path), never to something stale.
3. **Reconvergence** — once faults stop, bounded clock advancement plus the
   retry timer brings every interface back to the fast path and
   ``health()`` back to ok.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import Controller
from repro.testing import faults
from tests.core.test_equivalence_properties import (
    _apply_config_op,
    _ip_payloads,
    build_dut,
    drive,
    packet_strategy,
)

chaos_op = st.one_of(
    st.tuples(st.just("pkt"), packet_strategy),
    st.tuples(st.just("rule_add"), st.integers(min_value=1, max_value=100)),
    st.tuples(st.just("rule_del"), st.just(0)),
    st.tuples(st.just("route_shadow"), st.integers(min_value=0, max_value=7)),
    st.tuples(st.just("route_unshadow"), st.integers(min_value=0, max_value=7)),
)


def build_pair():
    """A plain DUT and an accelerated DUT (watchdog + flow cache on)."""
    slow_topo, slow_out = build_dut([], accelerated=False)
    fast_topo, fast_out = build_dut([], accelerated=False)
    controller = Controller(fast_topo.dut, hook="xdp", watchdog_every=5, flow_cache=True)
    controller.start()
    fast_topo.prewarm_neighbors()
    return slow_topo, slow_out, fast_topo, fast_out, controller


def run_chaos(ops, controller, slow_topo, slow_out, fast_topo, fast_out):
    """Apply ops to both DUTs, asserting per-packet agreement throughout."""
    slow_handles, fast_handles = [], []
    for op, arg in ops:
        if op == "pkt":
            assert drive(slow_topo, slow_out, [arg]) == drive(fast_topo, fast_out, [arg])
        else:
            _apply_config_op(slow_topo, slow_handles, op, arg)
            _apply_config_op(fast_topo, fast_handles, op, arg)
            # a dropped notification is not silent: the socket's overrun
            # flag is set, and the next tick answers with a full resync
            slow_topo.clock.advance(1_000_000)
            fast_topo.clock.advance(1_000_000)
            controller.tick()


def reconverge(controller, slow_topo, fast_topo, rounds=12):
    """Advance past every retry/hold-off timer until health() is ok."""
    for _ in range(rounds):
        slow_topo.clock.advance(6_000_000_000)
        fast_topo.clock.advance(6_000_000_000)
        controller.tick()
        if controller.health()["ok"]:
            return True
    return False


class TestChaos:
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        ops=st.lists(chaos_op, min_size=2, max_size=10),
        seed=st.integers(min_value=0, max_value=2**16),
        probability=st.sampled_from([0.05, 0.25, 0.6]),
    )
    def test_agreement_and_reconvergence_under_random_faults(self, ops, seed, probability):
        slow_topo, slow_out, fast_topo, fast_out, controller = build_pair()
        with faults.injected(seed=seed) as inj:
            inj.arm_everything(probability=probability)
            inj.arm("netlink_deliver", probability=probability / 2, action="dup")
            run_chaos(ops, controller, slow_topo, slow_out, fast_topo, fast_out)
        # faults stopped: the control plane must heal itself
        assert reconverge(controller, slow_topo, fast_topo), controller.health()
        assert controller.deployer.deployed["eth0"].current is not None
        # and the healed fast path must still agree with the plain kernel
        probes = [(0x0A000001 + i, i, "udp", 7 + i * 13, 64) for i in range(4)]
        assert drive(slow_topo, slow_out, probes) == drive(fast_topo, fast_out, probes)
        assert _ip_payloads(slow_out) == _ip_payloads(fast_out)

    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        ops=st.lists(chaos_op, min_size=2, max_size=8),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_survives_near_total_failure(self, ops, seed):
        """probability 0.9: almost every control-plane action fails. The
        datapath must still agree with plain Linux on every packet."""
        slow_topo, slow_out, fast_topo, fast_out, controller = build_pair()
        with faults.injected(seed=seed) as inj:
            inj.arm_everything(probability=0.9)
            run_chaos(ops, controller, slow_topo, slow_out, fast_topo, fast_out)
        assert reconverge(controller, slow_topo, fast_topo), controller.health()
        assert _ip_payloads(slow_out) == _ip_payloads(fast_out)

    def test_fixed_seed_smoke(self):
        """A deterministic, Hypothesis-free schedule (fast CI sanity)."""
        ops = [
            ("rule_add", 40),
            ("pkt", (0x0A000002, 1, "udp", 40, 64)),
            ("route_shadow", 1),
            ("pkt", (0x0A000003, 1, "udp", 7, 64)),
            ("rule_del", 0),
            ("pkt", (0x0A000004, 2, "tcp", 40, 64)),
        ]
        slow_topo, slow_out, fast_topo, fast_out, controller = build_pair()
        with faults.injected(seed=1234) as inj:
            inj.arm_everything(probability=0.5)
            run_chaos(ops, controller, slow_topo, slow_out, fast_topo, fast_out)
        assert reconverge(controller, slow_topo, fast_topo), controller.health()
        assert _ip_payloads(slow_out) == _ip_payloads(fast_out)
