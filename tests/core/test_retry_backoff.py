"""Deployer retry/backoff coverage: exponential growth to the cap,
give-up → quarantine under persistent seeded faults, recovery after the
hold-off, and the bounded deduplicating incident log."""

from repro.core import Controller
from repro.core.controller import (
    GIVE_UP_ATTEMPTS,
    GIVE_UP_HOLDOFF_NS,
    INCIDENT_DEDUP_WINDOW,
    MAX_INCIDENTS,
    RETRY_BASE_NS,
    RETRY_CAP_NS,
)
from repro.measure.topology import LineTopology
from repro.testing import faults


def failing_controller(inj):
    topo = LineTopology()
    topo.install_prefixes(3)
    topo.prewarm_neighbors()
    inj.arm("prog_array")  # every swap fails while armed
    controller = Controller(topo.dut, hook="xdp")
    controller.start()
    return topo, controller


def tick_past_backoff(topo, controller, times=1):
    for _ in range(times):
        topo.clock.advance(RETRY_CAP_NS + 1)
        controller.tick()


class TestExponentialBackoff:
    def test_delay_doubles_then_caps(self):
        with faults.injected(seed=3) as inj:
            topo, controller = failing_controller(inj)
            seen = []
            for _ in range(10):
                delay = controller._retry_at_ns - topo.clock.now_ns
                seen.append(delay)
                if controller._retry_attempts >= GIVE_UP_ATTEMPTS:
                    break
                tick_past_backoff(topo, controller)
            # strictly doubling from the base...
            for i, delay in enumerate(seen[:-1]):
                assert delay == min(RETRY_BASE_NS * (2**i), RETRY_CAP_NS)
            # ...and never beyond the cap
            assert max(seen) <= RETRY_CAP_NS

    def test_attempts_stop_growing_at_give_up(self):
        with faults.injected(seed=3) as inj:
            topo, controller = failing_controller(inj)
            tick_past_backoff(topo, controller, times=12)
            assert controller._retry_attempts == GIVE_UP_ATTEMPTS


class TestGiveUpQuarantine:
    def test_persistent_failure_lands_in_quarantine(self):
        with faults.injected(seed=3) as inj:
            topo, controller = failing_controller(inj)
            assert controller.deployer.failures  # degraded, still retrying
            tick_past_backoff(topo, controller, times=GIVE_UP_ATTEMPTS + 2)
            health = controller.health()
            assert not controller.deployer.failures  # no longer hammering
            assert health["quarantined"]  # honest containment
            assert not health["ok"]
            kinds = [i.kind for i in controller.incidents]
            assert "retry-give-up" in kinds

    def test_quarantine_reason_names_the_failure(self):
        with faults.injected(seed=3) as inj:
            topo, controller = failing_controller(inj)
            tick_past_backoff(topo, controller, times=GIVE_UP_ATTEMPTS + 2)
            for q in controller.deployer.quarantined.values():
                assert f"gave up after {GIVE_UP_ATTEMPTS} attempts" in q.reason

    def test_recovery_after_holdoff_restores_fast_path(self):
        with faults.injected(seed=3) as inj:
            topo, controller = failing_controller(inj)
            tick_past_backoff(topo, controller, times=GIVE_UP_ATTEMPTS + 2)
            assert controller.health()["quarantined"]
        # fault gone: the hold-off expires and the retry succeeds
        topo.clock.advance(GIVE_UP_HOLDOFF_NS + RETRY_CAP_NS)
        assert controller.tick() is True
        health = controller.health()
        assert health["ok"]
        assert not health["quarantined"]
        assert controller._retry_attempts == 0  # success resets the streak
        assert controller.deployer.deployed["eth0"].current is not None

    def test_slow_path_serves_throughout(self):
        from repro.netsim.packet import make_udp

        with faults.injected(seed=3) as inj:
            topo, controller = failing_controller(inj)
            tick_past_backoff(topo, controller, times=GIVE_UP_ATTEMPTS + 2)
            delivered = []
            topo.sink_eth.nic.attach(lambda f, q: delivered.append(f))
            frame = make_udp(
                topo.src_eth.mac, topo.dut_in.mac, "10.0.1.2", topo.flow_destination(0, 3), dport=7
            ).to_bytes()
            topo.dut_in.nic.receive_from_wire(frame)
            assert len(delivered) == 1  # quarantined != broken


class TestIncidentDedup:
    def plain_controller(self):
        topo = LineTopology()
        topo.install_prefixes(2)
        controller = Controller(topo.dut, hook="xdp")
        controller.start()
        return topo, controller

    def test_repeats_coalesce_with_count(self):
        topo, controller = self.plain_controller()
        base = len(controller.incidents)
        for _ in range(50):
            controller.notify_incident("probe-flap", "gw1: probe lost", "gw1")
        assert len(controller.incidents) == base + 1
        assert controller.incidents[-1].count == 50
        assert controller.incidents_total >= 50

    def test_distinct_details_do_not_coalesce(self):
        topo, controller = self.plain_controller()
        base = len(controller.incidents)
        controller.notify_incident("router-offline", "gw1 down", "gw1")
        controller.notify_incident("router-offline", "gw2 down", "gw2")
        assert len(controller.incidents) == base + 2

    def test_flap_cannot_wash_out_other_incidents(self):
        topo, controller = self.plain_controller()
        controller.notify_incident("router-offline", "gw3 down", "gw3")
        for _ in range(2 * MAX_INCIDENTS):
            controller.notify_incident("probe-flap", "gw1: probe lost", "gw1")
        kinds = [i.kind for i in controller.incidents]
        assert "router-offline" in kinds  # survived the flap storm

    def test_ring_buffer_stays_bounded(self):
        topo, controller = self.plain_controller()
        for i in range(MAX_INCIDENTS + 200):
            controller.notify_incident("unique", f"incident {i}")
        assert len(controller.incidents) == MAX_INCIDENTS
        assert controller.incidents_total >= MAX_INCIDENTS + 200
        assert controller.health()["incidents_total"] == controller.incidents_total

    def test_dedup_window_is_bounded(self):
        """Only the last few entries are scanned — an old identical incident
        beyond the window starts a fresh entry (bounded work per incident)."""
        topo, controller = self.plain_controller()
        controller.notify_incident("kind-a", "same detail")
        for i in range(INCIDENT_DEDUP_WINDOW + 1):
            controller.notify_incident("filler", f"noise {i}")
        before = len(controller.incidents)
        controller.notify_incident("kind-a", "same detail")
        assert len(controller.incidents) == before + 1

    def test_metrics_weight_incidents_by_count(self):
        from repro.observability.metrics import _incidents_by_kind

        topo, controller = self.plain_controller()
        for _ in range(7):
            controller.notify_incident("probe-flap", "gw1: probe lost", "gw1")
        by_kind = _incidents_by_kind(controller)
        assert by_kind["probe-flap"] == 7
