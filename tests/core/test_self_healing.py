"""Self-healing control plane: transactional deploys, degradation ladder,
retry backoff, netlink overrun resync, and the lost-update latch."""

import pytest

from repro.core import Controller
from repro.core.controller import RETRY_BASE_NS, RETRY_CAP_NS
from repro.core.synthesizer import SynthesizedPath
from repro.kernel.netfilter import Rule
from repro.measure.topology import LineTopology
from repro.netsim.packet import make_udp
from repro.testing import faults
from repro.tools import ip, iptables


def router_topo(prefixes=5):
    topo = LineTopology()
    topo.install_prefixes(prefixes)
    topo.prewarm_neighbors()
    return topo


def attach_sink(topo):
    delivered = []
    topo.sink_eth.nic.attach(lambda f, q: delivered.append(f))
    return delivered


def send_one(topo, dport=7):
    frame = make_udp(
        topo.src_eth.mac, topo.dut_in.mac, "10.0.1.2", topo.flow_destination(0, 5), dport=dport
    ).to_bytes()
    topo.dut_in.nic.receive_from_wire(frame)


class TestTransactionalDeploy:
    def test_failed_first_deploy_degrades_to_slow_path(self):
        topo = router_topo()
        with faults.injected() as inj:
            inj.arm("prog_array", count=1)
            controller = Controller(topo.dut, hook="xdp")
            controller.start()  # must not raise
        entry = controller.deployer.deployed["eth0"]
        assert entry.current is None  # slow path serving
        health = controller.health()
        assert not health["ok"]
        assert "eth0" in health["degraded"]
        assert health["degraded"]["eth0"].startswith("swap:")
        delivered = attach_sink(topo)
        send_one(topo)
        assert len(delivered) == 1  # slow path carried the packet

    def test_failed_redeploy_of_identical_source_keeps_last_good(self):
        topo = router_topo()
        controller = Controller(topo.dut, hook="xdp")
        controller.start()
        entry = controller.deployer.deployed["eth0"]
        good = entry.current
        assert good is not None
        retry = SynthesizedPath(ifname="eth0", program=good.program, source=good.source, pruned_nfs=[])
        with faults.injected() as inj:
            inj.arm("prog_array")
            assert controller.deployer.deploy(retry) is False
        # identical source ⇒ last-good is still semantically current: keep it
        assert entry.current is good
        assert "eth0" in controller.deployer.failures
        delivered = attach_sink(topo)
        send_one(topo)
        assert len(delivered) == 1

    def test_failed_deploy_after_config_change_withdraws_stale_last_good(self):
        """A DROP rule appears but the new filter FPM fails to deploy: the
        old router-only FPM would forward what the kernel drops. It must go."""
        topo = router_topo()
        controller = Controller(topo.dut, hook="xdp")
        controller.start()
        entry = controller.deployer.deployed["eth0"]
        delivered = attach_sink(topo)
        with faults.injected() as inj:
            inj.arm("prog_array")
            topo.dut.ipt_append("FORWARD", Rule(target="DROP", dport=99))  # notifies
        assert entry.current is None  # stale last-good withdrawn
        send_one(topo, dport=99)
        send_one(topo, dport=7)
        assert len(delivered) == 1  # slow path filters exactly like the kernel

    def test_synthesis_failure_with_unchanged_config_keeps_last_good(self):
        topo = router_topo()
        controller = Controller(topo.dut, hook="xdp")
        controller.start()
        entry = controller.deployer.deployed["eth0"]
        good = entry.current
        with faults.injected() as inj:
            inj.arm("compile")
            # graph changes (new interface) but eth0's own config does not
            topo.dut.add_physical("eth2")
            ip(topo.dut, "link set eth2 up")
        # eth2 never made it up; eth0's last-good is still current — keep it
        assert entry.current is good
        assert "eth2" in controller.deployer.failures

    def test_deploy_never_raises_under_any_single_fault(self):
        for site in ("compile", "verify", "load", "prog_array", "map_update"):
            topo = router_topo()
            with faults.injected() as inj:
                inj.arm(site)
                controller = Controller(topo.dut, hook="xdp")
                controller.start()  # must not raise regardless of the site
                delivered = attach_sink(topo)
                send_one(topo)
                assert len(delivered) == 1, f"lost traffic with {site} armed"


class TestRetryBackoff:
    def test_tick_retries_and_recovers(self):
        topo = router_topo()
        with faults.injected() as inj:
            inj.arm("prog_array")  # all swaps fail while armed
            controller = Controller(topo.dut, hook="xdp")
            controller.start()
        assert controller.deployer.failures
        assert controller.health()["retry_at_ns"] is not None
        # not due yet: tick is a no-op
        assert controller.tick() is False
        topo.clock.advance(RETRY_BASE_NS * 4)
        assert controller.tick() is True  # fault gone: retry succeeds
        assert not controller.deployer.failures
        assert controller.deployer.deployed["eth0"].current is not None
        assert controller.health()["ok"]

    def test_backoff_is_exponential_and_capped(self):
        topo = router_topo()
        with faults.injected() as inj:
            inj.arm("prog_array")
            controller = Controller(topo.dut, hook="xdp")
            controller.start()
            first_attempts = controller._retry_attempts
            for _ in range(12):  # keep failing: delay grows, then caps
                topo.clock.advance(RETRY_CAP_NS + 1)
                controller.tick()
            assert controller._retry_attempts > first_attempts
            last_delay = controller._retry_at_ns - topo.dut.clock.now_ns
            assert last_delay <= RETRY_CAP_NS


class TestLostUpdateLatch:
    def test_notification_during_reaction_is_not_dropped(self):
        topo = router_topo()
        controller = Controller(topo.dut, hook="xdp")
        controller.start()
        nested = []
        original_deploy = controller.deployer.deploy

        def deploy_with_nested_change(path):
            if not nested:
                nested.append(True)
                # a second rule lands while the controller reacts to the first
                topo.dut.ipt_append("FORWARD", Rule(target="DROP", dport=99))
            return original_deploy(path)

        controller.deployer.deploy = deploy_with_nested_change
        topo.dut.ipt_append("FORWARD", Rule(target="DROP", dport=88))
        controller.deployer.deploy = original_deploy
        # the trailing rebuild must have picked up the nested rule
        view_rules = controller.introspection.view.filter.rules["FORWARD"]
        assert len(view_rules) == 2
        delivered = attach_sink(topo)
        send_one(topo, dport=99)  # filtered by the *fast path* built from both rules
        send_one(topo, dport=7)
        assert len(delivered) == 1


class TestTeardownRobustness:
    def test_teardown_survives_deleted_device(self):
        topo = router_topo()
        controller = Controller(topo.dut, hook="xdp")
        controller.start()
        topo.dut.add_physical("eth2")
        ip(topo.dut, "link set eth2 up")
        assert "eth2" in controller.deployer.deployed
        ip(topo.dut, "link del eth2")
        controller.stop()  # must not raise on the vanished device
        assert controller.deployer.deployed == {}

    def test_teardown_idempotent(self):
        topo = router_topo()
        controller = Controller(topo.dut, hook="xdp")
        controller.start()
        controller.deployer.teardown()
        controller.deployer.teardown()
        assert controller.deployer.deployed == {}

    def test_withdraw_idempotent(self):
        topo = router_topo()
        controller = Controller(topo.dut, hook="xdp")
        controller.start()
        entry = controller.deployer.deployed["eth0"]
        controller.deployer.withdraw("eth0")
        swaps = entry.swaps
        controller.deployer.withdraw("eth0")  # no-op: already on slow path
        controller.deployer.withdraw("nonexistent")  # no-op: never deployed
        assert entry.swaps == swaps


class TestOverrunResync:
    def test_lost_notification_triggers_full_resync(self):
        topo = router_topo()
        controller = Controller(topo.dut, hook="xdp")
        controller.start()
        assert controller.deployed_summary()["eth0"] == "router"
        with faults.injected() as inj:
            inj.arm("netlink_deliver", action="drop")
            topo.dut.ipt_append("FORWARD", Rule(target="DROP", dport=99))
        # the notification was lost; the controller still runs the old FPM
        assert controller.deployed_summary()["eth0"] == "router"
        assert controller.socket.overrun
        assert not controller.health()["ok"]
        assert controller.tick() is True  # overrun noticed: full re-dump
        assert controller.resyncs == 1
        assert controller.deployed_summary()["eth0"] == "filter -> router"
        assert controller.health()["ok"]

    def test_duplicate_notifications_are_idempotent(self):
        topo = router_topo()
        controller = Controller(topo.dut, hook="xdp")
        controller.start()
        with faults.injected() as inj:
            inj.arm("netlink_deliver", action="dup")
            topo.dut.ipt_append("FORWARD", Rule(target="DROP", dport=99))
        assert controller.deployed_summary()["eth0"] == "filter -> router"
        view_rules = controller.introspection.view.filter.rules["FORWARD"]
        assert len(view_rules) == 1  # applied once despite double delivery
        assert controller.health()["ok"]


class TestEpochTags:
    def test_quarantine_flush_bumps_partition_epoch(self):
        topo = router_topo()
        controller = Controller(topo.dut, hook="xdp", flow_cache=True)
        controller.start()
        cache = topo.dut.flow_cache
        ifindex = topo.dut.devices.by_name("eth0").ifindex
        before = cache.epoch("xdp", ifindex)
        controller.deployer.quarantine("eth0", "test", holdoff_ns=1)
        assert cache.epoch("xdp", ifindex) > before

    def test_stale_epoch_entry_never_serves(self):
        topo = router_topo()
        controller = Controller(topo.dut, hook="xdp", flow_cache=True)
        controller.start()
        cache = topo.dut.flow_cache
        delivered = attach_sink(topo)
        send_one(topo)  # miss: records an entry
        assert len(cache.entries()) == 1
        ifindex = topo.dut.devices.by_name("eth0").ifindex
        cache._epochs[("xdp", ifindex)] += 1  # simulate an in-flight stale insert
        send_one(topo)
        assert cache.stats.invalidations["epoch"] == 1
        assert len(delivered) == 2  # both packets went through correctly
