"""Differential watchdog: shadow-predict on the fast path, let the plain
kernel handle the sampled packet authoritatively, and quarantine on mismatch."""

from repro.core import Controller
from repro.core.controller import QUARANTINE_HOLDOFF_NS
from repro.ebpf.minic import compile_c
from repro.measure.topology import LineTopology
from repro.netsim.packet import make_udp


def router_topo():
    topo = LineTopology()
    topo.install_prefixes(5)
    topo.prewarm_neighbors()
    return topo


def attach_sink(topo):
    delivered = []
    topo.sink_eth.nic.attach(lambda f, q: delivered.append(f))
    return delivered


def send(topo, n=1, flow=0):
    for _ in range(n):
        frame = make_udp(
            topo.src_eth.mac, topo.dut_in.mac, "10.0.1.2", topo.flow_destination(flow, 5)
        ).to_bytes()
        topo.dut_in.nic.receive_from_wire(frame)


def corrupt_fast_path(controller, ifname="eth0", hook="xdp"):
    """Swap a drop-everything program into the serving slot — a stand-in for
    any synthesis bug or stale view that makes the FPM diverge."""
    verdict = 1 if hook == "xdp" else 2  # XDP_DROP / TC_ACT_SHOT
    bad = compile_c(f"u32 main() {{ return {verdict}; }}", name="bad", hook=hook)
    controller.deployer.deployed[ifname].prog_array.set_prog(0, bad)


class TestHealthyAgreement:
    def test_sampling_never_changes_behavior(self):
        topo = router_topo()
        controller = Controller(topo.dut, hook="xdp", watchdog_every=1)
        controller.start()
        delivered = attach_sink(topo)
        send(topo, 10)
        assert len(delivered) == 10  # authoritative slow path delivered all
        wd = controller.watchdog
        assert wd.sampled == 10
        assert wd.agreements == 10
        assert wd.mismatches == 0
        assert not controller.deployer.quarantined
        assert controller.health()["ok"]

    def test_unsampled_packets_stay_on_fast_path(self):
        topo = router_topo()
        controller = Controller(topo.dut, hook="xdp", watchdog_every=4)
        controller.start()
        delivered = attach_sink(topo)
        send(topo, 8)
        assert len(delivered) == 8
        assert controller.watchdog.sampled == 2  # packets 4 and 8

    def test_watchdog_disabled_by_default(self):
        topo = router_topo()
        controller = Controller(topo.dut, hook="xdp")
        controller.start()
        assert controller.watchdog is None
        assert topo.dut.watchdog is None


class TestMismatchContainment:
    def test_corrupted_fpm_is_caught_and_quarantined(self):
        topo = router_topo()
        controller = Controller(topo.dut, hook="xdp", watchdog_every=1)
        controller.start()
        corrupt_fast_path(controller)
        delivered = attach_sink(topo)
        send(topo)
        # the sampled packet was still delivered: the kernel, not the broken
        # FPM, was authoritative for it
        assert len(delivered) == 1
        assert controller.watchdog.mismatches == 1
        assert "eth0" in controller.deployer.quarantined
        assert controller.deployer.deployed["eth0"].current is None
        health = controller.health()
        assert not health["ok"]
        assert "eth0" in health["quarantined"]
        assert any(i.kind == "watchdog-mismatch" for i in controller.incidents)

    def test_detection_within_one_sampling_window(self):
        topo = router_topo()
        controller = Controller(topo.dut, hook="xdp", watchdog_every=4)
        controller.start()
        corrupt_fast_path(controller)
        delivered = attach_sink(topo)
        send(topo, 8)
        # packets 1-3 hit the broken FPM and were dropped; packet 4 was the
        # differential sample (delivered by the kernel, mismatch detected);
        # 5-8 rode the slow path after quarantine
        assert controller.watchdog.mismatches == 1
        assert len(delivered) == 5

    def test_quarantine_flushes_cached_bad_verdicts(self):
        topo = router_topo()
        controller = Controller(topo.dut, hook="xdp", watchdog_every=4, flow_cache=True)
        controller.start()
        cache = topo.dut.flow_cache
        corrupt_fast_path(controller)
        delivered = attach_sink(topo)
        send(topo, 8, flow=0)  # one flow, so the bad DROP verdict gets cached
        assert controller.watchdog.mismatches == 1
        assert len(delivered) == 5
        # the poisoned DROP verdict is gone; anything recorded since the
        # flush came from the dispatcher falling through to the slow path
        assert all(e.verdict != 1 for e in cache.entries())  # 1 == XDP_DROP
        send(topo, 4, flow=0)
        assert len(delivered) == 9

    def test_tc_hook_watchdog(self):
        topo = router_topo()
        controller = Controller(topo.dut, hook="tc", watchdog_every=1)
        controller.start()
        corrupt_fast_path(controller, hook="tc")
        delivered = attach_sink(topo)
        send(topo)
        assert len(delivered) == 1
        assert controller.watchdog.mismatches == 1
        assert "eth0" in controller.deployer.quarantined


class TestRecovery:
    def test_resynthesis_after_holdoff(self):
        topo = router_topo()
        controller = Controller(topo.dut, hook="xdp", watchdog_every=1)
        controller.start()
        corrupt_fast_path(controller)
        send(topo)  # detect + quarantine
        assert "eth0" in controller.deployer.quarantined
        # inside the hold-off nothing is redeployed
        assert controller.tick() is False or controller.deployer.deployed["eth0"].current is None
        topo.clock.advance(QUARANTINE_HOLDOFF_NS * 2)
        assert controller.tick() is True
        entry = controller.deployer.deployed["eth0"]
        assert entry.current is not None  # fresh, correct FPM back in the slot
        assert "eth0" not in controller.deployer.quarantined
        assert controller.health()["ok"]
        delivered = attach_sink(topo)
        send(topo, 4)
        assert len(delivered) == 4
        assert controller.watchdog.mismatches == 1  # no new mismatches
