"""Scale tests: large configurations must synthesize, deploy, and forward."""

import pytest

from repro.core import Controller
from repro.k8s import Cluster
from repro.kernel import Kernel
from repro.kernel.netfilter import Rule
from repro.measure.pktgen import Pktgen
from repro.measure.topology import LineTopology
from repro.netsim.addresses import IPv4Prefix
from repro.tools import ip


class TestScale:
    def test_thousand_routes(self):
        topo = LineTopology()
        for i in range(1000):
            topo.dut.route_add(f"10.{100 + i // 250}.{i % 250}.0/24", via="10.0.2.2")
        Controller(topo.dut, hook="xdp").start()
        topo.prewarm_neighbors()
        assert len(topo.dut.fib) >= 1000
        result = Pktgen(topo, num_prefixes=4).throughput(packets=300)
        assert result.delivery_ratio == 1.0
        # LPM cost is flat in our FIB: same fast-path cost as 50 routes
        assert result.per_packet_ns < 600

    def test_thousand_rules_deploys_once(self):
        topo = LineTopology()
        topo.install_prefixes(4)
        controller = Controller(topo.dut, hook="xdp")
        controller.start()
        swaps_before = controller.deployer.deployed["eth0"].swaps
        for i in range(1000):
            topo.dut.ipt_append(
                "FORWARD", Rule(target="DROP", src=IPv4Prefix.parse(f"172.{i % 200 + 1}.{i // 200}.0/24"))
            )
        # rules flow through the helper: exactly one structural redeploy
        assert controller.deployer.deployed["eth0"].swaps == swaps_before + 1

    def test_many_interfaces(self):
        kernel = Kernel("many")
        kernel.sysctl_set("net.ipv4.ip_forward", "1")
        for i in range(32):
            kernel.add_physical(f"eth{i}")
            ip(kernel, f"link set eth{i} up")
            kernel.add_address(f"eth{i}", f"10.{i}.0.1/24")
        kernel.route_add("10.200.0.0/16", via="10.0.0.2")
        controller = Controller(kernel, hook="xdp")
        controller.start()
        assert len(controller.deployer.deployed) == 32
        assert all(e.current is not None for e in controller.deployer.deployed.values())

    def test_ten_pods_per_node(self):
        cluster = Cluster(workers=2)
        node = cluster.workers[0]
        pods = [cluster.create_pod(node) for __ in range(10)]
        cluster.accelerate()
        assert len(node.host_veth_names()) == 10
        summary = node.controller.deployed_summary()
        assert sum(1 for chain in summary.values() if "bridge" in chain) == 10

    def test_deep_prefix_nesting(self):
        """Every prefix length 8..32 nested around one address."""
        topo = LineTopology()
        for length in range(8, 33):
            topo.dut.route_add(IPv4Prefix.parse(f"10.128.64.32/{length}"), via="10.0.2.2")
        Controller(topo.dut, hook="xdp").start()
        topo.prewarm_neighbors()
        route = topo.dut.fib.lookup("10.128.64.32")
        assert route.prefix.length == 32

    def test_rapid_reconfiguration_storm(self):
        """1000 add/del route cycles: no redeploys, no leaks, still correct."""
        topo = LineTopology()
        topo.install_prefixes(4)
        controller = Controller(topo.dut, hook="xdp")
        controller.start()
        swaps = controller.deployer.deployed["eth0"].swaps
        for i in range(500):
            topo.dut.route_add("10.250.0.0/16", via="10.0.2.2")
            topo.dut.route_del("10.250.0.0/16")
        assert controller.deployer.deployed["eth0"].swaps == swaps
        topo.prewarm_neighbors()
        assert Pktgen(topo, num_prefixes=4).throughput(packets=200).delivery_ratio == 1.0
