"""The anycast fleet: spray fairness, failover, draining, health probing,
partitions, and per-kernel conservation under router loss."""

from collections import Counter

import pytest

from repro.cluster import AnycastFleet, HealthMonitor
from repro.kernel.fib import POLICY_MODN
from repro.testing import faults

FLOWS = list(range(64))


def warmed_fleet(policy="resilient", num_routers=4, rounds=3, platform="linuxfp"):
    fleet = AnycastFleet(num_routers=num_routers, policy=policy, platform=platform)
    monitor = HealthMonitor(fleet)
    for _ in range(rounds):
        fleet.inject(FLOWS)
        monitor.tick(fleet.clock.now_ns)
        fleet.tick()
    return fleet, monitor


def settle_detection(fleet, monitor, rounds=8):
    for _ in range(rounds):
        fleet.tick(advance_ns=50_000_000)
        monitor.tick(fleet.clock.now_ns)


class TestSpray:
    def test_every_router_serves_flows(self):
        fleet, _ = warmed_fleet()
        dist = Counter(fleet.serving.values())
        assert set(dist) == {0, 1, 2, 3}
        assert min(dist.values()) >= len(FLOWS) // 8  # roughly fair

    def test_flow_affinity_is_stable(self):
        fleet, monitor = warmed_fleet()
        before = fleet.snapshot_serving()
        for _ in range(3):
            fleet.inject(FLOWS)
            monitor.tick(fleet.clock.now_ns)
        assert fleet.snapshot_serving() == before  # no event: nothing moves

    def test_all_packets_accounted(self):
        fleet, _ = warmed_fleet()
        assert fleet.delivered == 3 * len(FLOWS)
        assert fleet.conserved()

    def test_gateways_run_fast_paths(self):
        fleet, _ = warmed_fleet()
        for member in fleet.members:
            assert member.controller is not None
            assert member.controller.deployer.deployed["eth0"].current is not None

    def test_plain_linux_platform_works_too(self):
        fleet, _ = warmed_fleet(platform="linux")
        assert fleet.delivered == 3 * len(FLOWS)
        assert fleet.observer_controller() is None


class TestKillFailover:
    def test_kill_detected_and_weighted_out(self):
        fleet, monitor = warmed_fleet()
        fleet.kill_router(2)
        settle_detection(fleet, monitor)
        assert monitor.up == [True, True, False, True]
        assert fleet.group.buckets_owned(fleet.members[2].ip) == 0
        kinds = [i.kind for i in fleet.observer_controller().incidents]
        assert "router-offline" in kinds

    def test_resilient_moves_only_victim_flows(self):
        fleet, monitor = warmed_fleet()
        before = fleet.snapshot_serving()
        fleet.kill_router(0)
        settle_detection(fleet, monitor)
        for _ in range(3):
            fleet.inject(FLOWS)
            monitor.tick(fleet.clock.now_ns)
        after = fleet.snapshot_serving()
        moved = {f for f in before if before[f] != after[f]}
        assert moved == {f for f in before if before[f] == 0}

    def test_modn_moves_most_flows(self):
        fleet, monitor = warmed_fleet(policy=POLICY_MODN)
        before = fleet.snapshot_serving()
        fleet.kill_router(0)
        settle_detection(fleet, monitor)
        for _ in range(3):
            fleet.inject(FLOWS)
            monitor.tick(fleet.clock.now_ns)
        after = fleet.snapshot_serving()
        survivors = [f for f in before if before[f] != 0]
        disrupted = [f for f in survivors if before[f] != after[f]]
        assert len(disrupted) / len(survivors) >= 0.5

    def test_blind_spot_blackholes_are_counted_and_conserved(self):
        fleet, monitor = warmed_fleet()
        fleet.kill_router(1)
        fleet.inject(FLOWS)  # before detection: victim's share vanishes
        victim_share = sum(1 for r in fleet.serving.values() if r == 1)
        assert fleet.blackholed[1] > 0
        assert victim_share > 0  # stale attribution, not delivery
        assert fleet.conserved()

    def test_revive_weights_back_in(self):
        fleet, monitor = warmed_fleet()
        fleet.kill_router(3)
        settle_detection(fleet, monitor)
        assert not monitor.up[3]
        fleet.revive_router(3)
        settle_detection(fleet, monitor)
        assert monitor.up[3]
        assert fleet.group.buckets_owned(fleet.members[3].ip) > 0
        kinds = [i.kind for i in fleet.observer_controller().incidents]
        assert "router-online" in kinds
        # traffic flows through the revived router again
        fleet.serving.clear()
        fleet.inject(FLOWS)
        assert 3 in set(fleet.serving.values())
        assert fleet.conserved()

    def test_observer_skips_dead_routers(self):
        fleet, monitor = warmed_fleet()
        fleet.kill_router(0)
        assert fleet.observer_controller() is fleet.members[1].controller


class TestDrain:
    def test_drain_disrupts_nothing_while_flows_live(self):
        fleet, monitor = warmed_fleet()
        before = fleet.snapshot_serving()
        fleet.drain_router(2)
        for _ in range(4):
            fleet.inject(FLOWS)
            monitor.tick(fleet.clock.now_ns)
        assert fleet.snapshot_serving() == before

    def test_drain_completes_once_idle(self):
        fleet, monitor = warmed_fleet()
        fleet.drain_router(2)
        for _ in range(10):  # traffic stopped: buckets idle out
            fleet.tick(advance_ns=100_000_000)
            monitor.tick(fleet.clock.now_ns)
        assert fleet.group.is_drained(fleet.members[2].ip)
        kinds = [i.kind for i in fleet.observer_controller().incidents]
        assert "router-drain" in kinds and "router-drained" in kinds

    def test_new_flows_avoid_drained_router(self):
        # bucket-grained hashing: new flows may still land in a draining
        # member's *warm* buckets, but once those idle out and migrate, no
        # new flow can reach it
        fleet, monitor = warmed_fleet()
        fleet.drain_router(1)
        for _ in range(5):
            fleet.tick(advance_ns=100_000_000)
            monitor.tick(fleet.clock.now_ns)
        assert fleet.group.is_drained(fleet.members[1].ip)
        fleet.serving.clear()
        fleet.inject([f + 500 for f in range(48)])
        assert 1 not in set(fleet.serving.values())

    def test_undrain_restores_service(self):
        fleet, monitor = warmed_fleet()
        fleet.drain_router(1)
        for _ in range(10):
            fleet.tick(advance_ns=100_000_000)
            monitor.tick(fleet.clock.now_ns)
        fleet.undrain_router(1)
        for _ in range(5):
            fleet.tick(advance_ns=100_000_000)
            monitor.tick(fleet.clock.now_ns)
        assert fleet.group.buckets_owned(fleet.members[1].ip) > 0


class TestProbing:
    def test_single_probe_flap_does_not_flap_the_route(self):
        fleet, monitor = warmed_fleet()
        with faults.injected(seed=5) as inj:
            inj.arm("probe_flap", count=1, match="gw2")
            settle_detection(fleet, monitor, rounds=6)
        assert monitor.up == [True] * 4  # debounce absorbed the miss
        assert monitor.probes_missed >= 1
        kinds = [i.kind for i in fleet.observer_controller().incidents]
        assert "router-offline" not in kinds

    def test_partition_weights_out_without_packet_loss(self):
        fleet, monitor = warmed_fleet()
        with faults.injected(seed=5) as inj:
            inj.arm("partition", match="gw1")
            settle_detection(fleet, monitor, rounds=6)
            assert not monitor.up[1]
            # data plane still forwards: re-spray moves flows, loses nothing
            fleet.inject(FLOWS)
        assert fleet.blackholed == [0, 0, 0, 0]
        assert fleet.conserved()
        assert 1 not in set(fleet.serving.values())

    def test_detect_mult_is_respected(self):
        fleet, monitor = warmed_fleet()
        fleet.kill_router(0)
        # fewer probe rounds than detect_mult: still considered up
        monitor._probe_round(fleet.clock.now_ns)
        monitor._probe_round(fleet.clock.now_ns)
        assert monitor.up[0]
        monitor._probe_round(fleet.clock.now_ns)
        assert not monitor.up[0]

    def test_monitor_reports_state(self):
        fleet, monitor = warmed_fleet()
        state = monitor.to_dict()
        assert state["detect_mult"] == 3
        assert state["probes_sent"] > 0
        assert state["up"] == [True] * 4


class TestClusterFaultSites:
    def test_cluster_sites_are_registered(self):
        assert faults.CLUSTER_SITES <= set(faults.SITES)
        for site in faults.CLUSTER_SITES:
            assert site not in faults.RAISE_SITES

    def test_arm_everything_skips_cluster_sites(self):
        inj = faults.FaultInjector(0)
        inj.arm_everything(probability=1.0, include_data_plane=True)
        assert not [a for a in inj._arms if a.site in faults.CLUSTER_SITES]

    def test_cluster_site_actions_validated(self):
        inj = faults.FaultInjector(0)
        with pytest.raises(ValueError):
            inj.arm("router_kill", action="drop")
        arm = inj.arm("router_kill")
        assert arm.action == "kill"

    def test_kill_router_records_in_chaos_ledger(self):
        fleet, monitor = warmed_fleet()
        with faults.injected(seed=1) as inj:
            inj.arm("router_kill", count=1)
            fleet.kill_router(2)
        assert inj.fired_at("router_kill")
