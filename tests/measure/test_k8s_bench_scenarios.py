"""Tests for the k8s bench harness and extended scenario coverage."""

import pytest

from repro.measure.k8s_bench import (
    CONTAINER_PATH_SCALE,
    PodRRResult,
    container_cost_model,
    measure_pod_rr,
)
from repro.measure.scenarios import measure_latency, measure_throughput, setup_gateway, setup_router
from repro.netsim.cost import CostModel


class TestContainerCostModel:
    def test_uniform_scaling(self):
        base = CostModel()
        scaled = container_cost_model()
        assert scaled.fib_lookup == pytest.approx(base.fib_lookup * CONTAINER_PATH_SCALE)
        assert scaled.ebpf_insn == pytest.approx(base.ebpf_insn * CONTAINER_PATH_SCALE)

    def test_unscaled_fields(self):
        base = CostModel()
        scaled = container_cost_model()
        assert scaled.line_rate_gbps == base.line_rate_gbps
        assert scaled.wire_latency_ns == base.wire_latency_ns
        assert scaled.vpp_vector_size == base.vpp_vector_size
        assert scaled.app_rr_turnaround_ns == base.app_rr_turnaround_ns

    def test_scaling_preserves_ratios(self):
        """The whole point: speedups are invariant under uniform scaling."""
        lin = measure_pod_rr(intra=True, accelerated=False, transactions=400)
        lfp = measure_pod_rr(intra=True, accelerated=True, transactions=400)
        ratio = lfp.rtt_summary.mean / lin.rtt_summary.mean
        assert 0.75 < ratio < 0.95


class TestPodRR:
    def test_result_units(self):
        result = measure_pod_rr(intra=True, accelerated=False, transactions=300)
        assert isinstance(result, PodRRResult)
        assert result.avg_ms == pytest.approx(result.rtt_summary.mean / 1e6)
        assert result.p99_ms > result.avg_ms
        assert result.transactions_per_s > 0

    def test_deterministic_with_seed(self):
        a = measure_pod_rr(intra=True, accelerated=False, transactions=300, seed=5)
        b = measure_pod_rr(intra=True, accelerated=False, transactions=300, seed=5)
        assert a.avg_ms == b.avg_ms

    def test_pair_scaling(self):
        one = measure_pod_rr(intra=True, accelerated=False, pairs=1, transactions=300)
        four = measure_pod_rr(intra=True, accelerated=False, pairs=4, transactions=300)
        assert 3.5 < four.transactions_per_s / one.transactions_per_s < 4.05

    def test_inter_slower_than_intra(self):
        intra = measure_pod_rr(intra=True, accelerated=False, transactions=300)
        inter = measure_pod_rr(intra=False, accelerated=False, transactions=300)
        assert inter.avg_ms > intra.avg_ms * 1.5

    def test_custom_turnaround(self):
        fast_app = measure_pod_rr(intra=True, accelerated=False, transactions=300, app_turnaround_ns=0)
        slow_app = measure_pod_rr(intra=True, accelerated=False, transactions=300, app_turnaround_ns=10e6)
        assert slow_app.avg_ms > fast_app.avg_ms + 9.0


class TestScenarioEdges:
    def test_vpp_latency_path(self):
        topo = setup_router("vpp", num_prefixes=5)
        result = measure_latency(topo, transactions=600, num_prefixes=5)
        assert result.avg_us > 0

    def test_multi_queue_topology(self):
        topo = setup_router("linuxfp", num_prefixes=5, num_queues=4)
        result = measure_throughput(topo, cores=4, packets=300, num_prefixes=5)
        assert result.cores == 4
        assert result.delivery_ratio == 1.0

    def test_gateway_zero_rules_degenerates_to_router(self):
        gateway = setup_gateway("linux", num_rules=0, num_prefixes=5)
        router = setup_router("linux", num_prefixes=5)
        g = measure_throughput(gateway, packets=300, num_prefixes=5)
        r = measure_throughput(router, packets=300, num_prefixes=5)
        assert g.per_packet_ns == pytest.approx(r.per_packet_ns, rel=0.02)

    def test_tc_hook_scenarios_slower_than_xdp(self):
        xdp = setup_router("linuxfp", num_prefixes=5, hook="xdp")
        tc = setup_router("linuxfp", num_prefixes=5, hook="tc")
        xdp_cost = measure_throughput(xdp, packets=300, num_prefixes=5).per_packet_ns
        tc_cost = measure_throughput(tc, packets=300, num_prefixes=5).per_packet_ns
        assert tc_cost > xdp_cost

    def test_unknown_platform_rejected(self):
        with pytest.raises(ValueError):
            setup_router("clickos")
