"""Tests for the measurement harness."""

import pytest

from repro.measure import LineTopology, Netperf, Pktgen, summarize
from repro.measure.flamegraph import profile_forwarding
from repro.measure.netperf import measure_base_rtt_ns
from repro.measure.scenarios import (
    measure_latency,
    measure_throughput,
    setup_gateway,
    setup_router,
)
from repro.measure.stats import percentile


class TestStats:
    def test_summary(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.mean == 2.5
        assert summary.count == 4
        assert summary.std == pytest.approx(1.118, abs=0.001)

    def test_percentile_interpolation(self):
        assert percentile([10, 20, 30, 40], 50) == 25
        assert percentile([10, 20, 30, 40], 100) == 40
        assert percentile([7], 99) == 7

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])
        with pytest.raises(ValueError):
            percentile([], 50)


class TestLineTopology:
    def test_addressing(self):
        topo = LineTopology()
        assert topo.dut.fib.lookup("10.0.1.99").oif == topo.dut_in.ifindex
        assert topo.dut.fib.lookup("10.0.2.99").oif == topo.dut_out.ifindex

    def test_install_prefixes(self):
        topo = LineTopology()
        prefixes = topo.install_prefixes(50)
        assert len(prefixes) == 50
        assert topo.dut.fib.lookup("10.125.0.1") is not None

    def test_flow_destination_within_prefixes(self):
        topo = LineTopology()
        topo.install_prefixes(50)
        for flow in range(100):
            assert topo.dut.fib.lookup(topo.flow_destination(flow)) is not None

    def test_shared_clock(self):
        topo = LineTopology()
        assert topo.source.clock is topo.dut.clock is topo.sink.clock


class TestPktgen:
    def test_throughput_measures_delivery(self):
        topo = LineTopology()
        topo.install_prefixes(10)
        result = Pktgen(topo, num_prefixes=10).throughput(packets=300)
        assert result.delivery_ratio == 1.0
        assert 0.5e6 < result.pps < 2e6  # Linux slow path ballpark

    def test_packet_size_padding(self):
        topo = LineTopology()
        topo.install_prefixes(10)
        generator = Pktgen(topo, packet_size=512, num_prefixes=10)
        result = generator.throughput(packets=100)
        assert result.frame_len == 512

    def test_minimum_frame_enforced(self):
        topo = LineTopology()
        topo.install_prefixes(10)
        generator = Pktgen(topo, packet_size=10, num_prefixes=10)
        assert generator.throughput(packets=50).frame_len >= 64

    def test_line_rate_cap_large_packets(self):
        topo = LineTopology()
        topo.install_prefixes(10)
        result = Pktgen(topo, packet_size=1500, num_prefixes=10).throughput(cores=8, packets=200)
        cap = topo.costs.line_rate_pps(1500)
        assert result.pps == pytest.approx(cap)
        assert result.gbps == pytest.approx(25.0, rel=0.01)

    def test_core_scaling_near_linear(self):
        topo = LineTopology()
        topo.install_prefixes(10)
        generator = Pktgen(topo, num_prefixes=10)
        one = generator.throughput(cores=1, packets=300).pps
        four = Pktgen(LineTopologyWithPrefixes(), num_prefixes=10).throughput(cores=4, packets=300).pps
        assert 3.5 < four / one < 4.05


def LineTopologyWithPrefixes():
    topo = LineTopology()
    topo.install_prefixes(10)
    return topo


class TestNetperf:
    def test_single_session_matches_base_rtt(self):
        result = Netperf(dut_service_ns=1000, base_rtt_ns=20000, sessions=1, seed=3).run(2000)
        assert result.avg_us == pytest.approx(20.0, rel=0.15)

    def test_saturation_scales_with_sessions(self):
        low = Netperf(dut_service_ns=1000, base_rtt_ns=10000, sessions=32).run(3000)
        high = Netperf(dut_service_ns=1000, base_rtt_ns=10000, sessions=128).run(3000)
        assert 3.0 < high.avg_us / low.avg_us < 5.0  # ~4x sessions => ~4x RTT

    def test_faster_service_lower_latency(self):
        slow = Netperf(dut_service_ns=1000, base_rtt_ns=10000, sessions=128).run(3000)
        fast = Netperf(dut_service_ns=550, base_rtt_ns=9000, sessions=128).run(3000)
        assert fast.avg_us < slow.avg_us

    def test_tail_shape(self):
        result = Netperf(dut_service_ns=1000, base_rtt_ns=10000, sessions=128).run(4000)
        assert 1.2 < result.p99_us / result.avg_us < 2.0

    def test_deterministic_with_seed(self):
        a = Netperf(dut_service_ns=1000, base_rtt_ns=10000, sessions=16, seed=7).run(500)
        b = Netperf(dut_service_ns=1000, base_rtt_ns=10000, sessions=16, seed=7).run(500)
        assert a.avg_us == b.avg_us

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            Netperf(dut_service_ns=1, base_rtt_ns=1, sessions=0)
        with pytest.raises(ValueError):
            Netperf(dut_service_ns=-1, base_rtt_ns=1)

    def test_measure_base_rtt_through_stack(self):
        topo = LineTopology()
        topo.install_prefixes(5)
        rtt = measure_base_rtt_ns(topo)
        assert 2000 < rtt < 50000  # microseconds-scale round trip


class TestScenarios:
    def test_all_platforms_forward(self):
        for platform in ("linux", "linuxfp", "polycube", "vpp"):
            topo = setup_router(platform, num_prefixes=5)
            result = measure_throughput(topo, packets=200, num_prefixes=5)
            assert result.delivery_ratio == 1.0, platform

    def test_speedup_ordering_router(self):
        """Fig 5's ordering: Linux < Polycube ≈ LinuxFP < VPP."""
        costs = {
            platform: measure_throughput(setup_router(platform, num_prefixes=5), packets=300, num_prefixes=5).per_packet_ns
            for platform in ("linux", "linuxfp", "polycube", "vpp")
        }
        assert costs["linuxfp"] < costs["linux"]
        assert costs["vpp"] < costs["linuxfp"]
        assert abs(costs["polycube"] - costs["linuxfp"]) / costs["linuxfp"] < 0.25

    def test_linuxfp_77_percent_speedup(self):
        linux = measure_throughput(setup_router("linux"), packets=500).pps
        linuxfp = measure_throughput(setup_router("linuxfp"), packets=500).pps
        assert 1.6 < linuxfp / linux < 2.0  # paper: 1.77

    def test_gateway_ipset_beats_plain_rules(self):
        plain = measure_throughput(setup_gateway("linuxfp"), packets=300).per_packet_ns
        with_set = measure_throughput(setup_gateway("linuxfp", use_ipset=True), packets=300).per_packet_ns
        assert with_set < plain

    def test_gateway_latency_ordering(self):
        """Table IV ordering: VPP < LinuxFP(ipset) < Polycube < LinuxFP < Linux."""
        rows = {}
        rows["linux"] = measure_latency(setup_gateway("linux"), transactions=1500).avg_us
        rows["linuxfp"] = measure_latency(setup_gateway("linuxfp"), transactions=1500).avg_us
        rows["linuxfp_ipset"] = measure_latency(setup_gateway("linuxfp", use_ipset=True), transactions=1500).avg_us
        rows["polycube"] = measure_latency(setup_gateway("polycube"), transactions=1500).avg_us
        rows["vpp"] = measure_latency(setup_gateway("vpp"), transactions=1500).avg_us
        assert rows["vpp"] < rows["linuxfp_ipset"] < rows["polycube"] < rows["linuxfp"] < rows["linux"]


class TestFlameGraph:
    def test_forwarding_profile_names_kernel_functions(self):
        graph = profile_forwarding(packets=200)
        collapsed = "\n".join(graph.collapsed())
        for fn in ("ip_rcv", "fib_table_lookup", "ip_forward", "dev_queue_xmit"):
            assert fn in collapsed

    def test_hot_spots_exist(self):
        """The paper's motivating observation: forwarding has hot spots."""
        graph = profile_forwarding(packets=200)
        hottest = graph.hottest(3)
        assert hottest[0][1] > 0.15  # top frame >15% of self time

    def test_rules_shift_the_profile(self):
        without = profile_forwarding(packets=150)
        with_rules = profile_forwarding(packets=150, rules=300)
        def nf_share(fg):
            return sum(share for name, share in fg.hottest(10) if "nf_hook" in name)
        assert nf_share(with_rules) > nf_share(without)

    def test_ascii_render(self):
        graph = profile_forwarding(packets=100)
        art = graph.render_ascii()
        assert "ip_rcv" in art and "█" in art
