"""Scaling linearity: measured multi-core throughput at 1/2/4/8 CPUs.

The acceptance bar for the multi-core data plane: ≥1.6x pipeline throughput
at 2 simulated CPUs versus 1 and monotonic gains through 8, for both the
plain-Linux slow path and the LinuxFP fast path, with the packet-
conservation ledger balancing across all CPUs at every point. The measured
trajectory is written to ``benchmarks/results/BENCH_scaling.json`` — the
perf artifact CI uploads.
"""

import json
import os

import pytest

from repro.measure.scenarios import measure_scaling

CORE_COUNTS = (1, 2, 4, 8)
RESULTS_PATH = os.path.join(
    os.path.dirname(__file__), "..", "..", "benchmarks", "results",
    "BENCH_scaling.json",
)


def assert_ledger_balanced(stack):
    pending = stack.pending_packets()
    assert stack.rx_packets + stack.tx_local_packets == stack.settled + pending
    assert sum(stack.rx_by_cpu.values()) == stack.rx_packets
    assert sum(stack.settled_by_cpu.values()) == stack.settled
    assert sum(stack.dropped_by_cpu.values()) == stack.dropped


@pytest.fixture(scope="module")
def trajectories():
    out = {}
    for platform in ("linux", "linuxfp"):
        runs = measure_scaling(platform, core_counts=CORE_COUNTS)
        rows = []
        for (topo, result), cores in zip(runs, CORE_COUNTS):
            assert result.cores == cores
            assert result.delivered == result.sent  # no loss while scaling
            assert_ledger_balanced(topo.dut.stack)
            rows.append({
                "cores": cores,
                "mpps": round(result.mpps, 4),
                "per_packet_ns": round(result.per_packet_ns, 2),
                "imbalance": round(result.imbalance, 4),
                "busy_ns": [round(b, 1) for b in result.busy_ns],
                "delivered": result.delivered,
                "sent": result.sent,
                "ledger_balanced": True,
            })
        base = rows[0]["mpps"]
        for row in rows:
            row["speedup"] = round(row["mpps"] / base, 4)
        out[platform] = rows
    return out


class TestScalingLinearity:
    @pytest.mark.parametrize("platform", ["linux", "linuxfp"])
    def test_two_cpus_give_at_least_1_6x(self, trajectories, platform):
        rows = {r["cores"]: r for r in trajectories[platform]}
        assert rows[2]["speedup"] >= 1.6, rows

    @pytest.mark.parametrize("platform", ["linux", "linuxfp"])
    def test_gains_are_monotonic_through_8(self, trajectories, platform):
        speedups = [r["speedup"] for r in trajectories[platform]]
        assert speedups == sorted(speedups), speedups
        assert speedups[-1] > speedups[-2]  # 8 CPUs beat 4, strictly

    @pytest.mark.parametrize("platform", ["linux", "linuxfp"])
    def test_load_stays_balanced(self, trajectories, platform):
        for row in trajectories[platform]:
            assert row["imbalance"] < 1.5, row

    def test_fast_path_advantage_survives_multicore(self, trajectories):
        linux = {r["cores"]: r["mpps"] for r in trajectories["linux"]}
        linuxfp = {r["cores"]: r["mpps"] for r in trajectories["linuxfp"]}
        for cores in CORE_COUNTS:
            assert linuxfp[cores] > 1.4 * linux[cores]

    def test_writes_the_bench_artifact(self, trajectories):
        payload = {
            "bench": "scaling",
            "core_counts": list(CORE_COUNTS),
            "packet_size": 64,
            "platforms": trajectories,
        }
        os.makedirs(os.path.dirname(RESULTS_PATH), exist_ok=True)
        with open(RESULTS_PATH, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        with open(RESULTS_PATH) as handle:
            back = json.load(handle)
        assert back["platforms"]["linuxfp"][0]["speedup"] == 1.0
