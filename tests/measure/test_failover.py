"""The failover scorecard: the PR's acceptance criteria, as tests.

Seeded router-kill chaos across >= 3 seeds with a 4-router fleet must
show consistent hashing disrupting at most 1/N + 10 % of established
flows while the mod-N baseline disrupts at least half; graceful drains
disrupt none; every kernel's conservation ledger settles.
"""

import json

import pytest

from repro.kernel.fib import POLICY_MODN, POLICY_RESILIENT
from repro.measure.failover import (
    FailoverConfig,
    run_failover,
    run_scorecard,
    write_report,
)

SEEDS = [7, 19, 42]
N = 4


def run(seed, event="kill", policy=POLICY_RESILIENT, chaos=True):
    return run_failover(
        FailoverConfig(seed=seed, num_routers=N, policy=policy, event=event, chaos=chaos)
    )


class TestAcceptance:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_resilient_kill_within_bound(self, seed):
        report = run(seed)
        assert report.detected
        assert report.established > 0
        assert report.disrupted_fraction <= 1.0 / N + 0.10
        assert report.conserved
        assert report.ok

    @pytest.mark.parametrize("seed", SEEDS)
    def test_modn_kill_disrupts_most(self, seed):
        report = run(seed, policy=POLICY_MODN)
        assert report.detected
        assert report.disrupted_fraction >= 0.5
        assert report.conserved
        assert report.ok

    @pytest.mark.parametrize("seed", SEEDS)
    def test_drain_disrupts_none(self, seed):
        report = run(seed, event="drain")
        assert report.disrupted == 0
        assert report.drained
        assert report.conserved
        assert report.ok

    def test_partition_detects_without_loss(self):
        report = run(SEEDS[0], event="partition")
        assert report.detected
        assert report.blackholed == 0
        assert report.disrupted_fraction <= 1.0 / N + 0.10
        assert report.ok

    def test_ledgers_settle_per_kernel(self):
        report = run(SEEDS[0])
        hosts = set(report.conservation)
        assert {"spine", "sink", "gw0", "gw1", "gw2", "gw3"} <= hosts
        for host, entry in report.conservation.items():
            assert entry["conserved"], f"{host} leaked packets"


class TestMechanics:
    def test_runs_are_deterministic(self):
        a = run(SEEDS[1]).to_dict()
        b = run(SEEDS[1]).to_dict()
        assert a == b

    def test_detection_is_bfd_fast(self):
        report = run(SEEDS[0])
        # 50 ms probes x 3 misses: detection lands within ~10 probe periods
        assert report.detection_ns is not None
        assert report.detection_ns <= 500_000_000

    def test_kill_blackholes_are_visible(self):
        report = run(SEEDS[0])
        assert report.blackholed > 0  # the BFD blind spot is honest

    def test_incidents_flow_through_controller(self):
        report = run(SEEDS[0])
        assert report.incidents_by_kind.get("router-offline", 0) >= 1

    def test_chaos_mode_records_fault_firings(self):
        report = run(SEEDS[0], chaos=True)
        assert report.faults_fired.get("router_kill", 0) == 1

    def test_bad_event_rejected(self):
        with pytest.raises(ValueError):
            FailoverConfig(event="meteor")


class TestScorecard:
    def test_scorecard_passes_and_writes_artifact(self, tmp_path):
        payload = run_scorecard(SEEDS, num_routers=N, num_flows=64)
        assert payload["all_ok"]
        summary = payload["summary"]
        assert summary["resilient_kill_max_fraction"] <= summary["resilient_threshold"]
        assert summary["modn_kill_min_fraction"] >= summary["modn_threshold"]
        assert summary["drain_max_fraction"] == 0.0
        assert summary["all_conserved"]
        out = tmp_path / "BENCH_failover.json"
        write_report(payload, str(out))
        loaded = json.loads(out.read_text())
        assert loaded["benchmark"] == "failover"
        assert len(loaded["runs"]) == len(SEEDS) * 4

    def test_cli_gates_on_thresholds(self, tmp_path, monkeypatch):
        from repro.tools.fpmtool import main

        out = tmp_path / "BENCH_failover.json"
        code = main(
            ["failover", "--seeds", "7", "--flows", "64", "--out", str(out)]
        )
        assert code == 0
        assert out.exists()

    def test_cli_exits_nonzero_when_threshold_fails(self, monkeypatch):
        # sabotage the threshold computation so a passing run "fails"
        import repro.measure.failover as failover_mod
        from repro.tools.fpmtool import main

        real = failover_mod.run_scorecard

        def rigged(seeds, **kw):
            payload = real(seeds, **kw)
            payload["all_ok"] = False
            return payload

        monkeypatch.setattr(failover_mod, "run_scorecard", rigged)
        assert main(["failover", "--seeds", "7", "--flows", "32"]) == 1
