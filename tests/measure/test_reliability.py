"""Storm-scale reliability: the chaos harness and its CI artifact.

The acceptance bar for the resilience tentpole: a heavy-tailed traffic
storm at 8 CPUs with every fault site armed (control plane *and* data
plane), a CPU hot-unplugged and replugged mid-storm, and rolling
reconfiguration — and at the end the conservation ledger balances, nothing
raised an unhandled exception, and the controller is healthy or honestly
quarantined. The per-seed scorecards are written to
``benchmarks/results/BENCH_reliability.json`` — the artifact CI uploads and
gates on.
"""

import json
import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.measure.scenarios import setup_gateway
from repro.measure.storm import (
    RECONVERGE_ROUNDS,
    RECONVERGE_STEP_NS,
    StormConfig,
    run_storm,
    write_report,
)
from repro.netsim.packet import make_udp
from repro.testing import faults

SEEDS = (7, 19, 42)
RESULTS_PATH = os.path.join(
    os.path.dirname(__file__), "..", "..", "benchmarks", "results",
    "BENCH_reliability.json",
)


@pytest.fixture(scope="module")
def reports():
    return {seed: run_storm(StormConfig(seed=seed)) for seed in SEEDS}


class TestStorm:
    def test_every_seed_conserves_and_recovers(self, reports):
        for seed, report in reports.items():
            assert report.ok, (seed, report.to_dict())
            assert report.injected == report.config.packets
            assert (
                report.rx_packets + report.tx_local_packets
                == report.settled + report.pending
            ), seed
            assert not report.unhandled_exceptions, seed

    def test_the_storm_actually_stormed(self, reports):
        """Guard against a storm so tame it proves nothing: every run must
        have overflowed backlogs, fired faults, and hot-unplugged a CPU."""
        for seed, report in reports.items():
            assert report.drops_by_reason.get("backlog_overflow", 0) > 0, seed
            assert report.faults_fired, seed
            assert any(e.startswith("offline:") for e in report.hotplug_events), seed
            assert report.reconfigurations > 0, seed
            # the deepest backlog hit (at least) the configured bound; the
            # mid-storm sysctl wobble may have raised it above that
            assert max(report.backlog_high_water) >= report.config.max_backlog, seed

    def test_hotplug_surfaced_as_incidents(self, reports):
        for seed, report in reports.items():
            assert report.incidents_by_kind.get("cpu-offline", 0) >= 1, seed

    def test_storm_is_deterministic_per_seed(self, reports):
        again = run_storm(StormConfig(seed=SEEDS[0]))
        assert again.to_dict() == reports[SEEDS[0]].to_dict()

    def test_unarmed_storm_still_overflows_but_fires_no_faults(self):
        report = run_storm(StormConfig(seed=1, packets=1200, arm_faults=False))
        assert report.ok
        assert not report.faults_fired
        assert report.drops_by_reason.get("backlog_overflow", 0) > 0

    def test_writes_the_bench_artifact(self, reports):
        payload = write_report([reports[s] for s in SEEDS], RESULTS_PATH)
        assert payload["all_ok"]
        with open(RESULTS_PATH) as handle:
            back = json.load(handle)
        assert back["benchmark"] == "reliability"
        assert [run["config"]["seed"] for run in back["runs"]] == list(SEEDS)
        for run in back["runs"]:
            assert run["ok"]
            assert run["conservation"]["conserved"]


def storm_frame(topo, flow, seq=0):
    return make_udp(
        topo.src_eth.mac, topo.dut_in.mac, "10.0.1.2",
        topo.flow_destination(flow, 8),
        sport=1024 + flow, dport=9, ttl=16, payload=seq.to_bytes(4, "big"),
    ).to_bytes()


class TestChaosProperty:
    """Every fault site armed — including the data-plane sites — at 4 CPUs:
    for any seed and probability, the ledger balances and the controller
    ends healthy or quarantined, never wedged (degraded with no retry
    scheduled and no quarantine verdict)."""

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        probability=st.sampled_from([0.02, 0.1, 0.3]),
    )
    def test_arm_everything_never_wedges_the_stack(self, seed, probability):
        topo = setup_gateway("linuxfp", num_rules=10, num_prefixes=8, num_queues=4)
        dut = topo.dut
        dut.sysctl_set("net.core.netdev_max_backlog", "32")
        with faults.injected(seed=seed) as inj:
            inj.arm_everything(probability=probability, include_data_plane=True)
            for seq in range(6):
                burst = [storm_frame(topo, f, seq) for f in range(48)]
                topo.dut_in.nic.receive_burst(burst)
                topo.clock.advance(2_000_000)
                topo.controller.tick()
        # faults disarmed: bounded clock advancement must settle things
        for _ in range(RECONVERGE_ROUNDS):
            topo.clock.advance(RECONVERGE_STEP_NS)
            topo.controller.tick()
            if topo.controller.health()["ok"]:
                break
        stack = dut.stack
        assert stack.rx_packets + stack.tx_local_packets == stack.settled + stack.pending_packets()
        health = topo.controller.health()
        wedged = (
            not health["ok"]
            and not health["quarantined"]
            and health["retry_at_ns"] is None
            and health["degraded"]
        )
        assert not wedged, health
        assert health["ok"] or health["quarantined"], health
