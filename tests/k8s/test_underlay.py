"""Tests for the underlay learning switch and failure injection."""

import pytest

from repro.k8s import Cluster
from repro.k8s.underlay import UnderlaySwitch
from repro.kernel.sockets import tcp_rr_server
from repro.netsim.addresses import ipv4
from repro.netsim.nic import NIC, Wire
from repro.netsim.packet import IPPROTO_TCP, IPv4, TCP, make_udp


def port_host(name):
    nic = NIC(name)
    received = []
    nic.attach(lambda frame, q: received.append(frame))
    return nic, received


class TestUnderlaySwitch:
    def make(self, n=3):
        switch = UnderlaySwitch()
        hosts = []
        for i in range(n):
            nic, received = port_host(f"h{i}")
            switch.attach(nic)
            hosts.append((nic, received))
        return switch, hosts

    def frame(self, src_idx, dst_mac):
        return make_udp(f"02:aa:00:00:00:0{src_idx + 1}", dst_mac, "10.0.0.1", "10.0.0.2").to_bytes()

    def test_unknown_unicast_floods(self):
        switch, hosts = self.make()
        hosts[0][0].transmit(self.frame(0, "02:aa:00:00:00:02"))
        assert len(hosts[1][1]) == 1 and len(hosts[2][1]) == 1
        assert len(hosts[0][1]) == 0  # not back out the ingress

    def test_learning_narrows_forwarding(self):
        switch, hosts = self.make()
        hosts[1][0].transmit(self.frame(1, "02:aa:00:00:00:01"))  # teaches port 1
        for __, received in hosts:
            received.clear()
        hosts[0][0].transmit(self.frame(0, "02:aa:00:00:00:02"))
        assert len(hosts[1][1]) == 1
        assert len(hosts[2][1]) == 0

    def test_broadcast_always_floods(self):
        switch, hosts = self.make()
        hosts[0][0].transmit(self.frame(0, "ff:ff:ff:ff:ff:ff"))
        assert len(hosts[1][1]) == 1 and len(hosts[2][1]) == 1

    def test_runt_frames_ignored(self):
        switch, hosts = self.make()
        hosts[0][0].transmit(b"\x00" * 10)
        assert all(len(received) == 0 for __, received in hosts[1:])


class TestFailureInjection:
    def rr(self, cluster, client, server, sport=40000):
        responses = []
        client.kernel.sockets.bind(IPPROTO_TCP, sport, lambda k, skb: responses.append(1))
        client.kernel.send_ip(
            IPv4(src=ipv4(client.ip), dst=ipv4(server.ip), proto=IPPROTO_TCP),
            TCP(sport=sport, dport=5201, flags=TCP.ACK | TCP.PSH),
            b"\x01",
        )
        client.kernel.sockets.unbind(IPPROTO_TCP, sport)
        return bool(responses)

    def test_node_link_down_breaks_then_restores_inter_pod(self):
        cluster = Cluster(workers=2)
        client, server = cluster.pod_pair(intra=False)
        tcp_rr_server(server.kernel, 5201)
        assert self.rr(cluster, client, server)
        node = cluster.workers[1]
        node.kernel.set_link("eth0", False)
        assert not self.rr(cluster, client, server, sport=40001)
        node.kernel.set_link("eth0", True)
        # the underlay address and connected route must be restored
        from repro.tools import ip

        ip(node.kernel, f"route add 192.168.1.0/24 dev eth0")
        assert self.rr(cluster, client, server, sport=40002)

    def test_pod_veth_down_isolates_pod(self):
        cluster = Cluster(workers=2)
        client, server = cluster.pod_pair(intra=True)
        tcp_rr_server(server.kernel, 5201)
        assert self.rr(cluster, client, server)
        node = cluster.workers[0]
        host_veth = node.host_veth_names()[1]  # server-side veth
        node.kernel.set_link(host_veth, False)
        assert not self.rr(cluster, client, server, sport=40003)

    def test_accelerated_cluster_survives_pod_churn(self):
        cluster = Cluster(workers=2)
        cluster.accelerate()
        node = cluster.workers[0]
        for round_number in range(3):
            pods = [cluster.create_pod(node) for __ in range(3)]
            server = pods[-1]
            tcp_rr_server(server.kernel, 5201)
            client = pods[0]
            assert self.rr(cluster, client, server, sport=41000 + round_number)
            server.kernel.sockets.unbind(IPPROTO_TCP, 5201)
        # the controller tracked every veth that appeared
        assert len(node.controller.deployed_summary()) >= 10
