"""Tests for the Kubernetes substrate and transparent CNI acceleration."""

import pytest

from repro.k8s import Cluster
from repro.kernel.sockets import tcp_rr_server, udp_echo_server
from repro.netsim.addresses import ipv4
from repro.netsim.packet import IPPROTO_TCP, IPPROTO_UDP, IPv4, TCP, UDP


def rr_once(cluster, client, server, sport=40000, dport=5201):
    """One TCP_RR transaction; returns simulated RTT ns or None if lost."""
    responses = []
    client.kernel.sockets.bind(IPPROTO_TCP, sport, lambda k, skb: responses.append(k.clock.now_ns))
    try:
        t0 = cluster.clock.now_ns
        client.kernel.send_ip(
            IPv4(src=ipv4(client.ip), dst=ipv4(server.ip), proto=IPPROTO_TCP),
            TCP(sport=sport, dport=dport, flags=TCP.ACK | TCP.PSH),
            b"\x01",
        )
        if responses:
            return responses[-1] - t0
        return None
    finally:
        client.kernel.sockets.unbind(IPPROTO_TCP, sport)


class TestClusterSetup:
    def test_three_node_cluster(self):
        cluster = Cluster(workers=2)
        assert len(cluster.nodes) == 3
        names = {n.name for n in cluster.nodes}
        assert names == {"node1", "node2", "node3"}

    def test_flannel_devices_created(self):
        cluster = Cluster(workers=2)
        for node in cluster.nodes:
            assert "cni0" in node.kernel.devices
            assert "flannel.1" in node.kernel.devices
            assert node.kernel.sysctl.get_bool("net.ipv4.ip_forward")

    def test_pod_subnets_distinct(self):
        cluster = Cluster(workers=2)
        subnets = {n.flannel.pod_subnet for n in cluster.nodes}
        assert len(subnets) == 3

    def test_remote_routes_installed(self):
        cluster = Cluster(workers=2)
        node1 = cluster.nodes[0]
        route = node1.kernel.fib.lookup("10.244.2.7")
        assert route is not None
        assert route.oif == node1.kernel.devices.by_name("flannel.1").ifindex

    def test_pod_gets_ip_and_default_route(self):
        cluster = Cluster(workers=2)
        pod = cluster.create_pod(cluster.workers[0])
        assert pod.ip.startswith("10.244.2.")
        assert pod.kernel.fib.lookup("8.8.8.8") is not None

    def test_host_veth_enslaved_to_cni0(self):
        cluster = Cluster(workers=2)
        node = cluster.workers[0]
        cluster.create_pod(node)
        veth = node.kernel.devices.by_name(node.host_veth_names()[0])
        assert veth.master == node.kernel.devices.by_name("cni0").ifindex


class TestPodConnectivity:
    def test_intra_node_rr(self):
        cluster = Cluster(workers=2)
        client, server = cluster.pod_pair(intra=True)
        tcp_rr_server(server.kernel, 5201)
        assert rr_once(cluster, client, server) is not None

    def test_inter_node_rr_via_vxlan(self):
        cluster = Cluster(workers=2)
        client, server = cluster.pod_pair(intra=False)
        tcp_rr_server(server.kernel, 5201)
        rtt = rr_once(cluster, client, server)
        assert rtt is not None
        # inter-node crosses the overlay: strictly slower than intra
        cluster2 = Cluster(workers=2)
        c2, s2 = cluster2.pod_pair(intra=True)
        tcp_rr_server(s2.kernel, 5201)
        assert rtt > rr_once(cluster2, c2, s2)

    def test_udp_echo_inter_node(self):
        cluster = Cluster(workers=2)
        client, server = cluster.pod_pair(intra=False)
        udp_echo_server(server.kernel, 7)
        got = []
        client.kernel.sockets.bind(IPPROTO_UDP, 9000, lambda k, skb: got.append(skb.pkt.payload))
        client.kernel.send_ip(
            IPv4(src=ipv4(client.ip), dst=ipv4(server.ip), proto=IPPROTO_UDP),
            UDP(sport=9000, dport=7),
            b"overlay",
        )
        assert got == [b"overlay"]

    def test_many_pods(self):
        cluster = Cluster(workers=2)
        node = cluster.workers[0]
        pods = [cluster.create_pod(node) for __ in range(5)]
        assert len({p.ip for p in pods}) == 5
        tcp_rr_server(pods[4].kernel, 5201)
        assert rr_once(cluster, pods[0], pods[4]) is not None


class TestTransparentAcceleration:
    def test_accelerate_deploys_tc_fast_paths(self):
        cluster = Cluster(workers=2)
        client, server = cluster.pod_pair(intra=True)
        cluster.accelerate()
        node = cluster.workers[0]
        summary = node.controller.deployed_summary()
        veths = node.host_veth_names()
        assert all(v in summary for v in veths)
        assert "bridge" in summary[veths[0]]
        # TC hook, not XDP
        assert node.kernel.devices.by_name(veths[0]).tc_ingress_prog is not None

    def test_intra_node_speedup(self):
        def measure(accelerated):
            cluster = Cluster(workers=2)
            client, server = cluster.pod_pair(intra=True)
            if accelerated:
                cluster.accelerate()
            tcp_rr_server(server.kernel, 5201)
            rr_once(cluster, client, server)  # warm (learning, ARP)
            return rr_once(cluster, client, server)

        slow = measure(False)
        fast = measure(True)
        assert fast < slow
        assert 0.70 < fast / slow < 0.95  # paper: ~0.82

    def test_inter_node_speedup(self):
        def measure(accelerated):
            cluster = Cluster(workers=2)
            client, server = cluster.pod_pair(intra=False)
            if accelerated:
                cluster.accelerate()
            tcp_rr_server(server.kernel, 5201)
            rr_once(cluster, client, server)
            return rr_once(cluster, client, server)

        slow = measure(False)
        fast = measure(True)
        assert fast < slow
        assert 0.80 < fast / slow < 0.98  # paper: ~0.86

    def test_new_pod_triggers_redeploy(self):
        cluster = Cluster(workers=2)
        cluster.accelerate()
        node = cluster.workers[0]
        rebuilds = node.controller.rebuilds
        cluster.create_pod(node)
        assert node.controller.rebuilds > rebuilds
        veths = node.host_veth_names()
        assert veths[-1] in node.controller.deployed_summary()

    def test_acceleration_preserves_connectivity(self):
        cluster = Cluster(workers=2)
        client, server = cluster.pod_pair(intra=False)
        cluster.accelerate()
        tcp_rr_server(server.kernel, 5201)
        for __ in range(5):
            assert rr_once(cluster, client, server) is not None
