"""Tests for kube-proxy-lite: k8s Services over ipvs."""

import pytest

from repro.k8s import Cluster
from repro.k8s.kube_proxy import KubeProxy, ServiceError
from repro.kernel.sockets import tcp_rr_server
from repro.netsim.addresses import ipv4
from repro.netsim.packet import IPPROTO_TCP, IPv4, TCP


def service_cluster():
    cluster = Cluster(workers=2)
    proxy = KubeProxy(cluster)
    client = cluster.create_pod(cluster.workers[0], "client")
    backend_a = cluster.create_pod(cluster.workers[0], "backend-a")
    backend_b = cluster.create_pod(cluster.workers[1], "backend-b")
    for backend in (backend_a, backend_b):
        tcp_rr_server(backend.kernel, 8080, response_size=1)
    service = proxy.create_service("web", port=80, target_port=8080, endpoints=[backend_a, backend_b])
    return cluster, proxy, service, client, backend_a, backend_b


def call_service(cluster, client, service, sport):
    """One request to the VIP; returns True when a backend responded."""
    responses = []
    client.kernel.sockets.bind(IPPROTO_TCP, sport, lambda k, skb: responses.append(skb))
    client.kernel.send_ip(
        IPv4(src=ipv4(client.ip), dst=ipv4(service.cluster_ip), proto=IPPROTO_TCP),
        TCP(sport=sport, dport=service.port, flags=TCP.ACK | TCP.PSH),
        b"\x01",
    )
    client.kernel.sockets.unbind(IPPROTO_TCP, sport)
    return len(responses) == 1


class TestKubeProxy:
    def test_vip_reaches_backends(self):
        cluster, proxy, service, client, a, b = service_cluster()
        assert call_service(cluster, client, service, 30000)

    def test_round_robin_across_nodes(self):
        cluster, proxy, service, client, a, b = service_cluster()
        before_a = a.kernel.sockets.delivered
        before_b = b.kernel.sockets.delivered
        for i in range(6):
            assert call_service(cluster, client, service, 30100 + i)
        # rr on the client's node alternates between both backends,
        # including the one on the other node (via the overlay)
        assert a.kernel.sockets.delivered - before_a == 3
        assert b.kernel.sockets.delivered - before_b == 3

    def test_flow_affinity(self):
        """Packets of one flow stick to one backend (conntrack pinning)."""
        cluster, proxy, service, client, a, b = service_cluster()
        for __ in range(4):
            assert call_service(cluster, client, service, 31000)
        total_a = a.kernel.sockets.delivered
        total_b = b.kernel.sockets.delivered
        assert {total_a, total_b} == {4, 0}

    def test_remove_endpoint(self):
        cluster, proxy, service, client, a, b = service_cluster()
        proxy.remove_endpoint("web", b)
        for i in range(4):
            assert call_service(cluster, client, service, 32000 + i)
        assert b.kernel.sockets.delivered == 0

    def test_delete_service(self):
        cluster, proxy, service, client, a, b = service_cluster()
        proxy.delete_service("web")
        assert not call_service(cluster, client, service, 33000)

    def test_duplicate_service_rejected(self):
        cluster, proxy, service, client, a, b = service_cluster()
        with pytest.raises(ServiceError):
            proxy.create_service("web", port=80, endpoints=[a])

    def test_empty_endpoints_rejected(self):
        cluster = Cluster(workers=2)
        proxy = KubeProxy(cluster)
        with pytest.raises(ServiceError):
            proxy.create_service("empty", port=80, endpoints=[])

    def test_accelerated_cluster_still_serves(self):
        """LinuxFP with the ipvs FPM enabled keeps Services working."""
        cluster, proxy, service, client, a, b = service_cluster()
        cluster.accelerate(enable_ipvs=True)
        for i in range(4):
            assert call_service(cluster, client, service, 34000 + i)
        node = cluster.workers[0]
        assert "ipvs" in str(node.controller.deployed_summary())
