"""Tests for the pwru-style packet tracer: filters, ring, journeys."""

import pytest

from repro.measure.topology import LineTopology
from repro.netsim.clock import Clock
from repro.netsim.packet import make_tcp, make_udp
from repro.observability.tracer import (
    PacketTracer,
    TraceFilter,
    TraceFilterError,
    describe_packet,
)

MAC = "02:00:00:00:00:01"


def udp(src="10.0.1.2", dst="10.100.0.1", sport=1234, dport=9):
    return make_udp(MAC, MAC, src, dst, sport=sport, dport=dport)


class TestTraceFilter:
    def test_parse_full_expression(self):
        flt = TraceFilter.parse("src=10.0.0.0/8,proto=udp,dport=9,dev=eth0")
        assert flt.proto == 17
        assert flt.dport == 9
        assert flt.dev == "eth0"
        assert flt.matches(udp(), "eth0")
        assert not flt.matches(udp(), "eth1")
        assert not flt.matches(udp(src="192.168.0.1"), "eth0")

    def test_parse_proto_by_number_and_name(self):
        assert TraceFilter.parse("proto=tcp").proto == 6
        assert TraceFilter.parse("proto=6").proto == 6
        assert TraceFilter.parse("proto=icmp").proto == 1

    def test_parse_bare_address_gets_host_prefix(self):
        flt = TraceFilter.parse("dst=10.100.0.1")
        assert flt.matches(udp(), None)
        assert not flt.matches(udp(dst="10.100.0.2"), None)

    def test_parse_rejects_garbage(self):
        with pytest.raises(TraceFilterError):
            TraceFilter.parse("nonsense")
        with pytest.raises(TraceFilterError):
            TraceFilter.parse("proto=quic")
        with pytest.raises(TraceFilterError):
            TraceFilter.parse("color=red")

    def test_port_filter_skips_non_l4(self):
        flt = TraceFilter.parse("dport=9")
        from repro.netsim.packet import make_arp_request

        arp = make_arp_request(MAC, "10.0.0.1", "10.0.0.2")
        assert not flt.matches(arp, None)

    def test_unparsed_frame_matches_only_unconstrained(self):
        assert TraceFilter().matches(None, "eth0")
        assert TraceFilter(dev="eth0").matches(None, "eth0")
        assert not TraceFilter.parse("proto=udp").matches(None, "eth0")

    def test_tcp_ports(self):
        flt = TraceFilter.parse("proto=tcp,sport=80")
        pkt = make_tcp(MAC, MAC, "10.0.0.1", "10.0.0.2", sport=80, dport=5000)
        assert flt.matches(pkt, None)
        assert not flt.matches(udp(sport=80), None)


class TestDescribe:
    def test_udp_headline(self):
        assert describe_packet(udp()) == "10.0.1.2:1234 > 10.100.0.1:9 udp ttl=64"

    def test_unparsed(self):
        assert describe_packet(None) == "(unparsed frame)"


class TestPacketTracer:
    def test_disarmed_captures_nothing(self):
        tracer = PacketTracer(Clock())
        assert tracer.begin("rx", "eth0", udp()) is None
        assert not tracer.recording

    def test_journey_events_and_outcome(self):
        clock = Clock()
        tracer = PacketTracer(clock)
        tracer.arm()
        token = tracer.begin("rx", "eth0", udp())
        assert token is not None and tracer.recording
        clock.advance(100)
        tracer.event("stage", "ip_rcv")
        tracer.set_outcome("tx")
        tracer.set_outcome("later")  # first outcome wins
        clock.advance(50)
        tracer.end(token)
        assert not tracer.recording
        [trace] = tracer.traces()
        assert trace.outcome == "tx"
        assert trace.elapsed_ns() == 150
        assert [(e.stage, e.detail) for e in trace.events] == [("stage", "ip_rcv")]
        assert trace.events[0].ns == 100

    def test_filter_gates_begin(self):
        tracer = PacketTracer(Clock())
        tracer.arm(TraceFilter.parse("dport=9"))
        assert tracer.begin("rx", "eth0", udp(dport=53)) is None
        assert tracer.begin("rx", "eth0", udp(dport=9)) is not None

    def test_ring_bound_with_overflow_accounting(self):
        clock = Clock()
        tracer = PacketTracer(clock, capacity=4)
        tracer.arm()
        for i in range(10):
            token = tracer.begin("rx", "eth0", udp(sport=i + 1))
            tracer.end(token)
        assert len(tracer.ring) == 4
        assert tracer.overflowed == 6
        assert tracer.matched == 10
        # the survivors are the newest four
        assert [t.trace_id for t in tracer.traces()] == [7, 8, 9, 10]
        summary = tracer.summary()
        assert summary["captured"] == 4 and summary["overflowed"] == 6

    def test_per_trace_event_cap(self):
        tracer = PacketTracer(Clock(), max_events=3)
        tracer.arm()
        token = tracer.begin("rx", "eth0", udp())
        for i in range(5):
            tracer.event("stage", f"s{i}")
        tracer.end(token)
        [trace] = tracer.traces()
        assert len(trace.events) == 3
        assert trace.truncated_events == 2
        assert any("truncated" in line for line in trace.render())

    def test_disarm_drops_in_flight(self):
        tracer = PacketTracer(Clock())
        tracer.arm()
        token = tracer.begin("rx", "eth0", udp())
        tracer.disarm()
        tracer.end(token)  # already evicted from the active stack: no-op
        assert tracer.traces() == []

    def test_clear_resets_ring_and_counters(self):
        tracer = PacketTracer(Clock())
        tracer.arm(capacity=1)
        for __ in range(3):
            tracer.end(tracer.begin("rx", None, udp()))
        tracer.clear()
        assert tracer.traces() == [] and tracer.matched == 0 and tracer.overflowed == 0


class TestPipelineIntegration:
    def test_forwarded_packet_journey(self):
        topo = LineTopology()
        topo.install_prefixes(4)
        topo.prewarm_neighbors()
        tracer = topo.dut.observability.tracer
        tracer.arm(TraceFilter.parse("proto=udp,dport=9"))
        frame = make_udp(
            topo.src_eth.mac, topo.dut_in.mac, "10.0.1.2", "10.100.0.1", dport=9
        ).to_bytes()
        topo.dut_in.nic.receive_from_wire(frame)
        [trace] = tracer.traces()
        assert trace.dev == "eth0"
        assert trace.outcome == "tx"
        stages = [e.detail for e in trace.events if e.stage == "stage"]
        assert "ip_rcv" in stages and "ip_forward" in stages
        assert trace.end_ns > trace.start_ns

    def test_dropped_packet_records_kfree_skb(self):
        topo = LineTopology()
        topo.install_prefixes(4)
        topo.prewarm_neighbors()
        tracer = topo.dut.observability.tracer
        tracer.arm()
        frame = make_udp(
            topo.src_eth.mac, topo.dut_in.mac, "10.0.1.2", "10.100.0.1", ttl=1
        ).to_bytes()
        topo.dut_in.nic.receive_from_wire(frame)
        drops = [t for t in tracer.traces() if t.outcome == "drop:ttl_exceeded"]
        assert len(drops) == 1
        kfree = [e for e in drops[0].events if e.stage == "kfree_skb"]
        assert kfree and kfree[0].detail == "ttl_exceeded"

    def test_stage_latency_histograms_populate(self):
        topo = LineTopology()
        topo.install_prefixes(4)
        topo.prewarm_neighbors()
        frame = make_udp(
            topo.src_eth.mac, topo.dut_in.mac, "10.0.1.2", "10.100.0.1"
        ).to_bytes()
        for __ in range(8):
            topo.dut_in.nic.receive_from_wire(frame)
        hists = topo.dut.observability.stage_latency
        assert "ip_forward" in hists
        assert hists["ip_forward"].count == 8
        assert hists["ip_forward"].mean() > 0
