"""Tests for the unified metrics registry (snapshot, JSON, Prometheus)."""

import json
import re

from repro.measure.topology import LineTopology
from repro.netsim.packet import make_udp
from repro.observability.metrics import MetricsRegistry

# one Prometheus sample line: name{labels} value
SAMPLE_RE = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_]+="[^"]*"(,[a-zA-Z_]+="[^"]*")*\})? '
    r"[0-9.eE+-]+$"
)


def traffic_topo():
    topo = LineTopology()
    topo.install_prefixes(4)
    topo.prewarm_neighbors()

    def send(dst="10.100.0.1", ttl=64):
        pkt = make_udp(topo.src_eth.mac, topo.dut_in.mac, "10.0.1.2", dst, dport=9, ttl=ttl)
        topo.dut_in.nic.receive_from_wire(pkt.to_bytes())

    for __ in range(4):
        send()
    send(ttl=1)  # ttl_exceeded
    send(dst="192.0.2.1")  # no_route
    return topo


class TestSnapshot:
    def test_snapshot_shape(self):
        topo = traffic_topo()
        snap = MetricsRegistry(topo.dut).snapshot()
        assert snap["host"] == "dut"
        assert snap["stack"]["rx_packets"] == 6
        assert snap["stack"]["drops"]["ttl_exceeded"] == 1
        assert snap["stack"]["drops"]["no_route"] == 1
        assert snap["stack"]["outcomes"]["tx"] >= 4
        assert snap["drops_by_device"]["eth0/ttl_exceeded"] == 1
        assert snap["drops_by_subsys"]["ip"] == 2
        assert "ip_forward" in snap["stage_latency"]
        assert snap["tracer"]["armed"] is False
        # ledger closes in the exported view too
        stack = snap["stack"]
        assert stack["rx_packets"] + stack["tx_local_packets"] == (
            stack["settled"] + stack["pending"]
        )

    def test_json_round_trips(self):
        topo = traffic_topo()
        text = MetricsRegistry(topo.dut).to_json()
        parsed = json.loads(text)
        assert parsed["stack"]["drops"]["ttl_exceeded"] == 1


class TestPrometheus:
    def test_exposition_is_well_formed(self):
        topo = traffic_topo()
        text = MetricsRegistry(topo.dut).to_prometheus()
        assert text.endswith("\n")
        for line in text.splitlines():
            if not line or line.startswith("#"):
                continue
            assert SAMPLE_RE.match(line), f"malformed sample line: {line!r}"

    def test_core_families_present(self):
        topo = traffic_topo()
        text = MetricsRegistry(topo.dut).to_prometheus()
        assert "linuxfp_rx_packets_total 6" in text
        assert 'linuxfp_drops_total{reason="ttl_exceeded",subsys="ip"} 1' in text
        assert 'linuxfp_device_drops_total{device="eth0",reason="no_route"} 1' in text
        assert 'linuxfp_outcomes_total{outcome="tx"}' in text
        # histogram family with cumulative buckets and +Inf
        assert "linuxfp_stage_latency_ns_bucket" in text
        assert 'le="+Inf"' in text
        assert "linuxfp_stage_latency_ns_count" in text

    def test_label_escaping(self):
        from repro.observability.metrics import _escape_label, _labels

        assert _escape_label('a"b\\c\nd') == 'a\\"b\\\\c\\nd'
        assert _labels() == ""
        assert _labels(dev="eth0") == '{dev="eth0"}'

    def test_controller_families(self):
        from repro.core import Controller

        topo = LineTopology()
        topo.install_prefixes(4)
        controller = Controller(topo.dut, hook="xdp")
        controller.start()
        registry = controller.metrics()
        text = registry.to_prometheus()
        assert "linuxfp_controller_healthy 1" in text
        assert "linuxfp_controller_rebuilds_total" in text
        snap = registry.snapshot()
        assert snap["controller"]["health"]["ok"] is True
        assert "flow_cache" in snap
