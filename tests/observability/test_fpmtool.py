"""CLI tests for ``python -m repro.tools.fpmtool``."""

import json

import pytest

from repro.tools.fpmtool import main


def run(capsys, argv):
    rc = main(argv)
    out = capsys.readouterr().out
    return rc, out


class TestSelfCheck:
    def test_clean_tree_passes(self, capsys):
        rc, out = run(capsys, ["drops", "--self-check"])
        assert rc == 0
        assert "audit clean" in out

    def test_needs_no_scenario(self, capsys):
        # --self-check must not build topologies or inject traffic
        rc, out = run(capsys, ["--packets", "999999", "drops", "--self-check"])
        assert rc == 0


class TestDrops:
    def test_router_drop_table_and_ledger(self, capsys):
        rc, out = run(capsys, ["--scenario", "router", "--packets", "24", "drops"])
        assert rc == 0
        assert "ttl_exceeded" in out
        assert "no_route" in out
        assert "malformed" in out
        assert "balanced" in out

    def test_gateway_includes_blacklist_drop(self, capsys):
        rc, out = run(capsys, ["--scenario", "gateway", "--packets", "24", "drops"])
        assert rc == 0
        # the blacklisted source dies in the fast path (xdp_drop) or, on the
        # slow path, in filter/FORWARD (nf_forward)
        assert "xdp_drop" in out or "nf_forward" in out


class TestTrace:
    def test_filtered_trace(self, capsys):
        rc, out = run(
            capsys,
            ["--scenario", "router", "--packets", "8", "trace",
             "--filter", "proto=udp,dport=9", "--limit", "2"],
        )
        assert rc == 0
        assert "matched" in out
        assert "#" in out  # at least one rendered trace header

    def test_bad_filter_rejected(self, capsys):
        rc = main(["trace", "--filter", "color=red"])
        assert rc == 2


class TestMetrics:
    def test_json_output_parses(self, capsys):
        rc, out = run(
            capsys, ["--scenario", "router", "--packets", "8", "metrics", "--format", "json"]
        )
        assert rc == 0
        snap = json.loads(out)
        assert snap["stack"]["rx_packets"] > 0
        assert "controller" in snap

    def test_prom_output(self, capsys):
        rc, out = run(
            capsys, ["--scenario", "router", "--packets", "8", "metrics", "--format", "prom"]
        )
        assert rc == 0
        assert "# TYPE linuxfp_rx_packets_total counter" in out
        assert "linuxfp_controller_healthy" in out


class TestProgAndMap:
    def test_prog_list_shows_deployed_fast_paths(self, capsys):
        rc, out = run(capsys, ["--scenario", "router", "--packets", "8", "prog", "list"])
        assert rc == 0
        assert "eth0" in out and "eth1" in out
        assert "linuxfp_" in out

    def test_map_dump_shows_prog_array_slots(self, capsys):
        rc, out = run(capsys, ["--scenario", "router", "--packets", "8", "map", "dump"])
        assert rc == 0
        assert "prog_array" in out
        assert "slot 0" in out


class TestReliability:
    def test_scorecard_sections_and_pass_verdict(self, capsys):
        rc, out = run(
            capsys,
            ["--packets", "800", "reliability", "--seed", "3", "--cpus", "4"],
        )
        assert rc == 0
        assert "drops by reason" in out
        assert "incidents by kind" in out
        assert "per-CPU backlog" in out
        assert "backlog_overflow" in out
        assert "high_water=" in out
        assert "balanced" in out
        assert "verdict: PASS" in out

    def test_disarmed_storm_reports_no_faults(self, capsys):
        rc, out = run(
            capsys,
            ["--packets", "400", "reliability", "--seed", "1", "--cpus", "2",
             "--no-faults"],
        )
        assert rc == 0
        assert "-- faults fired --\n  (none)" in out
        assert "verdict: PASS" in out


class TestArgs:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_rejects_unknown_scenario(self):
        with pytest.raises(SystemExit):
            main(["--scenario", "mesh", "drops"])
