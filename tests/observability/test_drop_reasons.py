"""Tests for the SKB_DROP_REASON-style registry and its static audit."""

import pytest

from repro.kernel import Kernel
from repro.observability.drop_reasons import (
    DropReason,
    UnknownDropReason,
    all_reasons,
    drop_reason,
    reason_names,
    scan_drop_sites,
    self_check,
)


class TestRegistry:
    def test_lookup_known(self):
        reason = drop_reason("ttl_exceeded")
        assert isinstance(reason, DropReason)
        assert reason.subsys == "ip"
        assert reason.description

    def test_lookup_unknown_raises(self):
        with pytest.raises(UnknownDropReason):
            drop_reason("definitely_not_registered")

    def test_catalog_is_nonempty_and_named(self):
        reasons = all_reasons()
        assert len(reasons) >= 20
        assert set(reason_names()) == {r.name for r in reasons}
        for r in reasons:
            assert r.name == r.name.lower()

    def test_stack_refuses_unregistered_reason(self):
        kernel = Kernel("k")
        with pytest.raises(UnknownDropReason):
            kernel.stack.drop("bogus_reason")


class TestStaticAudit:
    def test_real_tree_is_clean(self):
        assert self_check() == []

    def test_every_reason_has_a_site(self):
        sites = scan_drop_sites()
        for name in reason_names():
            assert name in sites, f"{name} has no drop() call site"

    def test_unregistered_site_detected(self, tmp_path):
        pkg = tmp_path / "kernel"
        pkg.mkdir()
        (pkg / "stack.py").write_text('self.drop("made_up_reason", dev)\n')
        problems = self_check(src_root=str(tmp_path), extra_known=reason_names())
        assert any("made_up_reason" in p for p in problems)

    def test_orphan_registration_detected(self, tmp_path):
        (tmp_path / "kernel").mkdir()
        problems = self_check(src_root=str(tmp_path))
        # no sites at all: every registered reason is flagged as orphaned
        assert any("ttl_exceeded" in p for p in problems)

    def test_extra_known_suppresses_orphans(self, tmp_path):
        (tmp_path / "kernel").mkdir()
        assert self_check(src_root=str(tmp_path), extra_known=reason_names()) == []
