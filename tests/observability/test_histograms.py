"""Tests for the log2 latency histograms."""

from repro.observability.histogram import HistogramSet, Log2Histogram, _fmt_pow2


class TestLog2Histogram:
    def test_bucket_boundaries(self):
        h = Log2Histogram()
        for v in (0, -5):
            h.record(v)
        assert h.buckets[0] == 2
        h.record(1)  # [1, 2)
        assert h.buckets[1] == 1
        h.record(2)  # [2, 4)
        h.record(3)
        assert h.buckets[2] == 2
        h.record(1024)  # [1024, 2048)
        assert h.buckets[11] == 1
        h.record(2047)
        assert h.buckets[11] == 2

    def test_count_sum_mean(self):
        h = Log2Histogram()
        h.record(10)
        h.record(30)
        assert h.count == 2
        assert h.total == 40
        assert h.mean() == 20.0
        assert Log2Histogram().mean() == 0.0

    def test_negative_values_do_not_reduce_sum(self):
        h = Log2Histogram()
        h.record(-100)
        h.record(10)
        assert h.total == 10

    def test_rows_span_occupied_range(self):
        h = Log2Histogram()
        h.record(1)
        h.record(12)
        rows = h.rows()
        labels = [label for label, __ in rows]
        assert labels[0] == "[1, 2)"
        assert labels[-1] == "[8, 16)"
        # intermediate empty buckets included for a contiguous display
        assert ("[4, 8)", 0) in rows

    def test_empty_histogram_renders_nothing(self):
        assert Log2Histogram().rows() == []
        assert Log2Histogram().render() == []

    def test_render_bars_scale_to_peak(self):
        h = Log2Histogram()
        for __ in range(4):
            h.record(1)
        h.record(2)
        lines = h.render(width=8)
        assert "|@@@@@@@@|" in lines[0]  # the peak bucket fills the width
        assert "@@" in lines[1]

    def test_prom_buckets_cumulative(self):
        h = Log2Histogram()
        h.record(1)
        h.record(3)
        h.record(3)
        pairs = h.prom_buckets()
        assert pairs[-1] == ("+Inf", 3)
        as_map = dict(pairs)
        assert as_map["2"] == 1  # le=2 covers [.., 2): just the value 1
        assert as_map["4"] == 3

    def test_pow2_labels(self):
        assert _fmt_pow2(512) == "512"
        assert _fmt_pow2(1024) == "1K"
        assert _fmt_pow2(1 << 21) == "2M"
        assert _fmt_pow2(1 << 30) == "1G"


class TestHistogramSet:
    def test_record_creates_and_accumulates(self):
        hs = HistogramSet()
        hs.record("ip_rcv", 100)
        hs.record("ip_rcv", 200)
        hs.record("fib", 50)
        assert len(hs) == 2
        assert hs["ip_rcv"].count == 2
        assert "fib" in hs
        assert hs.names() == ["fib", "ip_rcv"]

    def test_as_dict_and_render(self):
        hs = HistogramSet()
        hs.record("rx", 1000)
        data = hs.as_dict()
        assert data["rx"]["count"] == 1
        lines = hs.render()
        assert any("rx: n=1" in line for line in lines)
