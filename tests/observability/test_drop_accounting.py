"""Differential drop-accounting: every discard increments exactly one
registered reason, and the pipeline conserves packets.

The conservation ledger invariants (checked after every scenario):

    rx_packets + tx_local_packets == settled + pending_packets()
    settled == sum(outcomes) + dropped
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernel.neighbor import MAX_QUEUE
from repro.measure.topology import LineTopology
from repro.netsim.packet import make_udp


def fresh_topo():
    topo = LineTopology()
    topo.install_prefixes(4)
    topo.prewarm_neighbors()
    return topo


def assert_conserved(stack):
    pending = stack.pending_packets()
    assert stack.rx_packets + stack.tx_local_packets == stack.settled + pending
    assert stack.settled == sum(stack.outcomes.values()) + stack.dropped


def inject(topo, **kwargs):
    pkt = make_udp(topo.src_eth.mac, topo.dut_in.mac, **kwargs)
    topo.dut_in.nic.receive_from_wire(pkt.to_bytes())


class TestExactlyOnce:
    """One crafted packet -> exactly one increment of exactly one reason."""

    def check_single_drop(self, topo, reason, device="eth0"):
        stack = topo.dut.stack
        obs = topo.dut.observability
        assert stack.drops[reason] == 1
        assert obs.drops.by_reason[reason] == 1
        assert obs.drops.total() == 1
        if device is not None:
            assert obs.drops.by_device[(device, reason)] == 1
        assert stack.dropped == 1
        assert_conserved(stack)

    def test_ttl_exceeded(self):
        topo = fresh_topo()
        inject(topo, src_ip="10.0.1.2", dst_ip="10.100.0.1", ttl=1)
        self.check_single_drop(topo, "ttl_exceeded")

    def test_no_route(self):
        topo = fresh_topo()
        inject(topo, src_ip="10.0.1.2", dst_ip="192.0.2.1")
        self.check_single_drop(topo, "no_route")

    def test_malformed(self):
        topo = fresh_topo()
        topo.dut_in.nic.receive_from_wire(b"\x00" * 8)
        self.check_single_drop(topo, "malformed")

    def test_not_forwarding(self):
        topo = fresh_topo()
        topo.dut.sysctl_set("net.ipv4.ip_forward", "0")
        inject(topo, src_ip="10.0.1.2", dst_ip="10.100.0.1")
        self.check_single_drop(topo, "not_forwarding")

    def test_martian_source(self):
        topo = fresh_topo()
        inject(topo, src_ip="127.0.0.1", dst_ip="10.100.0.1")
        self.check_single_drop(topo, "martian_source")

    def test_nf_forward(self):
        from repro.tools import iptables

        topo = fresh_topo()
        iptables(topo.dut, "-A FORWARD -s 10.0.1.2/32 -j DROP")
        inject(topo, src_ip="10.0.1.2", dst_ip="10.100.0.1")
        self.check_single_drop(topo, "nf_forward")
        assert topo.dut.netfilter.verdicts["FORWARD"]["DROP"] == 1

    def test_nf_input(self):
        from repro.tools import iptables

        topo = fresh_topo()
        iptables(topo.dut, "-A INPUT -p udp -j DROP")
        inject(topo, src_ip="10.0.1.2", dst_ip="10.0.1.1")
        self.check_single_drop(topo, "nf_input")

    def test_no_socket(self):
        topo = fresh_topo()
        inject(topo, src_ip="10.0.1.2", dst_ip="10.0.1.1", dport=4444)
        # local delivery has no ingress device attribution
        stack = topo.dut.stack
        assert stack.drops["no_socket"] == 1
        assert topo.dut.observability.drops.by_reason["no_socket"] == 1
        assert stack.dropped == 1
        assert_conserved(stack)

    def test_neigh_queue_full(self):
        topo = fresh_topo()
        # route via a next hop that never answers ARP: packets park in the
        # neighbor queue (pending, NOT settled) until the cap, then drop
        topo.dut.route_add("10.200.0.0/16", via="10.0.2.99")
        for i in range(MAX_QUEUE + 3):
            inject(topo, src_ip="10.0.1.2", dst_ip="10.200.0.1", sport=1000 + i)
        stack = topo.dut.stack
        assert stack.drops["neigh_queue_full"] == 3
        # ARP requests went out but replies never came: the parked packets
        # stay pending and the ledger still balances
        assert stack.pending_packets() == MAX_QUEUE
        assert_conserved(stack)


class TestDeliveredAccounting:
    def test_forwarded_packet_settles_as_tx(self):
        topo = fresh_topo()
        inject(topo, src_ip="10.0.1.2", dst_ip="10.100.0.1")
        stack = topo.dut.stack
        assert stack.outcomes["tx"] == 1
        assert stack.dropped == 0
        assert_conserved(stack)

    def test_local_delivery_settles(self):
        from repro.kernel.sockets import udp_echo_server

        topo = fresh_topo()
        udp_echo_server(topo.dut, 4444)
        inject(topo, src_ip="10.0.1.2", dst_ip="10.0.1.1", dport=4444)
        stack = topo.dut.stack
        assert stack.outcomes["local_socket"] == 1
        assert stack.delivered_local == 1
        # the echo reply is a locally-generated packet that settled as tx
        assert stack.tx_local_packets == 1
        assert stack.outcomes["tx"] == 1
        assert_conserved(stack)


# what the Hypothesis mix can inject, per draw
KINDS = ("forward", "ttl1", "no_route", "runt", "no_socket", "martian", "local_ok")


@settings(max_examples=25, deadline=None)
@given(st.lists(st.sampled_from(KINDS), min_size=1, max_size=40))
def test_conservation_under_random_traffic(kinds):
    """in == delivered + sum(drops) for any interleaving of traffic types."""
    from repro.kernel.sockets import udp_echo_server

    topo = fresh_topo()
    udp_echo_server(topo.dut, 7777)
    stack = topo.dut.stack
    expected_drops = 0
    for kind in kinds:
        if kind == "forward":
            inject(topo, src_ip="10.0.1.2", dst_ip="10.100.0.1")
        elif kind == "ttl1":
            inject(topo, src_ip="10.0.1.2", dst_ip="10.100.0.1", ttl=1)
            expected_drops += 1
        elif kind == "no_route":
            inject(topo, src_ip="10.0.1.2", dst_ip="192.0.2.9")
            expected_drops += 1
        elif kind == "runt":
            topo.dut_in.nic.receive_from_wire(b"\x01\x02\x03")
            expected_drops += 1
        elif kind == "no_socket":
            inject(topo, src_ip="10.0.1.2", dst_ip="10.0.1.1", dport=5)
            expected_drops += 1
        elif kind == "martian":
            inject(topo, src_ip="224.0.0.5", dst_ip="10.100.0.1")
            expected_drops += 1
        elif kind == "local_ok":
            inject(topo, src_ip="10.0.1.2", dst_ip="10.0.1.1", dport=7777)
        assert_conserved(stack)
    assert stack.dropped == expected_drops
    assert stack.dropped == topo.dut.observability.drops.total()
    # every drop event named a registered reason and settled exactly once
    assert sum(stack.drops.values()) == expected_drops
