"""Tests for the Polycube and VPP baseline platforms."""

import pytest

from repro.measure import LineTopology, Pktgen
from repro.measure.scenarios import setup_gateway, setup_router, measure_throughput
from repro.netsim.packet import make_udp
from repro.platforms import Polycube, Vpp
from repro.platforms.polycube.classifier import (
    ACCEPT,
    BitvectorClassifier,
    ClassifierRule,
    DROP,
)
from repro.platforms.polycube.platform import PcnError
from repro.platforms.vpp.platform import VppError
from repro.netsim.addresses import IPv4Prefix


class TestBitvectorClassifier:
    def rules(self):
        return [
            ClassifierRule(action=DROP, src=IPv4Prefix.parse("172.16.0.0/24")),
            ClassifierRule(action=ACCEPT, src=IPv4Prefix.parse("172.16.0.0/16"), proto=6),
            ClassifierRule(action=DROP, proto=17, dport=53),
        ]

    def test_first_match_semantics(self):
        classifier = BitvectorClassifier(self.rules())
        # both rule 0 (drop) and rule 1 (accept) match; rule 0 is first
        action, index = classifier.classify_fields(
            IPv4Prefix.parse("172.16.0.5/32").address.value, 0, 6, 80
        )
        assert action == DROP and index == 0

    def test_later_rule_matches(self):
        classifier = BitvectorClassifier(self.rules())
        action, index = classifier.classify_fields(
            IPv4Prefix.parse("172.16.9.5/32").address.value, 0, 6, 80
        )
        assert action == ACCEPT and index == 1

    def test_port_dimension(self):
        classifier = BitvectorClassifier(self.rules())
        action, index = classifier.classify_fields(
            IPv4Prefix.parse("10.0.0.1/32").address.value, 0, 17, 53
        )
        assert action == DROP and index == 2

    def test_default_action_on_no_match(self):
        classifier = BitvectorClassifier(self.rules())
        action, index = classifier.classify_fields(
            IPv4Prefix.parse("10.0.0.1/32").address.value, 0, 6, 80
        )
        assert action == ACCEPT and index is None

    def test_empty_ruleset(self):
        classifier = BitvectorClassifier([])
        assert classifier.classify_fields(1, 2, 6, 80) == (ACCEPT, None)

    def test_classify_frame(self):
        classifier = BitvectorClassifier(self.rules())
        blocked = make_udp("02:00:00:00:00:01", "02:00:00:00:00:02", "172.16.0.9", "10.0.0.1").to_bytes()
        allowed = make_udp("02:00:00:00:00:01", "02:00:00:00:00:02", "10.1.0.9", "10.0.0.1").to_bytes()
        assert classifier.classify_frame(blocked) == DROP
        assert classifier.classify_frame(allowed) == ACCEPT

    def test_matches_linear_semantics_exhaustively(self):
        """The bitvector result must equal a naive first-match scan."""
        rules = self.rules()
        classifier = BitvectorClassifier(rules)
        candidates = [
            ("172.16.0.1", 6, 80),
            ("172.16.0.1", 17, 53),
            ("172.16.5.1", 6, 22),
            ("172.16.5.1", 17, 53),
            ("10.0.0.1", 17, 53),
            ("10.0.0.1", 6, 443),
        ]
        for src_text, proto, dport in candidates:
            src = IPv4Prefix.parse(src_text + "/32").address.value
            expected = ACCEPT
            for rule in rules:
                if rule.src is not None and not rule.src.contains(src_text):
                    continue
                if rule.proto is not None and rule.proto != proto:
                    continue
                if rule.dport is not None and rule.dport != dport:
                    continue
                expected = rule.action
                break
            assert classifier.classify_fields(src, 0, proto, dport)[0] == expected


class TestPolycube:
    def test_router_forwards(self):
        topo = setup_router("polycube")
        result = measure_throughput(topo, packets=500)
        assert result.delivery_ratio == 1.0

    def test_router_uses_own_state_not_kernel_fib(self):
        """The transparency gap: kernel routes do not reach Polycube."""
        topo = setup_router("polycube", num_prefixes=1)
        # a kernel route that Polycube's control plane never saw
        from repro.tools import ip

        topo.dut.sysctl_set("net.ipv4.ip_forward", "1")
        ip(topo.dut, "route add 10.200.0.0/16 via 10.0.2.2")
        frame = make_udp(topo.src_eth.mac, topo.dut_in.mac, "10.0.1.2", "10.200.0.1").to_bytes()
        delivered = []
        topo.sink_eth.nic.attach(lambda f, q: delivered.append(f))
        topo.dut_in.nic.receive_from_wire(frame)
        # Polycube's cube missed (no map entry) -> fell back to the kernel
        # slow path, which CAN route it; the point is the cube didn't.
        assert topo.polycube.rib.lookup(
            __import__("repro.ebpf.maps", fromlist=["LpmTrieMap"]).LpmTrieMap.make_key(
                32, __import__("repro.netsim.addresses", fromlist=["IPv4Addr"]).IPv4Addr.parse("10.200.0.1")
            )
        ) is None
        assert len(delivered) == 1  # kernel slow path forwarded

    def test_firewall_blocks_blacklisted(self):
        topo = setup_gateway("polycube", num_rules=10)
        from repro.measure.scenarios import blacklist_address

        blocked = make_udp(topo.src_eth.mac, topo.dut_in.mac, blacklist_address(3), "10.100.0.1").to_bytes()
        allowed = make_udp(topo.src_eth.mac, topo.dut_in.mac, "10.0.1.2", "10.100.0.1").to_bytes()
        delivered = []
        topo.sink_eth.nic.attach(lambda f, q: delivered.append(f))
        topo.dut_in.nic.receive_from_wire(blocked)
        topo.dut_in.nic.receive_from_wire(allowed)
        assert len(delivered) == 1

    def test_firewall_chains_to_router_via_tail_call(self):
        topo = setup_gateway("polycube", num_rules=5)
        assert topo.polycube.jmp.get_prog(0) is not None  # firewall slot
        assert topo.polycube.jmp.get_prog(1) is not None  # router slot

    def test_classification_flat_in_rule_count(self):
        few = setup_gateway("polycube", num_rules=10)
        many = setup_gateway("polycube", num_rules=200)
        cost_few = measure_throughput(few, packets=500).per_packet_ns
        cost_many = measure_throughput(many, packets=500).per_packet_ns
        assert cost_many - cost_few < 30  # ~0.06 ns/rule, not 2 ns/rule

    def test_bad_cli_rejected(self):
        topo = LineTopology()
        pcn = Polycube(topo.dut)
        with pytest.raises(PcnError):
            pcn.pcn_router("frobnicate")
        with pytest.raises(PcnError):
            pcn.pcn_iptables("-A INPUT -j DROP")


class TestVpp:
    def test_router_forwards(self):
        topo = setup_router("vpp")
        result = measure_throughput(topo, packets=500)
        assert result.delivery_ratio == 1.0

    def test_kernel_no_longer_sees_traffic(self):
        topo = setup_router("vpp")
        before = topo.dut.stack.forwarded
        generator = Pktgen(topo)
        generator.throughput(packets=200)
        assert topo.dut.stack.forwarded == before  # bypassed entirely

    def test_faster_than_fast_paths(self):
        """Vector processing beats per-packet processing (Fig 5)."""
        vpp_cost = measure_throughput(setup_router("vpp"), packets=500).per_packet_ns
        linuxfp_cost = measure_throughput(setup_router("linuxfp"), packets=500).per_packet_ns
        assert vpp_cost < linuxfp_cost

    def test_acl_drops(self):
        topo = setup_gateway("vpp", num_rules=10)
        from repro.measure.scenarios import blacklist_address

        blocked = make_udp(topo.src_eth.mac, topo.dut_in.mac, blacklist_address(0), "10.100.0.1").to_bytes()
        delivered = []
        topo.sink_eth.nic.attach(lambda f, q: delivered.append(f))
        topo.dut_in.nic.receive_from_wire(blocked)
        assert delivered == [] and topo.vpp.dropped >= 1

    def test_ttl_expiry_dropped(self):
        topo = setup_router("vpp")
        frame = make_udp(topo.src_eth.mac, topo.dut_in.mac, "10.0.1.2", "10.100.0.1", ttl=1).to_bytes()
        delivered = []
        topo.sink_eth.nic.attach(lambda f, q: delivered.append(f))
        topo.dut_in.nic.receive_from_wire(frame)
        assert delivered == []

    def test_rewrite_correct(self):
        topo = setup_router("vpp")
        from repro.netsim.packet import Packet

        out = []
        topo.sink_eth.nic.attach(lambda f, q: out.append(Packet.from_bytes(f)))
        frame = make_udp(topo.src_eth.mac, topo.dut_in.mac, "10.0.1.2", "10.100.0.1", ttl=9).to_bytes()
        topo.dut_in.nic.receive_from_wire(frame)
        pkt = out[0]
        assert pkt.ip.ttl == 8
        assert pkt.eth.src == topo.dut_out.mac
        assert pkt.eth.dst == topo.sink_eth.mac

    def test_interface_down_drops(self):
        topo = setup_router("vpp")
        topo.vpp.vppctl("set interface state eth1 down")
        delivered = []
        topo.sink_eth.nic.attach(lambda f, q: delivered.append(f))
        frame = make_udp(topo.src_eth.mac, topo.dut_in.mac, "10.0.1.2", "10.100.0.1").to_bytes()
        topo.dut_in.nic.receive_from_wire(frame)
        assert delivered == []

    def test_bad_cli_rejected(self):
        topo = LineTopology()
        vpp = Vpp(topo.dut)
        with pytest.raises(VppError):
            vpp.vppctl("make coffee")
        with pytest.raises(VppError):
            vpp.take_over("lo")
