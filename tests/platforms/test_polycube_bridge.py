"""End-to-end tests for the Polycube bridge cube (datapath learning)."""

import pytest

from repro.kernel import Kernel
from repro.netsim.clock import Clock
from repro.netsim.nic import Wire
from repro.netsim.packet import Packet, make_udp
from repro.platforms import Polycube


def bridge_setup():
    """Three hosts attached to a Polycube bridge (three DUT ports)."""
    clock = Clock()
    dut = Kernel("pcn-dut", clock=clock)
    hosts = []
    for i in range(3):
        dut.add_physical(f"eth{i}")
        dut.set_link(f"eth{i}", True)
        host = Kernel(f"h{i}", clock=clock)
        host.add_physical("eth0")
        host.set_link("eth0", True)
        host.add_address("eth0", f"10.0.0.{i + 1}/24")
        Wire(dut.devices.by_name(f"eth{i}").nic, host.devices.by_name("eth0").nic)
        hosts.append(host)
    pcn = Polycube(dut)
    for i in range(3):
        pcn.attach_port(f"eth{i}")
    pcn.pcn_bridge("enable")
    return dut, hosts, pcn


def capture(host):
    got = []
    host.devices.by_name("eth0").nic.attach(lambda f, q: got.append(Packet.from_bytes(f)))
    return got


class TestPolycubeBridge:
    def test_broadcast_goes_to_slow_path(self):
        dut, hosts, pcn = bridge_setup()
        rx = [capture(h) for h in hosts]
        bcast = make_udp(hosts[0].devices.by_name("eth0").mac, "ff:ff:ff:ff:ff:ff",
                         "10.0.0.1", "10.0.0.255").to_bytes()
        hosts[0].devices.by_name("eth0").nic.transmit(bcast)
        # cube PASSes broadcast; the kernel has no bridge configured, so the
        # slow path can't flood — Polycube needs its own flooding (a gap our
        # simplified cube shares with early pcn-bridge versions)
        assert len(rx[1]) == 0 and len(rx[2]) == 0

    def test_learning_then_unicast(self):
        dut, hosts, pcn = bridge_setup()
        rx = [capture(h) for h in hosts]
        mac0 = hosts[0].devices.by_name("eth0").mac
        mac1 = hosts[1].devices.by_name("eth0").mac
        # teach the cube both MACs via its own datapath learning
        hosts[0].devices.by_name("eth0").nic.transmit(
            make_udp(mac0, mac1, "10.0.0.1", "10.0.0.2").to_bytes()
        )
        hosts[1].devices.by_name("eth0").nic.transmit(
            make_udp(mac1, mac0, "10.0.0.2", "10.0.0.1").to_bytes()
        )
        # now both directions forward in the fast path
        hosts[0].devices.by_name("eth0").nic.transmit(
            make_udp(mac0, mac1, "10.0.0.1", "10.0.0.2", payload=b"fast").to_bytes()
        )
        assert any(p.payload == b"fast" for p in rx[1])
        assert len(rx[2]) == 0  # no stray flooding to the third port

    def test_fdb_is_polycube_state_not_kernel_state(self):
        dut, hosts, pcn = bridge_setup()
        mac0 = hosts[0].devices.by_name("eth0").mac
        mac1 = hosts[1].devices.by_name("eth0").mac
        hosts[0].devices.by_name("eth0").nic.transmit(
            make_udp(mac0, mac1, "10.0.0.1", "10.0.0.2").to_bytes()
        )
        assert len(pcn.fdb) >= 1  # learned into Polycube's own map
        # and there is no kernel bridge at all
        from repro.kernel.interfaces import BridgeDevice

        assert not any(isinstance(d, BridgeDevice) for d in dut.devices.all())

    def test_hairpin_dropped(self):
        dut, hosts, pcn = bridge_setup()
        rx = [capture(h) for h in hosts]
        mac0 = hosts[0].devices.by_name("eth0").mac
        # learn mac0 on eth0, then send a frame *to* mac0 from eth0
        hosts[0].devices.by_name("eth0").nic.transmit(
            make_udp(mac0, mac0, "10.0.0.1", "10.0.0.1").to_bytes()
        )
        assert all(len(r) == 0 for r in rx)
