"""RSS hardware model: Toeplitz vectors, indirection table, queue balance.

The Toeplitz implementation is checked against the Microsoft RSS
verification suite (the vectors every conformant NIC must reproduce), and
the load-balance tests pin the bugfix this PR ships: the old
``sum(key) % num_queues`` hash correlated with addressing bytes, so flow
populations whose byte-sums stride by the queue count collapsed onto a
subset of queues.
"""

import socket

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.netsim.nic import NIC
from repro.netsim.packet import make_arp_request, make_tcp, make_udp
from repro.netsim.rss import (
    INDIRECTION_TABLE_SIZE,
    IndirectionTable,
    l2_input,
    rss_input,
    symmetric_flow_hash,
    toeplitz_hash,
)

SRC_MAC, DST_MAC = "02:00:00:00:00:01", "02:00:00:00:00:02"


def ip(dotted: str) -> bytes:
    return socket.inet_aton(dotted)


def port(p: int) -> bytes:
    return p.to_bytes(2, "big")


# Microsoft RSS verification suite: (src, sport, dst, dport, with-ports
# hash, addresses-only hash). Input order is src | dst | sport | dport in
# network byte order.
MS_VECTORS = [
    ("66.9.149.187", 2794, "161.142.100.80", 1766, 0x51CCC178, 0x323E8FC2),
    ("199.92.111.2", 14230, "65.69.140.83", 4739, 0xC626B0EA, 0xD718262A),
    ("24.19.198.95", 12898, "12.22.207.184", 38024, 0x5C2B394A, 0xD2D0A5DE),
]


class TestToeplitz:
    @pytest.mark.parametrize("src,sport,dst,dport,h4,h2", MS_VECTORS)
    def test_microsoft_verification_vectors(self, src, sport, dst, dport, h4, h2):
        assert toeplitz_hash(ip(src) + ip(dst) + port(sport) + port(dport)) == h4
        assert toeplitz_hash(ip(src) + ip(dst)) == h2

    def test_empty_and_zero_inputs_hash_to_zero(self):
        assert toeplitz_hash(b"") == 0
        assert toeplitz_hash(b"\x00" * 12) == 0

    def test_single_bit_change_flips_the_hash(self):
        base = ip("10.0.1.2") + ip("10.100.0.1") + port(1024) + port(9)
        flipped = bytes([base[0] ^ 0x01]) + base[1:]
        assert toeplitz_hash(base) != toeplitz_hash(flipped)


class TestRssInput:
    def frame(self, **kwargs):
        kwargs.setdefault("src_ip", "10.0.1.2")
        kwargs.setdefault("dst_ip", "10.100.0.1")
        return make_udp(SRC_MAC, DST_MAC, **kwargs).to_bytes()

    def test_udp_and_tcp_yield_the_4_tuple(self):
        udp = self.frame(sport=2794, dport=1766)
        expected = ip("10.0.1.2") + ip("10.100.0.1") + port(2794) + port(1766)
        assert rss_input(udp) == expected
        tcp = make_tcp(SRC_MAC, DST_MAC, "10.0.1.2", "10.100.0.1",
                       sport=2794, dport=1766).to_bytes()
        assert rss_input(tcp) == expected

    def test_unkeyable_frames_fall_back(self):
        arp = make_arp_request(SRC_MAC, "10.0.1.2", "10.0.1.1").to_bytes()
        assert rss_input(arp) is None
        base = bytearray(self.frame())
        fragment = bytearray(base)
        fragment[20] |= 0x20  # MF flag: L4 header not in later fragments
        icmp = bytearray(base)
        icmp[23] = 1  # not TCP/UDP
        options = bytearray(base)
        options[14] = 0x46  # IHL=6 shifts the L4 offsets
        for mutated in (fragment, icmp, options, base[:20]):
            assert rss_input(bytes(mutated)) is None
        # the L2 fallback still gives the hardware something stable to hash
        assert l2_input(arp) == arp[:12]

    def test_l2_input_tolerates_runts(self):
        assert l2_input(b"\x01\x02") == b"\x01\x02"


class TestIndirectionTable:
    def test_default_population_is_round_robin(self):
        tbl = IndirectionTable(4)
        assert len(tbl.table) == INDIRECTION_TABLE_SIZE
        assert tbl.table[:8] == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_queue_for_masks_the_low_seven_bits(self):
        tbl = IndirectionTable(4)
        assert tbl.queue_for(0x51CCC178) == tbl.table[0x51CCC178 & 127]
        assert tbl.queue_for(0x80) == tbl.table[0]  # bit 7 masked off

    def test_set_entry_repoints_and_validates(self):
        tbl = IndirectionTable(2)
        tbl.set_entry(5, 1)
        assert tbl.table[5] == 1
        with pytest.raises(ValueError):
            tbl.set_entry(0, 2)
        with pytest.raises(ValueError):
            IndirectionTable(0)


def stride_frames(count: int, stride: int):
    """Flows whose addressing byte-sums all stride by ``stride``: the old
    ``sum(key) % num_queues`` hash maps them onto ≤2 of ``stride`` queues."""
    frames = []
    for i in range(count):
        frames.append(make_udp(
            SRC_MAC, DST_MAC, "10.0.1.2", f"10.100.0.{1 + stride * (i % 60)}",
            sport=1024 + stride * i, dport=9,
        ).to_bytes())
    return frames


class TestQueueLoadBalance:
    """The satellite bugfix: NIC.rss_queue must not skew under structured
    addressing."""

    def test_old_toy_hash_collapses_on_stride_population(self):
        # documents the bug being fixed: byte-sum hashing confines a
        # stride-4 population to half the queues
        hit = {sum(f[26:38]) % 4 for f in stride_frames(128, 4)}
        assert len(hit) <= 2

    def test_toeplitz_spreads_the_stride_population(self):
        nic = NIC("eth0", num_queues=4)
        counts = [0, 0, 0, 0]
        for f in stride_frames(128, 4):
            counts[nic.rss_queue(f)] += 1
        assert all(c > 0 for c in counts)
        assert max(counts) <= 2 * min(counts)

    def test_pktgen_style_population_balances(self):
        for nq in (2, 4, 8):
            nic = NIC("eth0", num_queues=nq)
            counts = [0] * nq
            for flow in range(512):
                f = make_udp(
                    SRC_MAC, DST_MAC, "10.0.1.2",
                    f"10.{100 + (flow % 50)}.0.{(flow % 250) + 1}",
                    sport=1024 + flow, dport=9,
                ).to_bytes()
                counts[nic.rss_queue(f)] += 1
            mean = 512 / nq
            assert max(counts) < 1.5 * mean, counts
            assert min(counts) > 0.5 * mean, counts

    def test_single_queue_nic_skips_hashing(self):
        nic = NIC("eth0", num_queues=1)
        assert nic.rss_queue(b"") == 0


class TestSymmetricFlowHash:
    @given(
        src=st.integers(0, 2**32 - 1), dst=st.integers(0, 2**32 - 1),
        sport=st.integers(0, 65535), dport=st.integers(0, 65535),
        proto=st.sampled_from([6, 17]),
    )
    def test_direction_insensitive(self, src, dst, sport, dport, proto):
        fwd = symmetric_flow_hash(src, dst, proto, sport, dport)
        rev = symmetric_flow_hash(dst, src, proto, dport, sport)
        assert fwd == rev

    def test_distinguishes_protocols_and_flows(self):
        a = symmetric_flow_hash(0x0A000102, 0x0A640001, 17, 1024, 9)
        assert a != symmetric_flow_hash(0x0A000102, 0x0A640001, 6, 1024, 9)
        assert a != symmetric_flow_hash(0x0A000102, 0x0A640001, 17, 1025, 9)
