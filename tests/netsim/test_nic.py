"""Tests for NICs, queues, and wires."""

import pytest

from repro.netsim.nic import NIC, Wire
from repro.netsim.packet import make_udp


def frame(sport=1000):
    return make_udp("02:00:00:00:00:01", "02:00:00:00:00:02", "10.0.0.1", "10.0.0.2", sport=sport).to_bytes()


class TestNIC:
    def test_handler_invoked_on_rx(self):
        nic = NIC("eth0")
        got = []
        nic.attach(lambda data, q: got.append((data, q)))
        nic.receive_from_wire(frame())
        assert len(got) == 1 and got[0][1] == 0

    def test_unattached_nic_queues_frames(self):
        nic = NIC("eth0")
        nic.receive_from_wire(frame())
        assert len(nic.rx_queues[0]) == 1

    def test_bypass_mode_queues_even_with_handler(self):
        nic = NIC("eth0")
        got = []
        nic.attach(lambda data, q: got.append(data))
        nic.set_bypass(True)
        nic.receive_from_wire(frame())
        assert got == [] and len(nic.rx_queues[0]) == 1

    def test_poll_respects_budget(self):
        nic = NIC("eth0")
        nic.set_bypass(True)
        for i in range(10):
            nic.receive_from_wire(frame(sport=i))
        assert len(nic.poll(0, budget=4)) == 4
        assert len(nic.poll(0, budget=100)) == 6

    def test_rss_spreads_flows(self):
        nic = NIC("eth0", num_queues=4)
        queues = {nic.rss_queue(frame(sport=i)) for i in range(64)}
        assert len(queues) > 1
        for q in queues:
            assert 0 <= q < 4

    def test_rss_stable_per_flow(self):
        nic = NIC("eth0", num_queues=8)
        assert nic.rss_queue(frame(sport=7)) == nic.rss_queue(frame(sport=7))

    def test_stats_counted(self):
        nic = NIC("eth0")
        nic.attach(lambda d, q: None)
        data = frame()
        nic.receive_from_wire(data)
        nic.transmit(data)
        assert nic.stats.rx_packets == 1 and nic.stats.rx_bytes == len(data)
        assert nic.stats.tx_packets == 1
        assert nic.stats.tx_dropped == 1  # no wire attached

    def test_zero_queues_rejected(self):
        with pytest.raises(ValueError):
            NIC("bad", num_queues=0)


class TestWire:
    def test_carries_both_directions(self):
        a, b = NIC("a"), NIC("b")
        Wire(a, b)
        got_a, got_b = [], []
        a.attach(lambda d, q: got_a.append(d))
        b.attach(lambda d, q: got_b.append(d))
        a.transmit(b"to-b")
        b.transmit(b"to-a")
        assert got_b == [b"to-b"] and got_a == [b"to-a"]

    def test_double_wiring_rejected(self):
        a, b, c = NIC("a"), NIC("b"), NIC("c")
        Wire(a, b)
        with pytest.raises(ValueError):
            Wire(a, c)

    def test_unplug(self):
        a, b = NIC("a"), NIC("b")
        wire = Wire(a, b)
        wire.unplug()
        a.transmit(b"gone")
        assert a.stats.tx_dropped == 1
