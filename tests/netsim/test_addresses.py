"""Tests for MAC/IPv4 address and prefix types."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.netsim.addresses import (
    AddressError,
    IPv4Addr,
    IPv4Prefix,
    MacAddr,
    ipv4,
    mac,
    prefix,
)


class TestMacAddr:
    def test_parse_round_trip(self):
        m = MacAddr.parse("aa:bb:cc:dd:ee:ff")
        assert str(m) == "aa:bb:cc:dd:ee:ff"
        assert m.value == 0xAABBCCDDEEFF

    def test_bytes_round_trip(self):
        m = MacAddr.parse("02:00:00:00:00:2a")
        assert MacAddr.from_bytes(m.to_bytes()) == m

    def test_broadcast(self):
        assert MacAddr.broadcast().is_broadcast
        assert MacAddr.broadcast().is_multicast
        assert not MacAddr.parse("02:00:00:00:00:01").is_broadcast

    def test_multicast_bit(self):
        assert MacAddr.parse("01:00:5e:00:00:01").is_multicast
        assert not MacAddr.parse("00:00:5e:00:00:01").is_multicast

    def test_from_index_deterministic(self):
        assert MacAddr.from_index(7) == MacAddr.from_index(7)
        assert MacAddr.from_index(7) != MacAddr.from_index(8)

    @pytest.mark.parametrize("bad", ["", "aa:bb", "zz:bb:cc:dd:ee:ff", "aa:bb:cc:dd:ee:ff:00", "aabbccddeeff"])
    def test_parse_rejects_garbage(self, bad):
        with pytest.raises(AddressError):
            MacAddr.parse(bad)

    def test_value_range_checked(self):
        with pytest.raises(AddressError):
            MacAddr(1 << 48)
        with pytest.raises(AddressError):
            MacAddr(-1)

    def test_hashable_as_fdb_key(self):
        table = {MacAddr.from_index(1): "port1"}
        assert table[MacAddr.parse("02:00:00:00:00:01")] == "port1"

    @given(st.integers(min_value=0, max_value=(1 << 48) - 1))
    def test_text_round_trip_property(self, value):
        m = MacAddr(value)
        assert MacAddr.parse(str(m)) == m


class TestIPv4Addr:
    def test_parse_round_trip(self):
        a = IPv4Addr.parse("192.168.1.42")
        assert str(a) == "192.168.1.42"
        assert a.value == 0xC0A8012A

    def test_bytes_round_trip(self):
        a = IPv4Addr.parse("10.0.0.1")
        assert IPv4Addr.from_bytes(a.to_bytes()) == a

    @pytest.mark.parametrize("bad", ["", "1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d"])
    def test_parse_rejects_garbage(self, bad):
        with pytest.raises(AddressError):
            IPv4Addr.parse(bad)

    def test_classification(self):
        assert IPv4Addr.parse("255.255.255.255").is_broadcast
        assert IPv4Addr.parse("224.0.0.1").is_multicast
        assert IPv4Addr.parse("127.0.0.1").is_loopback
        assert not IPv4Addr.parse("10.0.0.1").is_multicast

    def test_ordering(self):
        assert IPv4Addr.parse("10.0.0.1") < IPv4Addr.parse("10.0.0.2")

    @given(st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_text_round_trip_property(self, value):
        a = IPv4Addr(value)
        assert IPv4Addr.parse(str(a)) == a


class TestIPv4Prefix:
    def test_parse_and_normalize(self):
        p = IPv4Prefix.parse("10.1.2.3/24")
        assert str(p) == "10.1.2.0/24"
        assert p.netmask == IPv4Addr.parse("255.255.255.0")

    def test_bare_address_is_host_prefix(self):
        assert IPv4Prefix.parse("10.0.0.1").length == 32

    def test_contains(self):
        p = IPv4Prefix.parse("10.1.0.0/16")
        assert p.contains("10.1.255.3")
        assert not p.contains("10.2.0.1")

    def test_default_route_contains_everything(self):
        p = IPv4Prefix.parse("0.0.0.0/0")
        assert p.contains("1.2.3.4")
        assert p.contains("255.255.255.255")

    def test_broadcast_address(self):
        assert IPv4Prefix.parse("10.1.2.0/24").broadcast == IPv4Addr.parse("10.1.2.255")

    def test_hosts_excludes_network_and_broadcast(self):
        hosts = list(IPv4Prefix.parse("10.0.0.0/30").hosts())
        assert [str(h) for h in hosts] == ["10.0.0.1", "10.0.0.2"]

    def test_host_indexing(self):
        p = IPv4Prefix.parse("10.0.1.0/24")
        assert str(p.host(1)) == "10.0.1.1"
        with pytest.raises(AddressError):
            p.host(300)

    def test_overlaps(self):
        assert IPv4Prefix.parse("10.0.0.0/8").overlaps(IPv4Prefix.parse("10.3.0.0/16"))
        assert not IPv4Prefix.parse("10.0.0.0/16").overlaps(IPv4Prefix.parse("10.1.0.0/16"))

    @pytest.mark.parametrize("bad", ["10.0.0.0/33", "10.0.0.0/x"])
    def test_parse_rejects_garbage(self, bad):
        with pytest.raises(AddressError):
            IPv4Prefix.parse(bad)

    @given(st.integers(min_value=0, max_value=0xFFFFFFFF), st.integers(min_value=0, max_value=32))
    def test_network_address_contained_property(self, value, length):
        p = IPv4Prefix(IPv4Addr(value), length)
        assert p.contains(p.address)
        assert p.contains(p.broadcast)


class TestCoercions:
    def test_ipv4_coercions(self):
        assert ipv4("10.0.0.1") == ipv4(0x0A000001) == ipv4(IPv4Addr.parse("10.0.0.1"))

    def test_mac_coercions(self):
        assert mac("02:00:00:00:00:01") == mac(0x020000000001)

    def test_prefix_coercion(self):
        assert prefix("10.0.0.0/24") == IPv4Prefix.parse("10.0.0.0/24")
