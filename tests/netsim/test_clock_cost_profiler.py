"""Tests for the simulated clock, cost model, and profiler."""

import pytest

from repro.netsim.clock import Clock
from repro.netsim.cost import CostModel, DEFAULT_COSTS
from repro.netsim.profiler import Profiler


class TestClock:
    def test_starts_at_zero(self):
        assert Clock().now_ns == 0

    def test_advance_accumulates(self):
        c = Clock()
        c.advance(100)
        c.advance(50.4)
        assert c.now_ns == 150

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            Clock().advance(-1)

    def test_advance_to_never_goes_backwards(self):
        c = Clock()
        c.advance(1000)
        c.advance_to(500)
        assert c.now_ns == 1000
        c.advance_to(2000)
        assert c.now_ns == 2000

    def test_unit_views(self):
        c = Clock()
        c.advance(2_500_000_000)
        assert c.now_s == pytest.approx(2.5)
        assert c.now_us == pytest.approx(2.5e6)

    def test_reset(self):
        c = Clock()
        c.advance(10)
        c.reset()
        assert c.now_ns == 0


class TestCostModel:
    def test_line_rate_small_packets(self):
        # 64B + 20B framing at 25Gbps ≈ 37.2 Mpps
        pps = DEFAULT_COSTS.line_rate_pps(64)
        assert pps == pytest.approx(37.2e6, rel=0.01)

    def test_line_rate_mtu_packets(self):
        pps = DEFAULT_COSTS.line_rate_pps(1514)
        assert pps == pytest.approx(25e9 / (1534 * 8), rel=1e-6)

    def test_copy_is_independent(self):
        c = DEFAULT_COSTS.copy()
        c.fib_lookup = 1.0
        assert DEFAULT_COSTS.fib_lookup != 1.0

    def test_calibration_linux_forwarding_near_1mpps(self):
        """The slow-path stage costs must sum to ~1000ns (≈1 Mpps/core)."""
        c = DEFAULT_COSTS
        total = (
            c.driver_rx + c.skb_alloc + c.netif_receive + c.ip_rcv + c.fib_lookup
            + c.ip_forward + c.neigh_lookup + c.ip_output + c.dev_queue_xmit + c.driver_tx
        )
        assert 900 <= total <= 1500

    def test_calibration_fast_path_ratio(self):
        """XDP path budget must land near 1.77x Linux (paper's 77% speedup)."""
        c = DEFAULT_COSTS
        linux_ns = 1000.0
        # dispatcher entry + tail call + ~170 executed insns + helpers
        xdp_ns = (
            c.driver_rx + c.ebpf_prog_entry + c.ebpf_tail_call + 170 * c.ebpf_insn
            + c.helper_fib_lookup + c.xdp_redirect + c.driver_tx
        )
        assert 1.5 <= linux_ns / xdp_ns <= 2.2


class TestProfiler:
    def test_disabled_profiler_records_nothing(self):
        clock = Clock()
        prof = Profiler(clock, enabled=False)
        with prof.frame("a"):
            clock.advance(100)
        assert prof.samples == {}

    def test_nested_frames(self):
        clock = Clock()
        prof = Profiler(clock, enabled=True)
        with prof.frame("rx"):
            clock.advance(100)
            with prof.frame("ip_rcv"):
                clock.advance(50)
        assert prof.samples[("rx",)] == 150
        assert prof.samples[("rx", "ip_rcv")] == 50

    def test_self_weights_subtract_children(self):
        clock = Clock()
        prof = Profiler(clock, enabled=True)
        with prof.frame("rx"):
            clock.advance(100)
            with prof.frame("ip_rcv"):
                clock.advance(50)
        weights = prof.self_weights()
        assert weights[("rx",)] == 100
        assert weights[("rx", "ip_rcv")] == 50

    def test_collapsed_output_format(self):
        clock = Clock()
        prof = Profiler(clock, enabled=True)
        with prof.frame("a"):
            with prof.frame("b"):
                clock.advance(10)
        lines = prof.collapsed()
        assert lines == ["a;b 10"]

    def test_hottest_aggregates_leaves(self):
        clock = Clock()
        prof = Profiler(clock, enabled=True)
        for __ in range(3):
            with prof.frame("rx"):
                with prof.frame("fib_lookup"):
                    clock.advance(120)
        assert prof.hottest(1) == [("fib_lookup", 360)]

    def test_reset(self):
        clock = Clock()
        prof = Profiler(clock, enabled=True)
        with prof.frame("x"):
            clock.advance(5)
        prof.reset()
        assert prof.samples == {}

    def test_reset_inside_nested_frame_is_safe(self):
        """Regression: reset() mid-packet used to clear the live frame stack,
        so the enclosing frame() exits popped from an empty list."""
        clock = Clock()
        prof = Profiler(clock, enabled=True)
        with prof.frame("rx"):
            clock.advance(10)
            with prof.frame("ip_rcv"):
                clock.advance(5)
                prof.reset()  # must not corrupt the in-flight chain
                clock.advance(5)
            clock.advance(10)
        # samples taken before the reset are gone; frames that closed after
        # it recorded cleanly against the preserved stack
        assert prof.samples[("rx",)] == 30
        assert prof.samples[("rx", "ip_rcv")] == 10
        # and the stack fully unwound: a fresh top-level frame stands alone
        with prof.frame("next"):
            clock.advance(1)
        assert ("next",) in prof.samples

    def test_many_siblings_subtract_from_parent(self):
        clock = Clock()
        prof = Profiler(clock, enabled=True)
        with prof.frame("parent"):
            clock.advance(10)
            for i in range(50):
                with prof.frame(f"child{i}"):
                    clock.advance(2)
        weights = prof.self_weights()
        assert weights[("parent",)] == 10
        assert all(weights[("parent", f"child{i}")] == 2 for i in range(50))
        assert prof.total_ns() == 110

    def test_deep_stack_self_weights(self):
        """A single deep chain is the worst case for the old O(n²) all-pairs
        prefix scan: every stack is a prefix of every deeper one. The one-pass
        implementation must stay fast AND produce exact self times."""
        import contextlib
        import time

        clock = Clock()
        prof = Profiler(clock, enabled=True)
        depth = 2000
        with contextlib.ExitStack() as frames:
            for i in range(depth):
                frames.enter_context(prof.frame(f"f{i}"))
                clock.advance(1)
        start = time.perf_counter()
        weights = prof.self_weights()
        elapsed = time.perf_counter() - start
        assert len(weights) == depth
        # frame i runs from t=i until the common teardown at t=depth and has
        # exactly one child charged depth-i-1 ns, so every self time is 1 ns
        assert all(w == 1 for w in weights.values())
        assert prof.total_ns() == depth
        # the quadratic scan took tens of seconds at this depth; linear is ms
        assert elapsed < 2.0
