"""Tests for byte-accurate packet encode/parse."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.netsim.addresses import IPv4Addr, MacAddr
from repro.netsim.checksum import internet_checksum, verify_checksum
from repro.netsim.packet import (
    ARP,
    ARP_REPLY,
    ARP_REQUEST,
    ETH_P_8021Q,
    ETH_P_ARP,
    ETH_P_IP,
    ICMP,
    ICMP_ECHO_REQUEST,
    IPPROTO_TCP,
    IPPROTO_UDP,
    IPv4,
    Ethernet,
    Packet,
    PacketError,
    TCP,
    UDP,
    VlanTag,
    make_arp_reply,
    make_arp_request,
    make_tcp,
    make_udp,
)

SRC_MAC = MacAddr.parse("02:00:00:00:00:01")
DST_MAC = MacAddr.parse("02:00:00:00:00:02")


class TestChecksum:
    def test_known_vector(self):
        # RFC 1071 example data
        data = bytes([0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7])
        assert internet_checksum(data) == (~0xDDF2) & 0xFFFF

    def test_verify_with_embedded_checksum(self):
        data = bytes([0x12, 0x34, 0x00, 0x00, 0x56, 0x78])
        csum = internet_checksum(data)
        patched = data[:2] + csum.to_bytes(2, "big") + data[4:]
        assert verify_checksum(patched)

    def test_odd_length_padded(self):
        assert internet_checksum(b"\xff") == internet_checksum(b"\xff\x00")


class TestEthernet:
    def test_round_trip(self):
        eth = Ethernet(DST_MAC, SRC_MAC, ETH_P_IP)
        parsed, rest = Ethernet.parse(eth.pack() + b"xyz")
        assert parsed == eth
        assert rest == b"xyz"

    def test_truncated(self):
        with pytest.raises(PacketError):
            Ethernet.parse(b"\x00" * 10)


class TestVlan:
    def test_round_trip(self):
        tag = VlanTag(vid=100, pcp=3, ethertype=ETH_P_IP)
        parsed, rest = VlanTag.parse(tag.pack())
        assert parsed == tag
        assert rest == b""

    def test_vid_range_checked(self):
        with pytest.raises(PacketError):
            VlanTag(vid=5000)

    def test_tagged_frame_round_trip(self):
        pkt = make_udp(SRC_MAC, DST_MAC, "10.0.0.1", "10.0.0.2", vlan=42)
        raw = pkt.to_bytes()
        reparsed = Packet.from_bytes(raw)
        assert reparsed.vlan is not None and reparsed.vlan.vid == 42
        assert reparsed.eth.ethertype == ETH_P_8021Q
        assert reparsed.ip.dst == IPv4Addr.parse("10.0.0.2")


class TestARP:
    def test_request_round_trip(self):
        pkt = make_arp_request(SRC_MAC, "10.0.0.1", "10.0.0.2")
        reparsed = Packet.from_bytes(pkt.to_bytes())
        assert reparsed.arp.opcode == ARP_REQUEST
        assert reparsed.eth.dst.is_broadcast
        assert reparsed.arp.target_ip == IPv4Addr.parse("10.0.0.2")

    def test_reply_round_trip(self):
        pkt = make_arp_reply(SRC_MAC, "10.0.0.1", DST_MAC, "10.0.0.2")
        reparsed = Packet.from_bytes(pkt.to_bytes())
        assert reparsed.arp.opcode == ARP_REPLY
        assert reparsed.arp.sender_mac == SRC_MAC


class TestIPv4:
    def test_round_trip(self):
        hdr = IPv4(src=IPv4Addr.parse("1.2.3.4"), dst=IPv4Addr.parse("5.6.7.8"), proto=IPPROTO_UDP, ttl=17)
        parsed, rest = IPv4.parse(hdr.pack(payload_len=0))
        assert parsed.src == hdr.src and parsed.dst == hdr.dst
        assert parsed.ttl == 17
        assert rest == b""

    def test_checksum_enforced(self):
        raw = bytearray(IPv4(src=IPv4Addr.parse("1.2.3.4"), dst=IPv4Addr.parse("5.6.7.8")).pack())
        raw[8] ^= 0xFF  # corrupt TTL
        with pytest.raises(PacketError):
            IPv4.parse(bytes(raw))

    def test_fragment_flags(self):
        frag = IPv4(src=IPv4Addr.parse("1.1.1.1"), dst=IPv4Addr.parse("2.2.2.2"), flags=0x1, frag_offset=0)
        assert frag.is_fragment and frag.more_fragments
        mid = IPv4(src=IPv4Addr.parse("1.1.1.1"), dst=IPv4Addr.parse("2.2.2.2"), frag_offset=100)
        assert mid.is_fragment and not mid.more_fragments

    def test_decrement_ttl_is_pure(self):
        hdr = IPv4(src=IPv4Addr.parse("1.1.1.1"), dst=IPv4Addr.parse("2.2.2.2"), ttl=5)
        lowered = hdr.decrement_ttl()
        assert lowered.ttl == 4 and hdr.ttl == 5

    def test_rejects_non_v4(self):
        raw = bytearray(IPv4(src=IPv4Addr.parse("1.1.1.1"), dst=IPv4Addr.parse("2.2.2.2")).pack())
        raw[0] = (6 << 4) | 5
        with pytest.raises(PacketError):
            IPv4.parse(bytes(raw))


class TestL4:
    def test_udp_round_trip_with_checksum(self):
        pkt = make_udp(SRC_MAC, DST_MAC, "10.0.0.1", "10.0.0.2", sport=9999, dport=53, payload=b"hello")
        reparsed = Packet.from_bytes(pkt.to_bytes())
        assert isinstance(reparsed.l4, UDP)
        assert (reparsed.l4.sport, reparsed.l4.dport) == (9999, 53)
        assert reparsed.payload == b"hello"

    def test_tcp_round_trip_flags(self):
        pkt = make_tcp(SRC_MAC, DST_MAC, "10.0.0.1", "10.0.0.2", flags=TCP.SYN | TCP.ACK)
        reparsed = Packet.from_bytes(pkt.to_bytes())
        assert isinstance(reparsed.l4, TCP)
        assert reparsed.l4.has(TCP.SYN) and reparsed.l4.has(TCP.ACK) and not reparsed.l4.has(TCP.FIN)

    def test_icmp_round_trip(self):
        pkt = Packet(
            eth=Ethernet(DST_MAC, SRC_MAC, ETH_P_IP),
            ip=IPv4(src=IPv4Addr.parse("10.0.0.1"), dst=IPv4Addr.parse("10.0.0.2"), proto=1),
            l4=ICMP(ICMP_ECHO_REQUEST, ident=7, seq=3),
            payload=b"ping",
        )
        reparsed = Packet.from_bytes(pkt.to_bytes())
        assert isinstance(reparsed.l4, ICMP)
        assert (reparsed.l4.ident, reparsed.l4.seq) == (7, 3)
        assert reparsed.payload == b"ping"

    def test_truncated_udp(self):
        with pytest.raises(PacketError):
            UDP.parse(b"\x00\x01")


class TestPacketContainer:
    def test_frame_len_matches_bytes(self):
        pkt = make_udp(SRC_MAC, DST_MAC, "10.0.0.1", "10.0.0.2", payload=b"x" * 100)
        assert pkt.frame_len == len(pkt.to_bytes())
        assert pkt.frame_len == 14 + 20 + 8 + 100

    def test_clone_is_deep(self):
        pkt = make_udp(SRC_MAC, DST_MAC, "10.0.0.1", "10.0.0.2")
        other = pkt.clone()
        other.ip.ttl = 1
        assert pkt.ip.ttl == 64

    def test_unknown_ethertype_keeps_payload(self):
        raw = Ethernet(DST_MAC, SRC_MAC, 0x88CC).pack() + b"lldp-data"
        parsed = Packet.from_bytes(raw)
        assert parsed.ip is None and parsed.arp is None
        assert parsed.payload == b"lldp-data"

    def test_unknown_ip_proto_keeps_payload(self):
        pkt = Packet(
            eth=Ethernet(DST_MAC, SRC_MAC, ETH_P_IP),
            ip=IPv4(src=IPv4Addr.parse("1.1.1.1"), dst=IPv4Addr.parse("2.2.2.2"), proto=89),
            payload=b"ospf",
        )
        reparsed = Packet.from_bytes(pkt.to_bytes())
        assert reparsed.l4 is None and reparsed.payload == b"ospf"

    def test_padding_trimmed_via_total_length(self):
        pkt = make_udp(SRC_MAC, DST_MAC, "10.0.0.1", "10.0.0.2", payload=b"ab")
        raw = pkt.to_bytes() + b"\x00" * 18  # Ethernet min-frame padding
        reparsed = Packet.from_bytes(raw)
        assert reparsed.payload == b"ab"

    @given(
        st.integers(min_value=0, max_value=0xFFFFFFFF),
        st.integers(min_value=0, max_value=0xFFFFFFFF),
        st.integers(min_value=0, max_value=65535),
        st.integers(min_value=0, max_value=65535),
        st.binary(max_size=64),
    )
    def test_udp_round_trip_property(self, src, dst, sport, dport, payload):
        pkt = make_udp(SRC_MAC, DST_MAC, IPv4Addr(src), IPv4Addr(dst), sport, dport, payload)
        reparsed = Packet.from_bytes(pkt.to_bytes())
        assert reparsed.ip.src == IPv4Addr(src)
        assert reparsed.ip.dst == IPv4Addr(dst)
        assert (reparsed.l4.sport, reparsed.l4.dport) == (sport, dport)
        assert reparsed.payload == payload
