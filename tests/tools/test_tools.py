"""Tests for the management tools (netlink-only kernel configuration)."""

import pytest

from repro.kernel import Kernel
from repro.kernel.interfaces import BridgeDevice, VxlanDevice
from repro.netsim.addresses import IPv4Addr, IPv4Prefix, MacAddr
from repro.tools import brctl, bridge_tool, ip, ipset, iptables, ipvsadm, sysctl
from repro.tools.common import ToolError
from repro.tools.frr import FrrDaemon, converge


@pytest.fixture
def kernel():
    k = Kernel("tools-test")
    k.add_physical("eth0")
    k.set_link("eth0", True)
    return k


class TestIpLink:
    def test_add_bridge(self, kernel):
        ip(kernel, "link add br0 type bridge")
        assert isinstance(kernel.devices.by_name("br0"), BridgeDevice)

    def test_add_veth_pair(self, kernel):
        ip(kernel, "link add veth0 type veth peer name veth1")
        assert kernel.devices.by_name("veth0").peer is kernel.devices.by_name("veth1")

    def test_add_vxlan(self, kernel):
        kernel.add_address("eth0", "192.168.1.1/24")
        ip(kernel, "link add flannel.1 type vxlan id 1 local 192.168.1.1 dstport 8472 dev eth0")
        dev = kernel.devices.by_name("flannel.1")
        assert isinstance(dev, VxlanDevice) and dev.vni == 1

    def test_set_up_down(self, kernel):
        ip(kernel, "link add br0 type bridge")
        ip(kernel, "link set br0 up")
        assert kernel.devices.by_name("br0").up
        ip(kernel, "link set br0 down")
        assert not kernel.devices.by_name("br0").up

    def test_set_master(self, kernel):
        ip(kernel, "link add br0 type bridge")
        ip(kernel, "link set eth0 master br0")
        assert kernel.devices.by_name("eth0").master == kernel.devices.by_name("br0").ifindex
        ip(kernel, "link set eth0 nomaster")
        assert kernel.devices.by_name("eth0").master is None

    def test_del(self, kernel):
        ip(kernel, "link add br0 type bridge")
        ip(kernel, "link del br0")
        assert "br0" not in kernel.devices

    def test_show(self, kernel):
        lines = ip(kernel, "link show")
        assert any("eth0" in line for line in lines)

    def test_unknown_device_errors(self, kernel):
        with pytest.raises(Exception):
            ip(kernel, "link set ghost0 up")

    def test_mtu(self, kernel):
        ip(kernel, "link set eth0 mtu 9000")
        assert kernel.devices.by_name("eth0").mtu == 9000


class TestIpAddrRoute:
    def test_addr_add_creates_connected_route(self, kernel):
        ip(kernel, "addr add 10.10.1.1/24 dev eth0")
        dev = kernel.devices.by_name("eth0")
        assert dev.has_address(IPv4Addr.parse("10.10.1.1"))
        route = kernel.fib.lookup("10.10.1.77")
        assert route is not None and route.oif == dev.ifindex

    def test_addr_del(self, kernel):
        ip(kernel, "addr add 10.10.1.1/24 dev eth0")
        ip(kernel, "addr del 10.10.1.1/24 dev eth0")
        assert not kernel.devices.by_name("eth0").has_address(IPv4Addr.parse("10.10.1.1"))

    def test_route_add_via(self, kernel):
        ip(kernel, "addr add 10.10.1.1/24 dev eth0")
        ip(kernel, "route add 10.99.0.0/16 via 10.10.1.254")
        route = kernel.fib.lookup("10.99.5.5")
        assert route.gateway == IPv4Addr.parse("10.10.1.254")

    def test_route_default(self, kernel):
        ip(kernel, "addr add 10.10.1.1/24 dev eth0")
        ip(kernel, "route add default via 10.10.1.254")
        assert kernel.fib.lookup("8.8.8.8") is not None

    def test_route_del(self, kernel):
        ip(kernel, "addr add 10.10.1.1/24 dev eth0")
        ip(kernel, "route add 10.99.0.0/16 via 10.10.1.254")
        ip(kernel, "route del 10.99.0.0/16")
        assert kernel.fib.lookup("10.99.5.5") is None

    def test_route_show(self, kernel):
        ip(kernel, "addr add 10.10.1.1/24 dev eth0")
        lines = ip(kernel, "route show")
        assert any("10.10.1.0/24" in line for line in lines)

    def test_neigh_add(self, kernel):
        ip(kernel, "neigh add 10.10.1.9 lladdr 02:aa:00:00:00:09 dev eth0")
        dev = kernel.devices.by_name("eth0")
        assert kernel.neighbors.resolved(dev.ifindex, "10.10.1.9") == MacAddr.parse("02:aa:00:00:00:09")

    def test_usage_errors(self, kernel):
        with pytest.raises(ToolError):
            ip(kernel, "bogus stuff")
        with pytest.raises(ToolError):
            ip(kernel, "addr add 10.0.0.1/24")


class TestBrctl:
    def test_addbr_addif(self, kernel):
        brctl(kernel, "addbr br0")
        ip(kernel, "link add v0 type veth peer name p0")
        brctl(kernel, "addif br0 v0")
        bridge = kernel.devices.by_name("br0").bridge
        assert kernel.devices.by_name("v0").ifindex in bridge.ports

    def test_delif_delbr(self, kernel):
        brctl(kernel, "addbr br0")
        ip(kernel, "link add v0 type veth peer name p0")
        brctl(kernel, "addif br0 v0")
        brctl(kernel, "delif br0 v0")
        assert kernel.devices.by_name("v0").master is None
        brctl(kernel, "delbr br0")
        assert "br0" not in kernel.devices

    def test_stp(self, kernel):
        brctl(kernel, "addbr br0")
        brctl(kernel, "stp br0 on")
        assert kernel.devices.by_name("br0").bridge.stp_enabled
        assert any("yes" in line for line in brctl(kernel, "show"))

    def test_bridge_tool_vlan_filtering(self, kernel):
        brctl(kernel, "addbr br0")
        bridge_tool(kernel, "link set dev br0 vlan_filtering on")
        assert kernel.devices.by_name("br0").bridge.vlan_filtering

    def test_bridge_fdb_vxlan(self, kernel):
        kernel.add_address("eth0", "192.168.1.1/24")
        ip(kernel, "link add vx0 type vxlan id 7 local 192.168.1.1")
        bridge_tool(kernel, "fdb add 02:bb:00:00:00:01 dev vx0 dst 192.168.1.2")
        dev = kernel.devices.by_name("vx0")
        assert dev.vtep_fdb[MacAddr.parse("02:bb:00:00:00:01")] == IPv4Addr.parse("192.168.1.2")


class TestIptablesIpset:
    def test_append_rule(self, kernel):
        iptables(kernel, "-A FORWARD -s 172.16.0.0/24 -j DROP")
        assert kernel.netfilter.rule_count("FORWARD") == 1
        rule = kernel.netfilter.chain("FORWARD").rules[0]
        assert rule.src == IPv4Prefix.parse("172.16.0.0/24") and rule.target == "DROP"

    def test_matches_parsed(self, kernel):
        iptables(kernel, "-A FORWARD -d 10.0.0.0/8 -p tcp --dport 443 -i eth0 -j ACCEPT")
        rule = kernel.netfilter.chain("FORWARD").rules[0]
        assert rule.proto == 6 and rule.dport == 443 and rule.in_iface == "eth0"

    def test_policy(self, kernel):
        iptables(kernel, "-P FORWARD DROP")
        assert kernel.netfilter.chain("FORWARD").policy == "DROP"

    def test_flush(self, kernel):
        iptables(kernel, "-A FORWARD -j DROP")
        iptables(kernel, "-F FORWARD")
        assert kernel.netfilter.rule_count("FORWARD") == 0

    def test_delete_by_handle(self, kernel):
        iptables(kernel, "-A FORWARD -j DROP")
        handle = kernel.netfilter.chain("FORWARD").rules[0].handle
        iptables(kernel, f"-D FORWARD {handle}")
        assert kernel.netfilter.rule_count("FORWARD") == 0

    def test_list(self, kernel):
        iptables(kernel, "-A FORWARD -s 1.2.3.0/24 -j DROP")
        lines = iptables(kernel, "-L FORWARD")
        assert any("1.2.3.0" in line for line in lines)

    def test_match_set(self, kernel):
        ipset(kernel, "create blacklist hash:ip")
        ipset(kernel, "add blacklist 172.16.0.5")
        iptables(kernel, "-A FORWARD -m set --match-set blacklist src -j DROP")
        rule = kernel.netfilter.chain("FORWARD").rules[0]
        assert rule.match_set == "blacklist"
        assert kernel.ipsets.require("blacklist").test("172.16.0.5")

    def test_ipset_lifecycle(self, kernel):
        ipset(kernel, "create s hash:net")
        ipset(kernel, "add s 10.1.0.0/16")
        assert any("Entries: 1" in line for line in ipset(kernel, "list"))
        ipset(kernel, "del s 10.1.0.0/16")
        ipset(kernel, "destroy s")
        assert kernel.ipsets.get("s") is None


class TestSysctlIpvsadm:
    def test_sysctl_write_read(self, kernel):
        sysctl(kernel, "-w net.ipv4.ip_forward=1")
        assert kernel.sysctl.get_bool("net.ipv4.ip_forward")
        assert sysctl(kernel, "net.ipv4.ip_forward") == ["net.ipv4.ip_forward = 1"]

    def test_ipvsadm_service_and_dests(self, kernel):
        ipvsadm(kernel, "-A -t 10.96.0.1:80 -s rr")
        ipvsadm(kernel, "-a -t 10.96.0.1:80 -r 10.244.1.10:8080 -w 2")
        service = kernel.ipvs.get("10.96.0.1", 80, 6)
        assert service is not None and service.dests[0].weight == 2
        lines = ipvsadm(kernel, "-L")
        assert any("10.96.0.1:80" in line for line in lines)
        ipvsadm(kernel, "-d -t 10.96.0.1:80 -r 10.244.1.10:8080")
        ipvsadm(kernel, "-D -t 10.96.0.1:80")
        assert kernel.ipvs.get("10.96.0.1", 80, 6) is None


class TestFrr:
    def make_pair(self):
        """Two routers on a shared 192.168.0.0/30 link, each with a LAN."""
        from repro.netsim.nic import Wire

        r1, r2 = Kernel("r1"), Kernel("r2")
        for r, lan, link_ip in ((r1, "10.1.0.1/24", "192.168.0.1/30"), (r2, "10.2.0.1/24", "192.168.0.2/30")):
            r.add_physical("lan0")
            r.add_physical("wan0")
            r.set_link("lan0", True)
            r.set_link("wan0", True)
            r.add_address("lan0", lan)
            r.add_address("wan0", link_ip)
        Wire(r1.devices.by_name("wan0").nic, r2.devices.by_name("wan0").nic)
        return r1, r2

    def test_convergence_installs_routes(self):
        r1, r2 = self.make_pair()
        d1, d2 = FrrDaemon(r1, "1.1.1.1"), FrrDaemon(r2, "2.2.2.2")
        d1.learn_connected()
        d2.learn_connected()
        d1.add_peer(d2, IPv4Addr.parse("192.168.0.1"))
        d2.add_peer(d1, IPv4Addr.parse("192.168.0.2"))
        rounds = converge([d1, d2])
        assert rounds < 16
        # r1 must now reach r2's LAN through the link
        route = r1.fib.lookup("10.2.0.55")
        assert route is not None and route.gateway == IPv4Addr.parse("192.168.0.2")
        route = r2.fib.lookup("10.1.0.55")
        assert route is not None and route.gateway == IPv4Addr.parse("192.168.0.1")

    def test_withdrawal(self):
        r1, r2 = self.make_pair()
        d1, d2 = FrrDaemon(r1, "1.1.1.1"), FrrDaemon(r2, "2.2.2.2")
        d1.learn_connected()
        d2.learn_connected()
        d1.add_peer(d2, IPv4Addr.parse("192.168.0.1"))
        d2.add_peer(d1, IPv4Addr.parse("192.168.0.2"))
        converge([d1, d2])
        # r1 withdraws its LAN
        prefix = IPv4Prefix.parse("10.1.0.0/24")
        del d1.rib[prefix]
        d2.receive(__import__("repro.tools.frr", fromlist=["Advertisement"]).Advertisement(
            origin="1.1.1.1", prefix=prefix, metric=16, next_hop=IPv4Addr.parse("192.168.0.1")))
        assert r2.fib.lookup("10.1.0.55") is None

    def test_split_horizon(self):
        r1, r2 = self.make_pair()
        d1, d2 = FrrDaemon(r1, "1.1.1.1"), FrrDaemon(r2, "2.2.2.2")
        d1.learn_connected()
        d2.learn_connected()
        d1.add_peer(d2, IPv4Addr.parse("192.168.0.1"))
        d2.add_peer(d1, IPv4Addr.parse("192.168.0.2"))
        converge([d1, d2])
        advs = d2.advertisements_for("1.1.1.1")
        assert all(str(a.prefix) != "10.1.0.0/24" for a in advs)
