"""Edge cases for the management tools and the rtnetlink surface."""

import pytest

from repro.kernel import Kernel
from repro.netlink.messages import (
    NLM_F_DUMP,
    NLM_F_REQUEST,
    RTM_GETLINK,
    RTM_NEWLINK,
    SYSCTL_GET,
    NetlinkError,
    NetlinkMsg,
)
from repro.netsim.addresses import IPv4Addr, MacAddr
from repro.tools import brctl, bridge_tool, ip, ipset, iptables, ipvsadm, sysctl
from repro.tools.common import ToolError


@pytest.fixture
def kernel():
    k = Kernel("edges")
    k.add_physical("eth0")
    k.set_link("eth0", True)
    return k


class TestShowCommands:
    def test_ip_link_show_single(self, kernel):
        lines = ip(kernel, "link show eth0")
        assert len(lines) == 1 and "eth0" in lines[0] and "UP" in lines[0]

    def test_ip_link_show_missing_errors(self, kernel):
        with pytest.raises(NetlinkError):
            ip(kernel, "link show ghost0")

    def test_ip_addr_show(self, kernel):
        ip(kernel, "addr add 10.0.0.1/24 dev eth0")
        lines = ip(kernel, "addr show")
        assert any("10.0.0.1/24" in line for line in lines)

    def test_ip_neigh_show(self, kernel):
        ip(kernel, "neigh add 10.0.0.9 lladdr 02:aa:00:00:00:09 dev eth0")
        lines = ip(kernel, "neigh show")
        assert any("02:aa:00:00:00:09" in line for line in lines)

    def test_bridge_fdb_show(self, kernel):
        brctl(kernel, "addbr br0")
        ip(kernel, "link set eth0 master br0")
        lines = bridge_tool(kernel, "fdb show")
        assert any("vlan 1" in line for line in lines)  # the port's own MAC

    def test_iptables_list_policy_line(self, kernel):
        iptables(kernel, "-P INPUT DROP")
        lines = iptables(kernel, "-L INPUT")
        assert lines[0] == "Chain INPUT (policy DROP)"

    def test_sysctl_dump_all(self, kernel):
        socket = kernel.bus.open_socket()
        replies = socket.request(NetlinkMsg(SYSCTL_GET, flags=NLM_F_REQUEST | NLM_F_DUMP))
        names = {r.attrs["name"] for r in replies}
        assert "net.ipv4.ip_forward" in names


class TestErrorPaths:
    def test_ip_route_del_missing(self, kernel):
        with pytest.raises(NetlinkError):
            ip(kernel, "route del 10.99.0.0/16")

    def test_ip_route_unreachable_gateway(self, kernel):
        with pytest.raises(NetlinkError):
            ip(kernel, "route add 10.99.0.0/16 via 192.168.50.1")

    def test_addr_del_missing(self, kernel):
        with pytest.raises(NetlinkError):
            ip(kernel, "addr del 10.0.0.1/24 dev eth0")

    def test_brctl_addif_missing_bridge(self, kernel):
        with pytest.raises(NetlinkError):
            brctl(kernel, "addif nosuchbr eth0")

    def test_iptables_missing_target(self, kernel):
        with pytest.raises(ToolError):
            iptables(kernel, "-A FORWARD -s 10.0.0.0/8")

    def test_iptables_unknown_protocol(self, kernel):
        with pytest.raises(ToolError):
            iptables(kernel, "-A FORWARD -p sctp -j DROP")

    def test_ipset_add_to_missing_set(self, kernel):
        with pytest.raises(NetlinkError):
            ipset(kernel, "add ghost 10.0.0.1")

    def test_ipvsadm_missing_service_endpoint(self, kernel):
        with pytest.raises(ToolError):
            ipvsadm(kernel, "-A")
        with pytest.raises(ToolError):
            ipvsadm(kernel, "-A -t not-an-endpoint")

    def test_sysctl_unknown_key(self, kernel):
        with pytest.raises(NetlinkError):
            sysctl(kernel, "-w net.unknown.key=1")

    def test_duplicate_link_name(self, kernel):
        brctl(kernel, "addbr br0")
        with pytest.raises(NetlinkError):
            brctl(kernel, "addbr br0")


class TestDumpAttributes:
    def test_vxlan_link_dump_carries_info(self, kernel):
        kernel.add_address("eth0", "192.168.1.1/24")
        ip(kernel, "link add vx0 type vxlan id 9 local 192.168.1.1 dstport 4789 dev eth0")
        socket = kernel.bus.open_socket()
        replies = socket.request(NetlinkMsg(RTM_GETLINK, {"ifname": "vx0"}))
        info = replies[0].attrs["vxlan"]
        assert info["vni"] == 9
        assert info["port"] == 4789
        assert info["local"] == IPv4Addr.parse("192.168.1.1")

    def test_veth_link_dump_carries_peer(self, kernel):
        ip(kernel, "link add va type veth peer name vb")
        socket = kernel.bus.open_socket()
        replies = socket.request(NetlinkMsg(RTM_GETLINK, {"ifname": "va"}))
        peer_ifindex = replies[0].attrs["veth"]["peer_ifindex"]
        assert kernel.devices.by_index(peer_ifindex).name == "vb"

    def test_bridge_link_dump_carries_attrs(self, kernel):
        brctl(kernel, "addbr br0")
        brctl(kernel, "stp br0 on")
        socket = kernel.bus.open_socket()
        replies = socket.request(NetlinkMsg(RTM_GETLINK, {"ifname": "br0"}))
        info = replies[0].attrs["bridge"]
        assert info["stp_state"] == 1
        assert info["ageing_time"] == 300

    def test_vxlan_fdb_dump(self, kernel):
        kernel.add_address("eth0", "192.168.1.1/24")
        ip(kernel, "link add vx0 type vxlan id 9 local 192.168.1.1")
        bridge_tool(kernel, "fdb add 02:bb:00:00:00:07 dev vx0 dst 192.168.1.2")
        lines = bridge_tool(kernel, "fdb show")
        assert any("02:bb:00:00:00:07" in line for line in lines)
