"""CLI tests for the optimizer tooling: fpmopt, fpmlint --json, fpmtool."""

import json

import pytest

from repro.tools import fpmlint, fpmopt, fpmtool


class TestFpmlintJson:
    def test_json_mode_clean_library(self, capsys):
        rc = fpmlint.main(["--json"])
        out = capsys.readouterr().out
        assert rc == 0
        payload = json.loads(out)
        assert payload["tool"] == "fpmlint"
        assert payload["checked"] == 14
        assert payload["findings"] == []

    def test_text_mode_unchanged(self, capsys):
        rc = fpmlint.main([])
        out = capsys.readouterr().out
        assert rc == 0
        assert "14 program(s) verified" in out

    def test_structured_findings_shape(self):
        checked, problems = fpmlint.lint_library_structured()
        assert checked == 14
        for problem in problems:
            assert {"program", "pc", "code", "message"} <= set(problem)


class TestFpmopt:
    @pytest.fixture(scope="class")
    def bench(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("bench") / "BENCH_optimizer.json"
        rc = fpmopt.main(["--packets", "8", "--seed", "3", "--min-reduced", "5", "--bench", str(path)])
        return rc, path

    def test_exit_zero_and_bench_written(self, bench):
        rc, path = bench
        assert rc == 0
        assert path.exists()

    def test_bench_schema(self, bench):
        _, path = bench
        report = json.loads(path.read_text())
        assert report["tool"] == "fpmopt"
        assert report["ok"] is True
        assert report["failures"] == []
        assert report["totals"]["configs"] == 14
        assert report["totals"]["reduced"] >= 5
        assert report["totals"]["insns_removed"] > 0
        for entry in report["configs"]:
            assert {
                "config",
                "hook",
                "status",
                "insns_before",
                "insns_after",
                "insns_removed",
                "latency_ns_saved",
                "rejected",
                "differential_mismatches",
            } <= set(entry)
            assert entry["differential_mismatches"] == 0

    def test_min_reduced_gate_fails(self, tmp_path, capsys):
        rc = fpmopt.main(
            ["--packets", "2", "--min-reduced", "99", "--bench", str(tmp_path / "b.json")]
        )
        out = capsys.readouterr().out
        assert rc == 1
        assert "--min-reduced 99" in out

    def test_corpus_deterministic(self):
        assert fpmopt.frame_corpus(12, 5) == fpmopt.frame_corpus(12, 5)
        assert fpmopt.frame_corpus(12, 5) != fpmopt.frame_corpus(12, 6)


class TestFpmtoolProgList:
    def test_optimizer_column(self, capsys):
        rc = fpmtool.main(["--scenario", "router", "--packets", "8", "--optimize", "prog", "list"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "optimizer" in out
        assert "optimized(-" in out

    def test_without_optimizer_shows_dash(self, capsys, monkeypatch):
        # hermetic: ambient env opt-ins would fill the optimizer/jit columns
        monkeypatch.delenv("LINUXFP_OPT", raising=False)
        monkeypatch.delenv("LINUXFP_JIT", raising=False)
        rc = fpmtool.main(["--scenario", "router", "--packets", "8", "prog", "list"])
        out = capsys.readouterr().out
        assert rc == 0
        lines = [l for l in out.splitlines() if l.startswith("eth")]
        assert lines and all(l.rstrip().endswith("-") for l in lines)
