"""Conntrack under state pressure: ``nf_conntrack_max`` and early-drop.

Linux semantics mirrored here: at capacity a new flow first tries to evict
a closing or unreplied (non-ESTABLISHED) victim; ESTABLISHED entries are
never sacrificed. Advisory tracking fails *open* (the packet proceeds
untracked, counted in ``insert_failed``); required allocation (the ipvs
NAT pin) raises ``ConntrackFull`` and the stack drops the packet with a
registered reason.
"""

import pytest

from repro.kernel.conntrack import (
    CT_CLOSED,
    CT_ESTABLISHED,
    CT_NEW,
    ConnTuple,
    Conntrack,
    ConntrackFull,
)
from repro.kernel.kernel import Kernel
from repro.netsim.addresses import IPv4Addr, MacAddr
from repro.netsim.clock import Clock
from repro.netsim.packet import IPPROTO_UDP, TCP, make_tcp, make_udp
from repro.netsim.skbuff import SKBuff

MAC1 = MacAddr.parse("02:00:00:00:00:01")
MAC2 = MacAddr.parse("02:00:00:00:00:02")


def tup(i: int, proto: int = IPPROTO_UDP) -> ConnTuple:
    return ConnTuple(
        IPv4Addr.parse("10.0.0.1"), IPv4Addr.parse("10.0.1.1"), proto, 1000 + i, 53
    )


def udp_skb(sport: int):
    return SKBuff(pkt=make_udp(MAC1, MAC2, "10.0.0.1", "10.0.1.1", sport=sport, dport=53))


def tcp_skb(sport: int, flags=TCP.ACK, src="10.0.0.1", dst="10.0.1.1", dport=80):
    return SKBuff(pkt=make_tcp(MAC1, MAC2, src, dst, sport=sport, dport=dport, flags=flags))


class TestEarlyDrop:
    def test_unlimited_by_default(self):
        ct = Conntrack(Clock())
        for i in range(5000):
            ct.create(tup(i))
        assert len(ct) == 5000
        assert ct.early_drops == 0

    def test_new_flow_evicts_oldest_unreplied(self):
        clock = Clock()
        ct = Conntrack(clock, max_entries=3)
        victims = [ct.create(tup(i)) for i in range(3)]
        clock.advance(1000)
        ct.create(tup(99))
        assert len(ct) == 3
        assert ct.early_drops == 1
        assert ct.lookup(victims[0].tuple) is None  # oldest NEW went first
        assert ct.lookup(tup(99)) is not None

    def test_closed_entries_evicted_before_unreplied(self):
        clock = Clock()
        ct = Conntrack(clock, max_entries=3)
        ct.create(tup(0))  # oldest, but NEW
        clock.advance(1000)
        closed = ct.create(tup(1))
        closed.state = CT_CLOSED  # newer but closing: preferred victim
        clock.advance(1000)
        ct.create(tup(2))
        ct.create(tup(3))
        assert ct.lookup(tup(1)) is None
        assert ct.lookup(tup(0)) is not None
        assert ct.early_drops == 1

    def test_established_never_evicted(self):
        ct = Conntrack(Clock(), max_entries=2)
        for i in range(2):
            ct.create(tup(i)).state = CT_ESTABLISHED
        with pytest.raises(ConntrackFull):
            ct.create(tup(9))
        assert ct.insert_failed == 1
        assert {e.state for e in ct.entries()} == {CT_ESTABLISHED}

    def test_advisory_track_fails_open(self):
        ct = Conntrack(Clock(), max_entries=1)
        ct.create(tup(0)).state = CT_ESTABLISHED
        skb = udp_skb(sport=2000)
        entry = ct.track(skb)
        assert entry is None  # untracked, not an exception
        assert skb.conntrack is None
        assert ct.insert_failed == 1
        assert len(ct) == 1

    def test_track_of_existing_flow_unaffected_by_pressure(self):
        ct = Conntrack(Clock(), max_entries=1)
        first = udp_skb(sport=3000)
        assert ct.track(first) is not None
        again = udp_skb(sport=3000)
        assert ct.track(again) is first.conntrack  # update, not insert


class TestSysctlWiring:
    def test_default_limit_from_sysctl(self):
        kernel = Kernel("dut")
        assert kernel.conntrack.max_entries == 65536

    def test_sysctl_write_updates_limit(self):
        kernel = Kernel("dut")
        kernel.sysctl.set("net.netfilter.nf_conntrack_max", "4")
        assert kernel.conntrack.max_entries == 4

    def test_non_numeric_write_keeps_previous(self):
        kernel = Kernel("dut")
        kernel.sysctl.set("net.netfilter.nf_conntrack_max", "bogus")
        assert kernel.conntrack.max_entries == 65536


class TestIpvsUnderPressure:
    def test_ipvs_connect_raises_conntrack_full(self):
        from repro.kernel.ipvs import Ipvs

        clock = Clock()
        ct = Conntrack(clock, max_entries=1)
        ct.create(tup(0)).state = CT_ESTABLISHED
        ipvs = Ipvs(ct)
        ipvs.add_service("10.9.0.1", 80, 6, scheduler="rr")
        ipvs.add_dest("10.9.0.1", 80, 6, "10.0.1.1", 8080)
        flow = ConnTuple(IPv4Addr.parse("10.0.0.5"), IPv4Addr.parse("10.9.0.1"), 6, 5555, 80)
        with pytest.raises(ConntrackFull):
            ipvs.connect(flow)
        # the scheduled dest must not leak an active connection
        service = ipvs.require("10.9.0.1", 80, 6)
        assert all(d.active_conns == 0 for d in service.dests)
