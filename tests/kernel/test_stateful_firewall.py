"""Stateful firewall: conntrack-matched rules on the forward path.

The classic gateway policy: let inside hosts connect out, admit only reply
traffic back in. Also verifies the fast-path contract: the ipt helper
cannot evaluate state rules, so filtering falls back to the slow path
per packet — slower, but never wrong.
"""

import pytest

from repro.core import Controller
from repro.kernel.hooks_api import XDP_PASS
from repro.measure.topology import LineTopology
from repro.netsim.packet import Packet, make_tcp
from repro.tools import iptables


def stateful_topo(accelerated=False):
    """inside (source, 10.0.1.0/24) <-> DUT <-> outside (sink, 10.100.0.0/16).

    Policy: outside->inside only for ESTABLISHED connections.
    """
    topo = LineTopology()
    topo.install_prefixes(2)
    topo.dut.route_add("10.0.1.0/24", dev="eth0", _quiet_exists=True)
    iptables(topo.dut, "-A FORWARD -i eth1 -m state --state ESTABLISHED -j ACCEPT")
    iptables(topo.dut, "-A FORWARD -i eth1 -j DROP")
    if accelerated:
        Controller(topo.dut, hook="xdp").start()
    topo.prewarm_neighbors()
    inside_rx, outside_rx = [], []
    topo.src_eth.nic.attach(lambda f, q: inside_rx.append(Packet.from_bytes(f)))
    topo.sink_eth.nic.attach(lambda f, q: outside_rx.append(Packet.from_bytes(f)))
    return topo, inside_rx, outside_rx


def outbound(topo, sport=5000):
    return make_tcp(topo.src_eth.mac, topo.dut_in.mac, "10.0.1.2", "10.100.0.1",
                    sport=sport, dport=80).to_bytes()


def inbound_reply(topo, dport=5000):
    return make_tcp(topo.sink_eth.mac, topo.dut_out.mac, "10.100.0.1", "10.0.1.2",
                    sport=80, dport=dport).to_bytes()


def inbound_fresh(topo):
    return make_tcp(topo.sink_eth.mac, topo.dut_out.mac, "10.100.0.1", "10.0.1.2",
                    sport=6666, dport=22).to_bytes()


class TestStatefulPolicy:
    @pytest.mark.parametrize("accelerated", [False, True])
    def test_replies_admitted_fresh_blocked(self, accelerated):
        topo, inside_rx, outside_rx = stateful_topo(accelerated)
        # inside opens a connection: tracked as NEW on the forward path
        topo.dut_in.nic.receive_from_wire(outbound(topo))
        assert len(outside_rx) == 1
        # the reply confirms the connection and is admitted
        topo.dut_out.nic.receive_from_wire(inbound_reply(topo))
        assert len(inside_rx) == 1
        # an unsolicited inbound connection is dropped
        topo.dut_out.nic.receive_from_wire(inbound_fresh(topo))
        assert len(inside_rx) == 1

    def test_unsolicited_reply_without_outbound_blocked(self):
        topo, inside_rx, __ = stateful_topo()
        topo.dut_out.nic.receive_from_wire(inbound_reply(topo))
        assert inside_rx == []  # no prior outbound: not ESTABLISHED

    def test_fast_path_punts_stateful_chain(self):
        """The ipt helper returns UNSUPPORTED on state rules: every inbound
        packet goes via the slow path (XDP_PASS), never mis-filtered."""
        topo, inside_rx, outside_rx = stateful_topo(accelerated=True)
        topo.dut_in.nic.receive_from_wire(outbound(topo))
        passes_before = topo.dut.stack.xdp_actions.get(XDP_PASS, 0)
        topo.dut_out.nic.receive_from_wire(inbound_reply(topo))
        assert topo.dut.stack.xdp_actions.get(XDP_PASS, 0) == passes_before + 1
        assert len(inside_rx) == 1

    def test_stateless_rules_before_state_rule_still_fast(self):
        """Rules ahead of the first state rule evaluate in the helper."""
        topo = LineTopology()
        topo.install_prefixes(2)
        iptables(topo.dut, "-A FORWARD -s 10.0.1.66/32 -j DROP")  # stateless first
        iptables(topo.dut, "-A FORWARD -m state --state NEW -j ACCEPT")
        Controller(topo.dut, hook="xdp").start()
        topo.prewarm_neighbors()
        blocked = make_tcp(topo.src_eth.mac, topo.dut_in.mac, "10.0.1.66",
                           topo.flow_destination(0, 2), dport=80).to_bytes()
        drops_before = topo.dut.stack.drops.get("xdp_drop", 0)
        topo.dut_in.nic.receive_from_wire(blocked)
        # matched the stateless DROP before reaching the state rule: fast drop
        assert topo.dut.stack.drops.get("xdp_drop", 0) == drops_before + 1

    def test_iptables_tool_parses_state(self):
        topo = LineTopology()
        iptables(topo.dut, "-A FORWARD -m state --state ESTABLISHED -j ACCEPT")
        rule = topo.dut.netfilter.chain("FORWARD").rules[0]
        assert rule.ct_state == "ESTABLISHED"

    def test_bad_state_rejected(self):
        from repro.kernel.netfilter import NetfilterError, Rule

        with pytest.raises(NetfilterError):
            Rule(target="ACCEPT", ct_state="RELATED")

    def test_stateful_forwarding_charges_conntrack(self):
        topo, __, outside_rx = stateful_topo()
        t0 = topo.clock.now_ns
        topo.dut_in.nic.receive_from_wire(outbound(topo, sport=7777))
        elapsed = topo.clock.now_ns - t0
        # strictly more than the stateless forward path (conntrack added)
        assert elapsed > 1000 + topo.costs.conntrack_lookup - 50
