"""Integration tests for the packet pipeline (stack.py)."""

import pytest

from repro.kernel import Kernel
from repro.kernel.sockets import SocketError, tcp_rr_server, udp_echo_server
from repro.measure.topology import LineTopology
from repro.netsim.addresses import IPv4Addr, MacAddr, ipv4
from repro.netsim.packet import (
    ICMP,
    ICMP_ECHO_REPLY,
    ICMP_ECHO_REQUEST,
    IPPROTO_ICMP,
    IPPROTO_TCP,
    IPPROTO_UDP,
    IPv4,
    Packet,
    TCP,
    UDP,
    make_arp_request,
    make_udp,
)


@pytest.fixture
def topo():
    t = LineTopology()
    t.install_prefixes(5)
    return t


def sniff(nic_dev):
    """Capture frames arriving at a device WITHOUT stealing them."""
    captured = []
    original = nic_dev.nic._handler

    def tee(frame, queue):
        captured.append(Packet.from_bytes(frame))
        if original is not None:
            original(frame, queue)

    nic_dev.nic.attach(tee)
    return captured


class TestArpResolution:
    def test_forwarding_triggers_arp_and_flushes_queue(self, topo):
        """First packet to an unresolved next hop is queued, not dropped."""
        sink_rx = sniff(topo.sink_eth)
        # ARP not prewarmed: DUT must resolve 10.0.2.2 itself
        topo.dut.neigh_add("eth0", "10.0.1.2", topo.src_eth.mac)
        frame = make_udp(topo.src_eth.mac, topo.dut_in.mac, "10.0.1.2", "10.100.0.1").to_bytes()
        topo.dut_in.nic.receive_from_wire(frame)
        # the sink received an ARP request and (after replying) the packet
        kinds = [("arp" if p.arp else "ip") for p in sink_rx]
        assert kinds == ["arp", "ip"]
        assert sink_rx[1].ip.dst == IPv4Addr.parse("10.100.0.1")
        assert topo.dut.stack.drops.get("no_route", 0) == 0

    def test_arp_request_answered_for_local_address(self, topo):
        src_rx = sniff(topo.src_eth)
        request = make_arp_request(topo.src_eth.mac, "10.0.1.2", "10.0.1.1").to_bytes()
        topo.dut_in.nic.receive_from_wire(request)
        assert len(src_rx) == 1
        reply = src_rx[0].arp
        assert reply.opcode == 2
        assert reply.sender_mac == topo.dut_in.mac
        assert reply.sender_ip == IPv4Addr.parse("10.0.1.1")

    def test_arp_request_for_foreign_address_ignored(self, topo):
        src_rx = sniff(topo.src_eth)
        request = make_arp_request(topo.src_eth.mac, "10.0.1.2", "10.0.1.77").to_bytes()
        topo.dut_in.nic.receive_from_wire(request)
        assert src_rx == []

    def test_arp_request_learns_sender(self, topo):
        request = make_arp_request(topo.src_eth.mac, "10.0.1.2", "10.0.1.1").to_bytes()
        topo.dut_in.nic.receive_from_wire(request)
        assert topo.dut.neighbors.resolved(topo.dut_in.ifindex, "10.0.1.2") == topo.src_eth.mac


class TestForwarding:
    def test_ttl_decremented_and_macs_rewritten(self, topo):
        topo.prewarm_neighbors()
        sink_rx = sniff(topo.sink_eth)
        frame = make_udp(topo.src_eth.mac, topo.dut_in.mac, "10.0.1.2", "10.100.0.1", ttl=33).to_bytes()
        topo.dut_in.nic.receive_from_wire(frame)
        out = sink_rx[0]
        assert out.ip.ttl == 32
        assert out.eth.src == topo.dut_out.mac
        assert out.eth.dst == topo.sink_eth.mac

    def test_ttl_one_dropped_with_icmp_time_exceeded(self, topo):
        topo.prewarm_neighbors()
        src_rx = sniff(topo.src_eth)
        frame = make_udp(topo.src_eth.mac, topo.dut_in.mac, "10.0.1.2", "10.100.0.1", ttl=1).to_bytes()
        topo.dut_in.nic.receive_from_wire(frame)
        assert topo.dut.stack.drops["ttl_exceeded"] == 1
        icmp_replies = [p for p in src_rx if p.ip and p.ip.proto == IPPROTO_ICMP]
        assert len(icmp_replies) == 1
        assert icmp_replies[0].l4.icmp_type == 11  # time exceeded

    def test_no_route_dropped(self, topo):
        topo.prewarm_neighbors()
        frame = make_udp(topo.src_eth.mac, topo.dut_in.mac, "10.0.1.2", "192.168.99.1").to_bytes()
        topo.dut_in.nic.receive_from_wire(frame)
        assert topo.dut.stack.drops["no_route"] == 1

    def test_forwarding_disabled_dropped(self):
        topo = LineTopology(dut_forwarding=False)
        frame = make_udp(topo.src_eth.mac, topo.dut_in.mac, "10.0.1.2", "10.0.2.2").to_bytes()
        topo.dut_in.nic.receive_from_wire(frame)
        assert topo.dut.stack.drops["not_forwarding"] == 1

    def test_malformed_frame_dropped(self, topo):
        before = dict(topo.dut.stack.drops)
        topo.dut_in.nic.receive_from_wire(b"\x01\x02\x03")
        assert topo.dut.stack.drops["malformed"] == before.get("malformed", 0) + 1

    def test_forwarded_counter(self, topo):
        topo.prewarm_neighbors()
        frame = make_udp(topo.src_eth.mac, topo.dut_in.mac, "10.0.1.2", "10.100.0.1").to_bytes()
        for __ in range(5):
            topo.dut_in.nic.receive_from_wire(frame)
        assert topo.dut.stack.forwarded == 5

    def test_fragment_forwarded_independently(self, topo):
        topo.prewarm_neighbors()
        sink_rx = sniff(topo.sink_eth)
        pkt = make_udp(topo.src_eth.mac, topo.dut_in.mac, "10.0.1.2", "10.100.0.1")
        pkt.ip.flags = 0x1  # more fragments
        topo.dut_in.nic.receive_from_wire(pkt.to_bytes())
        assert len(sink_rx) == 1 and sink_rx[0].ip.more_fragments


class TestLocalDelivery:
    def test_icmp_echo_reply(self, topo):
        topo.prewarm_neighbors()
        src_rx = sniff(topo.src_eth)
        pkt = Packet(
            eth=__import__("repro.netsim.packet", fromlist=["Ethernet"]).Ethernet(
                topo.dut_in.mac, topo.src_eth.mac, 0x0800
            ),
            ip=IPv4(src=ipv4("10.0.1.2"), dst=ipv4("10.0.1.1"), proto=IPPROTO_ICMP),
            l4=ICMP(ICMP_ECHO_REQUEST, ident=42, seq=7),
            payload=b"ping!",
        )
        topo.dut_in.nic.receive_from_wire(pkt.to_bytes())
        replies = [p for p in src_rx if p.l4 and isinstance(p.l4, ICMP)]
        assert len(replies) == 1
        assert replies[0].l4.icmp_type == ICMP_ECHO_REPLY
        assert (replies[0].l4.ident, replies[0].l4.seq) == (42, 7)
        assert replies[0].payload == b"ping!"

    def test_udp_echo_server(self, topo):
        topo.prewarm_neighbors()
        udp_echo_server(topo.dut, 7)
        src_rx = sniff(topo.src_eth)
        frame = make_udp(topo.src_eth.mac, topo.dut_in.mac, "10.0.1.2", "10.0.1.1", sport=5555, dport=7,
                         payload=b"echo me").to_bytes()
        topo.dut_in.nic.receive_from_wire(frame)
        assert len(src_rx) == 1
        assert src_rx[0].payload == b"echo me"
        assert src_rx[0].l4.dport == 5555

    def test_unclaimed_port_counted(self, topo):
        frame = make_udp(topo.src_eth.mac, topo.dut_in.mac, "10.0.1.2", "10.0.1.1", dport=9999).to_bytes()
        topo.dut_in.nic.receive_from_wire(frame)
        assert topo.dut.stack.drops["no_socket"] == 1
        assert topo.dut.sockets.unclaimed == 1

    def test_double_bind_rejected(self, topo):
        udp_echo_server(topo.dut, 7)
        with pytest.raises(SocketError):
            udp_echo_server(topo.dut, 7)

    def test_input_chain_filters_local_traffic(self, topo):
        from repro.kernel.netfilter import Rule

        udp_echo_server(topo.dut, 7)
        topo.dut.ipt_append("INPUT", Rule(target="DROP", proto=IPPROTO_UDP, dport=7))
        frame = make_udp(topo.src_eth.mac, topo.dut_in.mac, "10.0.1.2", "10.0.1.1", dport=7).to_bytes()
        topo.dut_in.nic.receive_from_wire(frame)
        assert topo.dut.stack.drops["nf_input"] == 1
        assert topo.dut.sockets.delivered == 0

    def test_output_chain_filters_generated_traffic(self, topo):
        from repro.kernel.netfilter import Rule

        topo.dut.ipt_append("OUTPUT", Rule(target="DROP"))
        topo.dut.send_ip(
            IPv4(src=ipv4("10.0.1.1"), dst=ipv4("10.0.1.2"), proto=IPPROTO_UDP), UDP(sport=1, dport=2)
        )
        assert topo.dut.stack.drops["nf_output"] == 1

    def test_loopback_delivery(self, topo):
        got = []
        topo.dut.sockets.bind(IPPROTO_UDP, 7, lambda k, skb: got.append(skb.pkt.payload))
        topo.dut.send_ip(
            IPv4(src=ipv4("127.0.0.1"), dst=ipv4("127.0.0.1"), proto=IPPROTO_UDP),
            UDP(sport=9, dport=7),
            b"local",
        )
        assert got == [b"local"]

    def test_conntrack_tracks_local_flows(self, topo):
        udp_echo_server(topo.dut, 7)
        topo.prewarm_neighbors()
        frame = make_udp(topo.src_eth.mac, topo.dut_in.mac, "10.0.1.2", "10.0.1.1", dport=7).to_bytes()
        topo.dut_in.nic.receive_from_wire(frame)
        assert len(topo.dut.conntrack) >= 1


class TestCostAccounting:
    def test_slow_path_cost_is_stage_sum(self, topo):
        """The forwarding path must charge exactly its stage constants."""
        topo.prewarm_neighbors()
        frame = make_udp(topo.src_eth.mac, topo.dut_in.mac, "10.0.1.2", "10.100.0.1").to_bytes()
        # blackhole sink so only DUT work lands on the clock
        topo.sink_eth.nic.attach(lambda f, q: None)
        topo.dut_in.nic.receive_from_wire(frame)  # warm
        t0 = topo.clock.now_ns
        topo.dut_in.nic.receive_from_wire(frame)
        elapsed = topo.clock.now_ns - t0
        c = topo.costs
        expected = (
            c.driver_rx + c.skb_alloc + c.netif_receive + c.ip_rcv + c.fib_lookup
            + c.nf_hook_overhead + c.ip_forward + c.ip_output + c.neigh_lookup
            + c.dev_queue_xmit + c.driver_tx
        )
        assert elapsed == pytest.approx(expected, abs=2)

    def test_profiler_disabled_costs_identical(self, topo):
        """Profiling must not change simulated time."""
        topo.prewarm_neighbors()
        topo.sink_eth.nic.attach(lambda f, q: None)
        frame = make_udp(topo.src_eth.mac, topo.dut_in.mac, "10.0.1.2", "10.100.0.1").to_bytes()
        topo.dut_in.nic.receive_from_wire(frame)
        t0 = topo.clock.now_ns
        topo.dut_in.nic.receive_from_wire(frame)
        plain = topo.clock.now_ns - t0
        topo.dut.profiler.enabled = True
        t0 = topo.clock.now_ns
        topo.dut_in.nic.receive_from_wire(frame)
        profiled = topo.clock.now_ns - t0
        assert plain == profiled


class TestVxlan:
    def make_overlay_pair(self):
        """Two hosts with vxlan tunnels over a direct wire."""
        from repro.netsim.clock import Clock
        from repro.netsim.nic import Wire

        clock = Clock()
        a, b = Kernel("a", clock=clock), Kernel("b", clock=clock)
        for kernel, ip_addr in ((a, "192.168.0.1"), (b, "192.168.0.2")):
            kernel.add_physical("eth0")
            kernel.set_link("eth0", True)
            kernel.add_address("eth0", f"{ip_addr}/24")
        Wire(a.devices.by_name("eth0").nic, b.devices.by_name("eth0").nic)
        a.neigh_add("eth0", "192.168.0.2", b.devices.by_name("eth0").mac)
        b.neigh_add("eth0", "192.168.0.1", a.devices.by_name("eth0").mac)
        va = a.add_vxlan("vx0", vni=42, local="192.168.0.1")
        vb = b.add_vxlan("vx0", vni=42, local="192.168.0.2")
        a.set_link("vx0", True)
        b.set_link("vx0", True)
        return a, b, va, vb

    def test_encap_decap_round_trip(self):
        a, b, va, vb = self.make_overlay_pair()
        va.fdb_add(vb.mac, IPv4Addr.parse("192.168.0.2"))
        inner = make_udp(va.mac, vb.mac, "172.31.0.1", "172.31.0.2", payload=b"tunneled")
        received = []
        vb.deliver = lambda frame, queue=0: received.append(Packet.from_bytes(frame))
        va.transmit(inner.to_bytes())
        assert len(received) == 1
        assert received[0].payload == b"tunneled"

    def test_vtep_learning_from_decap(self):
        a, b, va, vb = self.make_overlay_pair()
        va.fdb_add(vb.mac, IPv4Addr.parse("192.168.0.2"))
        inner = make_udp(va.mac, vb.mac, "172.31.0.1", "172.31.0.2")
        va.transmit(inner.to_bytes())
        # b's vtep learned a's inner MAC -> remote 192.168.0.1
        assert vb.vtep_fdb.get(va.mac) == IPv4Addr.parse("192.168.0.1")

    def test_unknown_vni_dropped(self):
        a, b, va, vb = self.make_overlay_pair()
        vb.vni = 99  # mismatch
        va.fdb_add(vb.mac, IPv4Addr.parse("192.168.0.2"))
        inner = make_udp(va.mac, vb.mac, "172.31.0.1", "172.31.0.2")
        va.transmit(inner.to_bytes())
        assert b.stack.drops["vxlan_no_vni"] == 1

    def test_unknown_dst_mac_head_end_replication(self):
        a, b, va, vb = self.make_overlay_pair()
        va.fdb_add(MacAddr.parse("02:99:00:00:00:01"), IPv4Addr.parse("192.168.0.2"))
        bcast = make_udp(va.mac, "ff:ff:ff:ff:ff:ff", "172.31.0.1", "172.31.0.255")
        received = []
        vb.deliver = lambda frame, queue=0: received.append(frame)
        va.transmit(bcast.to_bytes())
        assert len(received) == 1  # replicated to the known vtep

    def test_no_vteps_drops(self):
        a, b, va, vb = self.make_overlay_pair()
        frame = make_udp(va.mac, "02:99:00:00:00:01", "172.31.0.1", "172.31.0.2")
        va.transmit(frame.to_bytes())
        assert va.dropped == 1
