"""Tests for ipvs load balancing."""

import pytest

from repro.kernel.conntrack import ConnTuple, Conntrack
from repro.kernel.ipvs import Ipvs, IpvsError
from repro.netsim.addresses import IPv4Addr, ipv4
from repro.netsim.clock import Clock
from repro.netsim.packet import IPPROTO_TCP


def make_ipvs():
    ct = Conntrack(Clock())
    lb = Ipvs(ct)
    lb.add_service("10.96.0.1", 80, IPPROTO_TCP, scheduler="rr")
    lb.add_dest("10.96.0.1", 80, IPPROTO_TCP, "10.244.1.10", 8080)
    lb.add_dest("10.96.0.1", 80, IPPROTO_TCP, "10.244.2.10", 8080)
    return lb, ct


def tup(sport):
    return ConnTuple(ipv4("10.244.1.5"), ipv4("10.96.0.1"), IPPROTO_TCP, sport, 80)


class TestIpvs:
    def test_rr_alternates(self):
        lb, __ = make_ipvs()
        picks = [lb.connect(tup(sport))[0] for sport in range(1000, 1004)]
        assert picks == [
            ipv4("10.244.1.10"),
            ipv4("10.244.2.10"),
            ipv4("10.244.1.10"),
            ipv4("10.244.2.10"),
        ]

    def test_flow_affinity_via_conntrack(self):
        """Packets of one flow always hit the same real server."""
        lb, __ = make_ipvs()
        first = lb.connect(tup(1000))
        again = lb.connect(tup(1000))
        assert first == again

    def test_wrr_respects_weights(self):
        ct = Conntrack(Clock())
        lb = Ipvs(ct)
        lb.add_service("10.96.0.1", 80, IPPROTO_TCP, scheduler="wrr")
        lb.add_dest("10.96.0.1", 80, IPPROTO_TCP, "10.244.1.10", 8080, weight=3)
        lb.add_dest("10.96.0.1", 80, IPPROTO_TCP, "10.244.2.10", 8080, weight=1)
        picks = [lb.connect(tup(sport))[0] for sport in range(2000, 2008)]
        heavy = sum(1 for p in picks if p == ipv4("10.244.1.10"))
        assert heavy == 6  # 3:1 ratio over 8 picks

    def test_lc_prefers_least_loaded(self):
        ct = Conntrack(Clock())
        lb = Ipvs(ct)
        lb.add_service("10.96.0.1", 80, IPPROTO_TCP, scheduler="lc")
        lb.add_dest("10.96.0.1", 80, IPPROTO_TCP, "10.244.1.10", 8080)
        lb.add_dest("10.96.0.1", 80, IPPROTO_TCP, "10.244.2.10", 8080)
        lb.connect(tup(3000))
        second = lb.connect(tup(3001))
        assert second[0] == ipv4("10.244.2.10")

    def test_zero_weight_excluded(self):
        ct = Conntrack(Clock())
        lb = Ipvs(ct)
        lb.add_service("10.96.0.1", 80, IPPROTO_TCP)
        lb.add_dest("10.96.0.1", 80, IPPROTO_TCP, "10.244.1.10", 8080, weight=0)
        assert lb.connect(tup(4000)) is None

    def test_no_match_returns_none(self):
        lb, __ = make_ipvs()
        other = ConnTuple(ipv4("10.0.0.1"), ipv4("10.96.0.9"), IPPROTO_TCP, 1, 80)
        assert lb.connect(other) is None

    def test_duplicate_service_rejected(self):
        lb, __ = make_ipvs()
        with pytest.raises(IpvsError):
            lb.add_service("10.96.0.1", 80, IPPROTO_TCP)

    def test_bad_scheduler_rejected(self):
        lb, __ = make_ipvs()
        with pytest.raises(IpvsError):
            lb.add_service("10.96.0.2", 80, IPPROTO_TCP, scheduler="random")

    def test_del_dest(self):
        lb, __ = make_ipvs()
        lb.del_dest("10.96.0.1", 80, IPPROTO_TCP, "10.244.2.10", 8080)
        picks = {lb.connect(tup(sport))[0] for sport in range(5000, 5004)}
        assert picks == {ipv4("10.244.1.10")}
        with pytest.raises(IpvsError):
            lb.del_dest("10.96.0.1", 80, IPPROTO_TCP, "10.244.2.10", 8080)

    def test_del_service(self):
        lb, __ = make_ipvs()
        lb.del_service("10.96.0.1", 80, IPPROTO_TCP)
        assert lb.services() == []
        with pytest.raises(IpvsError):
            lb.del_service("10.96.0.1", 80, IPPROTO_TCP)
