"""Stack-level ipvs tests: interception, DNAT, and flow pinning in the
receive path (the slow-path side of the ipvs FPM prototype)."""

import pytest

from repro.measure.topology import LineTopology
from repro.netsim.packet import IPPROTO_TCP, Packet, make_tcp
from repro.tools import ip, ipvsadm


def lb_topo():
    """DUT hosts a VIP; real servers 10.200.0.x live behind the sink."""
    topo = LineTopology()
    ip(topo.dut, "addr add 10.96.0.1/32 dev lo")
    ip(topo.dut, "route add 10.200.0.0/24 via 10.0.2.2")
    ipvsadm(topo.dut, "-A -t 10.96.0.1:80 -s rr")
    ipvsadm(topo.dut, "-a -t 10.96.0.1:80 -r 10.200.0.10:8080")
    ipvsadm(topo.dut, "-a -t 10.96.0.1:80 -r 10.200.0.11:8080")
    topo.prewarm_neighbors()
    captured = []
    topo.sink_eth.nic.attach(lambda frame, q: captured.append(Packet.from_bytes(frame)))
    return topo, captured


def vip_frame(topo, sport):
    return make_tcp(topo.src_eth.mac, topo.dut_in.mac, "10.0.1.2", "10.96.0.1",
                    sport=sport, dport=80).to_bytes()


class TestIpvsInterception:
    def test_dnat_rewrites_destination(self):
        topo, captured = lb_topo()
        topo.dut_in.nic.receive_from_wire(vip_frame(topo, 1000))
        assert len(captured) == 1
        out = captured[0]
        assert str(out.ip.dst) == "10.200.0.10"
        assert out.l4.dport == 8080

    def test_round_robin_across_flows(self):
        topo, captured = lb_topo()
        for sport in range(1000, 1004):
            topo.dut_in.nic.receive_from_wire(vip_frame(topo, sport))
        destinations = [str(p.ip.dst) for p in captured]
        assert destinations == ["10.200.0.10", "10.200.0.11", "10.200.0.10", "10.200.0.11"]

    def test_flow_pinned_across_packets(self):
        topo, captured = lb_topo()
        for __ in range(5):
            topo.dut_in.nic.receive_from_wire(vip_frame(topo, 2000))
        assert {str(p.ip.dst) for p in captured} == {"10.200.0.10"}
        entry = topo.dut.conntrack.entries()[0]
        assert entry.dnat_to is not None

    def test_no_destinations_drops(self):
        topo, captured = lb_topo()
        ipvsadm(topo.dut, "-d -t 10.96.0.1:80 -r 10.200.0.10:8080")
        ipvsadm(topo.dut, "-d -t 10.96.0.1:80 -r 10.200.0.11:8080")
        topo.dut_in.nic.receive_from_wire(vip_frame(topo, 3000))
        assert captured == []
        assert topo.dut.stack.drops["ipvs_no_dest"] == 1

    def test_non_vip_local_traffic_unaffected(self):
        topo, captured = lb_topo()
        frame = make_tcp(topo.src_eth.mac, topo.dut_in.mac, "10.0.1.2", "10.0.1.1",
                         sport=1, dport=80).to_bytes()
        topo.dut_in.nic.receive_from_wire(frame)
        assert captured == []  # delivered locally (no socket -> dropped there)
        assert topo.dut.stack.drops["no_socket"] == 1

    def test_vip_only_matches_service_port(self):
        topo, captured = lb_topo()
        frame = make_tcp(topo.src_eth.mac, topo.dut_in.mac, "10.0.1.2", "10.96.0.1",
                         sport=1, dport=443).to_bytes()
        topo.dut_in.nic.receive_from_wire(frame)
        assert captured == []  # not the service port: ordinary local-in
        assert topo.dut.stack.drops["no_socket"] == 1

    def test_service_deletion_restores_local_delivery(self):
        topo, captured = lb_topo()
        ipvsadm(topo.dut, "-D -t 10.96.0.1:80")
        topo.dut_in.nic.receive_from_wire(vip_frame(topo, 4000))
        assert captured == []
        assert topo.dut.stack.drops["no_socket"] == 1
