"""ECMP multipath: resilient consistent hashing vs the mod-N baseline.

The tentpole promise, measured at the unit level: removing one of N
members moves ~1/N of the bucket table under the resilient policy and
almost everything under mod-N; draining members keep their active
buckets; every group mutation bumps the FIB generation so the flow cache
can never serve a stale next hop.
"""

import pytest

from repro.core import Controller
from repro.kernel import Kernel
from repro.kernel.fib import (
    POLICY_MODN,
    POLICY_RESILIENT,
    Fib,
    NextHop,
    NexthopGroup,
    Route,
    RouteError,
)
from repro.measure.topology import LineTopology
from repro.netsim.addresses import ipv4, prefix
from repro.netsim.packet import make_udp

IDLE_NS = 1_000_000_000


def hops(n, base_oif=1):
    return [NextHop(oif=base_oif + k, gateway=ipv4(f"10.1.{k}.2")) for k in range(n)]


def group(n=4, policy=POLICY_RESILIENT, num_buckets=64, **kw):
    return NexthopGroup(1, hops(n), policy=policy, num_buckets=num_buckets, **kw)


class TestGroupBasics:
    def test_needs_members(self):
        with pytest.raises(RouteError):
            NexthopGroup(1, [])

    def test_rejects_unknown_policy(self):
        with pytest.raises(RouteError):
            NexthopGroup(1, hops(2), policy="rendezvous")

    def test_rejects_duplicate_gateways(self):
        with pytest.raises(RouteError):
            NexthopGroup(1, hops(2) + [NextHop(oif=9, gateway=ipv4("10.1.0.2"))])

    def test_rejects_fewer_buckets_than_members(self):
        with pytest.raises(RouteError):
            NexthopGroup(1, hops(4), num_buckets=2)

    def test_every_flow_gets_a_member(self):
        g = group()
        owners = {g.select(h).gateway for h in range(512)}
        assert owners == set(g.member_gateways())

    def test_buckets_are_fairly_shared(self):
        g = group(n=4, num_buckets=64)
        counts = [g.buckets_owned(gw) for gw in g.member_gateways()]
        assert sum(counts) == 64
        assert max(counts) - min(counts) <= 1

    def test_weights_skew_bucket_shares(self):
        nexthops = hops(2)
        heavy = NextHop(oif=nexthops[0].oif, gateway=nexthops[0].gateway, weight=3)
        g = NexthopGroup(1, [heavy, nexthops[1]], num_buckets=64)
        assert g.buckets_owned(heavy.gateway) == 48  # 3/4 of 64
        assert g.buckets_owned(nexthops[1].gateway) == 16


class TestChurn:
    def test_resilient_failure_moves_only_the_dead_share(self):
        g = group(n=4, num_buckets=128)
        before = g.owner_map()
        dead = g.member_gateways()[1]
        g.set_alive(dead, False)
        after = g.owner_map()
        moved = sum(1 for a, b in zip(before, after) if a != b)
        # exactly the dead member's buckets moved, nothing else
        assert moved == sum(1 for owner in before if owner == dead)
        assert g.buckets_owned(dead) == 0

    def test_modn_failure_renumbers_most_flows(self):
        g = group(n=4, policy=POLICY_MODN)
        before = {h: g.select(h).gateway for h in range(256)}
        g.set_alive(g.member_gateways()[1], False)
        after = {h: g.select(h).gateway for h in range(256)}
        moved = sum(1 for h in before if before[h] != after[h])
        assert moved / len(before) >= 0.5

    def test_recovery_restores_the_original_map(self):
        g = group(n=4, num_buckets=128)
        before = g.owner_map()
        gw = g.member_gateways()[2]
        g.set_alive(gw, False)
        g.set_alive(gw, True)
        # the returning member only takes back idle buckets — with no
        # traffic all buckets are idle, so the map converges to fair again
        assert g.buckets_owned(gw) == 32

    def test_all_members_dead_selects_none(self):
        g = group(n=2)
        for gw in g.member_gateways():
            g.set_alive(gw, False)
        assert g.select(123) is None

    def test_select_survives_stale_table(self):
        """A member can die between rebalances; select must lazily repair."""
        g = group(n=2, num_buckets=8)
        victim = g.member_gateways()[0]
        # mark dead directly (no rebalance yet), as a crash would
        g._member_for(victim).alive = False
        hop = g.select(0)
        assert hop is not None and hop.gateway != victim


class TestDraining:
    def test_draining_member_keeps_active_buckets(self):
        g = group(n=4, num_buckets=64, idle_timer_ns=IDLE_NS)
        victim = g.member_gateways()[0]
        # traffic keeps every one of the victim's buckets warm
        warm = [h for h in range(256) if g.select(h, now_ns=0).gateway == victim]
        g.set_draining(victim, True, now_ns=1)
        for h in warm:
            assert g.select(h, now_ns=2).gateway == victim  # flows finish in place
        assert not g.is_drained(victim)

    def test_new_flows_avoid_draining_member(self):
        g = group(n=4, num_buckets=64, idle_timer_ns=IDLE_NS)
        victim = g.member_gateways()[0]
        g.set_draining(victim, True, now_ns=0)
        g.maintain(now_ns=IDLE_NS + 1)  # all buckets idle: they migrate
        assert g.is_drained(victim)
        owners = {g.select(h, now_ns=IDLE_NS + 2).gateway for h in range(256)}
        assert victim not in owners

    def test_drain_completes_when_flows_go_idle(self):
        g = group(n=4, num_buckets=64, idle_timer_ns=IDLE_NS)
        victim = g.member_gateways()[0]
        warm = [h for h in range(256) if g.select(h, now_ns=0).gateway == victim]
        g.set_draining(victim, True, now_ns=1)
        assert g.select(warm[0], now_ns=2).gateway == victim
        g.maintain(now_ns=IDLE_NS * 3)  # traffic stopped: buckets idle out
        assert g.is_drained(victim)

    def test_undrain_rejoins(self):
        g = group(n=4, num_buckets=64, idle_timer_ns=IDLE_NS)
        victim = g.member_gateways()[0]
        g.set_draining(victim, True, now_ns=0)
        g.maintain(now_ns=IDLE_NS + 1)
        g.set_draining(victim, False, now_ns=IDLE_NS + 2)
        g.maintain(now_ns=IDLE_NS * 2 + 3)
        assert g.buckets_owned(victim) == 16


class TestMembershipOps:
    def test_add_nexthop_takes_a_fair_share(self):
        g = group(n=3, num_buckets=60)
        g.add_nexthop(NextHop(oif=9, gateway=ipv4("10.1.9.2")))
        assert g.buckets_owned("10.1.9.2") == 15

    def test_remove_nexthop_moves_only_its_buckets(self):
        g = group(n=4, num_buckets=128)
        before = g.owner_map()
        victim = g.member_gateways()[3]
        g.remove_nexthop(victim)
        after = g.owner_map()
        moved = sum(1 for a, b in zip(before, after) if a != b)
        assert moved == sum(1 for owner in before if owner == victim)

    def test_remove_unknown_raises(self):
        g = group(n=2)
        with pytest.raises(RouteError):
            g.remove_nexthop("10.99.99.99")


class TestFibIntegration:
    def fib_with_group(self, policy=POLICY_RESILIENT):
        fib = Fib()
        fib.nexthop_group_add(NexthopGroup(7, hops(4), policy=policy))
        fib.add(Route(prefix=prefix("10.200.0.0/16"), oif=0, nhg=7))
        return fib

    def test_multipath_route_resolves_per_flow(self):
        fib = self.fib_with_group()
        route = fib.lookup("10.200.1.1")
        assert route is not None and route.is_multipath
        resolved = {fib.resolve(route, h).gateway for h in range(64)}
        assert len(resolved) == 4

    def test_resolve_single_path_is_passthrough(self):
        fib = Fib()
        route = Route(prefix=prefix("10.0.0.0/8"), oif=1, gateway=ipv4("10.0.0.1"))
        fib.add(route)
        assert fib.resolve(route, 5) is route

    def test_resolve_missing_group_is_fib_miss(self):
        fib = Fib()
        fib.add(Route(prefix=prefix("10.0.0.0/8"), oif=0, nhg=99))
        assert fib.resolve(fib.lookup("10.0.0.1"), 5) is None

    def test_group_mutations_bump_generation(self):
        fib = self.fib_with_group()
        g = fib.nexthop_group(7)
        for mutate in (
            lambda: g.set_alive("10.1.0.2", False),
            lambda: g.set_alive("10.1.0.2", True),
            lambda: g.set_draining("10.1.1.2", True),
            lambda: g.add_nexthop(NextHop(oif=9, gateway=ipv4("10.1.9.2"))),
            lambda: g.remove_nexthop("10.1.9.2"),
        ):
            gen = fib.gen
            mutate()
            assert fib.gen > gen, "flow cache would have served a stale hop"

    def test_group_del_bumps_and_detaches(self):
        fib = self.fib_with_group()
        gen = fib.gen
        g = fib.nexthop_group_del(7)
        assert fib.gen > gen
        gen = fib.gen
        g.set_alive("10.1.0.2", False)
        assert fib.gen == gen  # detached: no more callbacks

    def test_duplicate_group_id_rejected(self):
        fib = self.fib_with_group()
        with pytest.raises(RouteError):
            fib.nexthop_group_add(NexthopGroup(7, hops(2)))


class TestKernelApi:
    def test_route_add_requires_existing_group(self):
        from repro.kernel.kernel import DeviceError

        kernel = Kernel("r")
        with pytest.raises(DeviceError):
            kernel.route_add("10.9.0.0/16", nhg=3)

    def test_nexthop_group_lifecycle(self):
        kernel = Kernel("r")
        kernel.nexthop_group_add(3, hops(2))
        kernel.route_add("10.9.0.0/16", nhg=3)
        route = kernel.fib.lookup("10.9.1.1")
        assert route.nhg == 3
        kernel.nexthop_group_del(3)
        assert kernel.fib.nexthop_group(3) is None

    def test_route_replace_swaps_next_hop(self):
        topo = LineTopology()
        topo.install_prefixes(2)
        gen = topo.dut.fib.gen
        topo.dut.route_replace("10.100.0.0/16", via="10.0.1.2")
        assert topo.dut.fib.gen > gen
        assert topo.dut.fib.lookup("10.100.0.1").gateway == ipv4("10.0.1.2")

    def test_route_replace_creates_when_absent(self):
        topo = LineTopology()
        topo.dut.route_replace("10.200.0.0/16", via="10.0.2.2")
        assert topo.dut.fib.lookup("10.200.0.1") is not None

    def test_route_add_still_rejects_duplicates(self):
        topo = LineTopology()
        topo.install_prefixes(1)
        with pytest.raises(RouteError):
            topo.dut.route_add("10.100.0.0/16", via="10.0.1.2")


class TestStaleRouteRegression:
    """Satellite: replace/delete must invalidate cached forwarding state —
    the next packet follows the *new* FIB, never a stale cached hop."""

    def cached_router(self):
        topo = LineTopology()
        topo.install_prefixes(4)
        controller = Controller(topo.dut, hook="xdp", flow_cache=True)
        controller.start()
        topo.prewarm_neighbors()
        out = []
        topo.sink_eth.nic.attach(lambda frame, q: out.append(frame))
        return topo, out

    def send(self, topo, flow=0):
        frame = make_udp(
            topo.src_eth.mac,
            topo.dut_in.mac,
            "10.0.1.2",
            topo.flow_destination(flow, 4),
            sport=1234,
            dport=53,
        ).to_bytes()
        topo.dut_in.nic.receive_from_wire(frame)

    def test_route_replace_invalidates_cached_flow(self):
        topo, out = self.cached_router()
        cache = topo.dut.flow_cache
        self.send(topo)
        self.send(topo)
        assert cache.stats.hits["xdp"] == 1
        delivered = len(out)
        # replace the covering prefix to point back at the source side: the
        # cached "forward to sink" decision is now wrong
        topo.dut.route_replace("10.100.0.0/16", via="10.0.1.2")
        self.send(topo)
        assert len(out) == delivered  # NOT delivered to the sink anymore
        assert any(r.startswith("gen:fib") for r in cache.stats.invalidations)

    def test_route_del_invalidates_to_no_route(self):
        topo, out = self.cached_router()
        self.send(topo)
        self.send(topo)
        delivered = len(out)
        drops_before = topo.dut.stack.drops.get("no_route", 0)
        topo.dut.route_del("10.100.0.0/16")
        self.send(topo)
        assert len(out) == delivered
        assert topo.dut.stack.drops.get("no_route", 0) == drops_before + 1

    def test_iproute2_replace_and_nhid(self):
        from repro.tools import ip

        kernel = Kernel("r")
        dev = kernel.add_physical("eth0")
        kernel.set_link("eth0", True)
        kernel.add_address("eth0", "10.1.0.1/24")
        kernel.nexthop_group_add(5, hops(2))
        ip(kernel, "route add 10.50.0.0/16 nhid 5")
        assert kernel.fib.lookup("10.50.0.1").nhg == 5
        ip(kernel, "route replace 10.50.0.0/16 via 10.1.0.2")
        route = kernel.fib.lookup("10.50.0.1")
        assert route.nhg is None and route.gateway == ipv4("10.1.0.2")
        ip(kernel, "route del 10.50.0.0/16")
        assert kernel.fib.lookup("10.50.0.1") is None
