"""Tests for bridging: FDB, learning, flooding, VLANs, STP."""

import pytest

from repro.kernel import Kernel
from repro.kernel.bridge import STP_BLOCKING, STP_FORWARDING, stp_converge
from repro.netsim.clock import Clock
from repro.netsim.nic import Wire
from repro.netsim.packet import Packet, make_udp


def make_bridge_host(num_ports=3):
    """A kernel with br0 enslaving veth ports; returns (kernel, bridge, ports, peers)."""
    kernel = Kernel("bridgehost")
    bridge_dev = kernel.add_bridge("br0")
    kernel.set_link("br0", True)
    ports, peers = [], []
    for i in range(num_ports):
        port, peer = kernel.add_veth_pair(f"veth{i}", f"peer{i}")
        kernel.set_link(f"veth{i}", True)
        kernel.set_link(f"peer{i}", True)
        kernel.enslave(f"veth{i}", "br0")
        ports.append(port)
        peers.append(peer)
    return kernel, bridge_dev.bridge, ports, peers


def capture(peer):
    """Capture frames that exit the bridge through a peer veth."""
    received = []
    original = peer.deliver
    peer.deliver = lambda frame, queue=0: received.append(Packet.from_bytes(frame))
    return received


class TestBridgeForwarding:
    def test_unknown_dst_floods_all_but_ingress(self):
        kernel, bridge, ports, peers = make_bridge_host()
        rx = [capture(p) for p in peers]
        frame = make_udp("02:aa:00:00:00:01", "02:aa:00:00:00:02", "10.0.0.1", "10.0.0.2")
        peers[0].transmit(frame.to_bytes())
        assert len(rx[0]) == 0
        assert len(rx[1]) == 1 and len(rx[2]) == 1
        assert bridge.fdb_miss_count == 1

    def test_learning_enables_unicast_forwarding(self):
        kernel, bridge, ports, peers = make_bridge_host()
        rx = [capture(p) for p in peers]
        # host A (behind port0) talks, bridge learns its MAC
        a_to_b = make_udp("02:aa:00:00:00:01", "02:aa:00:00:00:02", "10.0.0.1", "10.0.0.2")
        peers[0].transmit(a_to_b.to_bytes())
        # now B replies: must go only to port0
        b_to_a = make_udp("02:aa:00:00:00:02", "02:aa:00:00:00:01", "10.0.0.2", "10.0.0.1")
        peers[1].transmit(b_to_a.to_bytes())
        assert len(rx[0]) == 1
        assert len(rx[2]) == 1  # only the initial flood

    def test_no_hairpin(self):
        """A frame whose FDB entry points at its own ingress port is dropped."""
        kernel, bridge, ports, peers = make_bridge_host()
        rx = [capture(p) for p in peers]
        learn = make_udp("02:aa:00:00:00:01", "02:aa:00:00:00:99", "10.0.0.1", "10.0.0.9")
        peers[0].transmit(learn.to_bytes())
        to_self = make_udp("02:aa:00:00:00:03", "02:aa:00:00:00:01", "10.0.0.3", "10.0.0.1")
        peers[0].transmit(to_self.to_bytes())
        assert len(rx[1]) == 1 and len(rx[2]) == 1  # only the first flood

    def test_broadcast_floods_and_delivers_up(self):
        kernel, bridge, ports, peers = make_bridge_host()
        kernel.add_address("br0", "10.0.0.254/24")
        rx = [capture(p) for p in peers]
        bc = make_udp("02:aa:00:00:00:01", "ff:ff:ff:ff:ff:ff", "10.0.0.1", "10.0.0.255", dport=67)
        peers[0].transmit(bc.to_bytes())
        assert len(rx[1]) == 1 and len(rx[2]) == 1

    def test_frame_to_bridge_mac_goes_up(self):
        kernel, bridge, ports, peers = make_bridge_host()
        kernel.add_address("br0", "10.0.0.254/24")
        bridge_mac = kernel.devices.by_name("br0").mac
        rx = [capture(p) for p in peers]
        frame = make_udp("02:aa:00:00:00:01", bridge_mac, "10.0.0.1", "10.0.0.254", dport=7777)
        before = kernel.stack.drops["no_socket"]
        peers[0].transmit(frame.to_bytes())
        # reached local delivery (no socket bound -> drop counted there)
        assert kernel.stack.drops["no_socket"] == before + 1
        assert len(rx[1]) == 0 and len(rx[2]) == 0

    def test_fdb_aging(self):
        kernel, bridge, ports, peers = make_bridge_host()
        bridge.ageing_time_ns = 1000
        frame = make_udp("02:aa:00:00:00:01", "02:aa:00:00:00:02", "10.0.0.1", "10.0.0.2")
        peers[0].transmit(frame.to_bytes())
        assert any(not e.is_local for e in bridge.fdb.values())
        kernel.clock.advance(2000)
        assert bridge.age_fdb() >= 1

    def test_static_fdb_entries_exempt_from_aging(self):
        kernel, bridge, ports, peers = make_bridge_host()
        bridge.ageing_time_ns = 1000
        from repro.netsim.addresses import MacAddr

        bridge.fdb_learn(MacAddr.parse("02:aa:00:00:00:05"), 1, ports[0].ifindex, static=True)
        kernel.clock.advance(5000)
        assert bridge.age_fdb() == 0

    def test_remove_port_clears_fdb(self):
        kernel, bridge, ports, peers = make_bridge_host()
        frame = make_udp("02:aa:00:00:00:01", "02:aa:00:00:00:02", "10.0.0.1", "10.0.0.2")
        peers[0].transmit(frame.to_bytes())
        kernel.release("veth0")
        assert all(e.port_ifindex != ports[0].ifindex for e in bridge.fdb.values())
        assert ports[0].master is None

    def test_double_enslave_rejected(self):
        kernel, bridge, ports, peers = make_bridge_host()
        kernel.add_bridge("br1")
        with pytest.raises(Exception):
            kernel.enslave("veth0", "br1")


class TestBridgeVlans:
    def test_vlan_filtering_drops_disallowed(self):
        kernel, bridge, ports, peers = make_bridge_host()
        kernel.set_bridge_attrs("br0", vlan_filtering=True)
        rx = [capture(p) for p in peers]
        tagged = make_udp("02:aa:00:00:00:01", "ff:ff:ff:ff:ff:ff", "10.0.0.1", "10.0.0.2", vlan=100)
        peers[0].transmit(tagged.to_bytes())
        assert len(rx[1]) == 0 and len(rx[2]) == 0

    def test_vlan_allowed_floods_within_vlan(self):
        kernel, bridge, ports, peers = make_bridge_host()
        kernel.set_bridge_attrs("br0", vlan_filtering=True)
        for port in bridge.ports.values():
            port.allowed_vlans.add(100)
        rx = [capture(p) for p in peers]
        tagged = make_udp("02:aa:00:00:00:01", "02:bb:00:00:00:01", "10.0.0.1", "10.0.0.2", vlan=100)
        peers[0].transmit(tagged.to_bytes())
        assert len(rx[1]) == 1 and len(rx[2]) == 1
        assert rx[1][0].vlan is not None and rx[1][0].vlan.vid == 100

    def test_pvid_strips_tag_on_egress(self):
        kernel, bridge, ports, peers = make_bridge_host()
        kernel.set_bridge_attrs("br0", vlan_filtering=True)
        for port in bridge.ports.values():
            port.allowed_vlans.add(100)
        bridge.ports[ports[1].ifindex].pvid = 100
        rx = [capture(p) for p in peers]
        tagged = make_udp("02:aa:00:00:00:01", "02:bb:00:00:00:01", "10.0.0.1", "10.0.0.2", vlan=100)
        peers[0].transmit(tagged.to_bytes())
        assert rx[1][0].vlan is None  # stripped: vlan == egress pvid

    def test_untagged_frame_classified_to_pvid(self):
        kernel, bridge, ports, peers = make_bridge_host()
        kernel.set_bridge_attrs("br0", vlan_filtering=True)
        bridge.ports[ports[0].ifindex].pvid = 200
        bridge.ports[ports[0].ifindex].allowed_vlans.add(200)
        bridge.ports[ports[1].ifindex].allowed_vlans.add(200)
        rx = [capture(p) for p in peers]
        untagged = make_udp("02:aa:00:00:00:01", "02:bb:00:00:00:01", "10.0.0.1", "10.0.0.2")
        peers[0].transmit(untagged.to_bytes())
        # port1 allows vlan 200 (tagged since its pvid is 1); port2 does not
        assert len(rx[1]) == 1 and rx[1][0].vlan.vid == 200
        assert len(rx[2]) == 0


class TestStp:
    def test_bpdus_consumed_by_control_plane(self):
        kernel, bridge, ports, peers = make_bridge_host()
        kernel.set_bridge_attrs("br0", stp=True)
        rx = [capture(p) for p in peers]
        from repro.netsim.packet import Ethernet
        from repro.kernel.bridge import STP_MULTICAST

        bpdu = Packet(
            eth=Ethernet(dst=STP_MULTICAST, src=peers[0].mac, ethertype=0x0027),
            payload=(1 << 60).to_bytes(8, "big") + (0).to_bytes(4, "big") + (1 << 60).to_bytes(8, "big"),
        )
        peers[0].transmit(bpdu.to_bytes())
        assert len(rx[1]) == 0 and len(rx[2]) == 0

    def test_two_bridge_loop_blocks_one_port(self):
        """Two bridges joined by two parallel links: STP must block a port."""
        kernel = Kernel("stp-host")
        b1 = kernel.add_bridge("br1")
        b2 = kernel.add_bridge("br2")
        kernel.set_link("br1", True)
        kernel.set_link("br2", True)
        for i in range(2):
            a, b = kernel.add_veth_pair(f"l{i}a", f"l{i}b")
            kernel.set_link(f"l{i}a", True)
            kernel.set_link(f"l{i}b", True)
            kernel.enslave(f"l{i}a", "br1")
            kernel.enslave(f"l{i}b", "br2")
        kernel.set_bridge_attrs("br1", stp=True)
        kernel.set_bridge_attrs("br2", stp=True)
        stp_converge([b1.bridge, b2.bridge])
        root = b1.bridge if b1.bridge.bridge_id < b2.bridge.bridge_id else b2.bridge
        other = b2.bridge if root is b1.bridge else b1.bridge
        assert other.root_id == root.bridge_id
        states = [p.state for p in other.ports.values()]
        assert states.count(STP_FORWARDING) == 1
        assert states.count(STP_BLOCKING) == 1
        # root bridge keeps everything forwarding
        assert all(p.state == STP_FORWARDING for p in root.ports.values())

    def test_blocked_port_absorbs_data_frames(self):
        kernel, bridge, ports, peers = make_bridge_host()
        kernel.set_bridge_attrs("br0", stp=True)
        bridge.ports[ports[0].ifindex].state = STP_BLOCKING
        rx = [capture(p) for p in peers]
        frame = make_udp("02:aa:00:00:00:01", "ff:ff:ff:ff:ff:ff", "10.0.0.1", "10.0.0.2")
        peers[0].transmit(frame.to_bytes())
        assert len(rx[1]) == 0 and len(rx[2]) == 0
