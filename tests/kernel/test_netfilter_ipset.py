"""Tests for netfilter (iptables) and ipset."""

import pytest

from repro.kernel import Kernel
from repro.kernel.ipset import IpSet, IpsetError, IpsetRegistry
from repro.kernel.netfilter import ACCEPT, DROP, FORWARD, NetfilterError, RETURN, Rule
from repro.netsim.addresses import IPv4Prefix, MacAddr
from repro.netsim.packet import IPPROTO_TCP, IPPROTO_UDP, make_tcp, make_udp
from repro.netsim.skbuff import SKBuff

MAC1 = MacAddr.parse("02:00:00:00:00:01")
MAC2 = MacAddr.parse("02:00:00:00:00:02")


def udp_skb(src="10.0.0.1", dst="10.0.1.1", sport=100, dport=200):
    return SKBuff(pkt=make_udp(MAC1, MAC2, src, dst, sport=sport, dport=dport))


def tcp_skb(src="10.0.0.1", dst="10.0.1.1", sport=100, dport=80):
    return SKBuff(pkt=make_tcp(MAC1, MAC2, src, dst, sport=sport, dport=dport))


@pytest.fixture
def kernel():
    return Kernel("nf-test")


class TestRuleMatching:
    def test_src_prefix(self, kernel):
        rule = Rule(target=DROP, src=IPv4Prefix.parse("10.0.0.0/24"))
        assert rule.matches(udp_skb().pkt.ip, udp_skb(), None, None, kernel.ipsets)
        assert not rule.matches(udp_skb(src="10.9.0.1").pkt.ip, udp_skb(src="10.9.0.1"), None, None, kernel.ipsets)

    def test_dst_prefix(self, kernel):
        rule = Rule(target=DROP, dst=IPv4Prefix.parse("10.0.1.0/24"))
        skb = udp_skb()
        assert rule.matches(skb.pkt.ip, skb, None, None, kernel.ipsets)

    def test_proto(self, kernel):
        rule = Rule(target=DROP, proto=IPPROTO_TCP)
        skb = tcp_skb()
        assert rule.matches(skb.pkt.ip, skb, None, None, kernel.ipsets)
        skb = udp_skb()
        assert not rule.matches(skb.pkt.ip, skb, None, None, kernel.ipsets)

    def test_ports(self, kernel):
        rule = Rule(target=DROP, dport=80)
        skb = tcp_skb(dport=80)
        assert rule.matches(skb.pkt.ip, skb, None, None, kernel.ipsets)
        skb = tcp_skb(dport=443)
        assert not rule.matches(skb.pkt.ip, skb, None, None, kernel.ipsets)

    def test_port_match_requires_l4(self, kernel):
        from repro.netsim.packet import ICMP, IPv4, Ethernet, Packet

        rule = Rule(target=DROP, dport=80)
        pkt = Packet(
            eth=Ethernet(MAC2, MAC1, 0x0800),
            ip=IPv4(src=udp_skb().pkt.ip.src, dst=udp_skb().pkt.ip.dst, proto=1),
            l4=ICMP(8),
        )
        skb = SKBuff(pkt=pkt)
        assert not rule.matches(pkt.ip, skb, None, None, kernel.ipsets)

    def test_interfaces(self, kernel):
        rule = Rule(target=DROP, in_iface="eth0", out_iface="eth1")
        skb = udp_skb()
        assert rule.matches(skb.pkt.ip, skb, "eth0", "eth1", kernel.ipsets)
        assert not rule.matches(skb.pkt.ip, skb, "eth2", "eth1", kernel.ipsets)

    def test_ipset_match(self, kernel):
        kernel.ipset_create("bad", "hash:ip")
        kernel.ipset_add("bad", "10.0.0.1")
        rule = Rule(target=DROP, match_set="bad", set_dir="src")
        skb = udp_skb(src="10.0.0.1")
        assert rule.matches(skb.pkt.ip, skb, None, None, kernel.ipsets)
        skb = udp_skb(src="10.0.0.2")
        assert not rule.matches(skb.pkt.ip, skb, None, None, kernel.ipsets)

    def test_missing_ipset_never_matches(self, kernel):
        rule = Rule(target=DROP, match_set="ghost")
        skb = udp_skb()
        assert not rule.matches(skb.pkt.ip, skb, None, None, kernel.ipsets)

    def test_bad_target_rejected(self):
        with pytest.raises(NetfilterError):
            Rule(target="REJECTED")

    def test_bad_set_dir_rejected(self):
        with pytest.raises(NetfilterError):
            Rule(target=DROP, set_dir="both")


class TestChainEvaluation:
    def test_first_match_wins(self, kernel):
        kernel.netfilter.append_rule(FORWARD, Rule(target=ACCEPT, src=IPv4Prefix.parse("10.0.0.0/24")))
        kernel.netfilter.append_rule(FORWARD, Rule(target=DROP))
        verdict, scanned = kernel.netfilter.evaluate(FORWARD, udp_skb())
        assert verdict == ACCEPT and scanned == 1

    def test_policy_when_no_match(self, kernel):
        kernel.netfilter.set_policy(FORWARD, DROP)
        verdict, __ = kernel.netfilter.evaluate(FORWARD, udp_skb())
        assert verdict == DROP

    def test_linear_scan_counts_rules(self, kernel):
        for i in range(100):
            kernel.netfilter.append_rule(FORWARD, Rule(target=DROP, src=IPv4Prefix.parse(f"172.16.{i}.0/24")))
        verdict, scanned = kernel.netfilter.evaluate(FORWARD, udp_skb())
        assert verdict == ACCEPT and scanned == 100

    def test_linear_scan_charges_per_rule_cost(self, kernel):
        """Fig 8's premise: evaluation cost grows linearly in rule count."""
        for i in range(100):
            kernel.netfilter.append_rule(FORWARD, Rule(target=DROP, src=IPv4Prefix.parse(f"172.16.{i}.0/24")))
        t0 = kernel.clock.now_ns
        kernel.netfilter.evaluate(FORWARD, udp_skb())
        long_cost = kernel.clock.now_ns - t0
        kernel.netfilter.flush(FORWARD)
        t0 = kernel.clock.now_ns
        kernel.netfilter.evaluate(FORWARD, udp_skb())
        short_cost = kernel.clock.now_ns - t0
        assert long_cost - short_cost == pytest.approx(100 * kernel.costs.nf_rule_cost, abs=2)

    def test_return_falls_through_to_policy(self, kernel):
        kernel.netfilter.append_rule(FORWARD, Rule(target=RETURN, src=IPv4Prefix.parse("10.0.0.0/24")))
        kernel.netfilter.append_rule(FORWARD, Rule(target=DROP))
        kernel.netfilter.set_policy(FORWARD, ACCEPT)
        verdict, __ = kernel.netfilter.evaluate(FORWARD, udp_skb())
        assert verdict == ACCEPT

    def test_rule_packet_counters(self, kernel):
        rule = kernel.netfilter.append_rule(FORWARD, Rule(target=DROP, src=IPv4Prefix.parse("10.0.0.0/24")))
        kernel.netfilter.evaluate(FORWARD, udp_skb())
        kernel.netfilter.evaluate(FORWARD, udp_skb())
        assert rule.packets == 2

    def test_insert_at_head(self, kernel):
        kernel.netfilter.append_rule(FORWARD, Rule(target=ACCEPT))
        kernel.netfilter.insert_rule(FORWARD, Rule(target=DROP))
        verdict, __ = kernel.netfilter.evaluate(FORWARD, udp_skb())
        assert verdict == DROP

    def test_delete_by_handle(self, kernel):
        rule = kernel.netfilter.append_rule(FORWARD, Rule(target=DROP))
        kernel.netfilter.delete_rule(FORWARD, rule.handle)
        assert kernel.netfilter.rule_count(FORWARD) == 0
        with pytest.raises(NetfilterError):
            kernel.netfilter.delete_rule(FORWARD, rule.handle)

    def test_non_ip_accepted_unscanned(self, kernel):
        from repro.netsim.packet import make_arp_request

        kernel.netfilter.append_rule(FORWARD, Rule(target=DROP))
        skb = SKBuff(pkt=make_arp_request(MAC1, "10.0.0.1", "10.0.0.2"))
        verdict, scanned = kernel.netfilter.evaluate(FORWARD, skb)
        assert verdict == ACCEPT and scanned == 0

    def test_unknown_chain_rejected(self, kernel):
        with pytest.raises(NetfilterError):
            kernel.netfilter.evaluate("PREROUTING", udp_skb())


class TestIpset:
    def test_hash_ip_membership(self):
        s = IpSet("bl", "hash:ip")
        s.add("10.0.0.1")
        assert s.test("10.0.0.1") and not s.test("10.0.0.2")

    def test_hash_ip_rejects_prefix(self):
        with pytest.raises(IpsetError):
            IpSet("bl", "hash:ip").add("10.0.0.0", prefixlen=24)

    def test_hash_net_membership(self):
        s = IpSet("nets", "hash:net")
        s.add("10.1.0.0", prefixlen=16)
        s.add("192.168.3.0", prefixlen=24)
        assert s.test("10.1.200.5")
        assert s.test("192.168.3.7")
        assert not s.test("192.168.4.7")

    def test_remove(self):
        s = IpSet("bl", "hash:ip")
        s.add("10.0.0.1")
        s.remove("10.0.0.1")
        assert not s.test("10.0.0.1") and len(s) == 0

    def test_entries_sorted(self):
        s = IpSet("bl", "hash:ip")
        s.add("10.0.0.2")
        s.add("10.0.0.1")
        assert [str(ip) for ip, __ in s.entries()] == ["10.0.0.1", "10.0.0.2"]

    def test_registry_lifecycle(self):
        reg = IpsetRegistry()
        reg.create("a", "hash:ip")
        with pytest.raises(IpsetError):
            reg.create("a", "hash:ip")
        assert reg.names() == ["a"]
        reg.destroy("a")
        with pytest.raises(IpsetError):
            reg.destroy("a")
        with pytest.raises(IpsetError):
            reg.require("a")

    def test_unsupported_type_rejected(self):
        with pytest.raises(IpsetError):
            IpSet("x", "list:set")

    def test_paper_blacklist_aggregation(self, kernel):
        """The gateway experiment: 100 blacklisted IPs in one ipset rule."""
        kernel.ipset_create("blacklist", "hash:ip")
        for i in range(100):
            kernel.ipset_add("blacklist", f"172.16.{i // 256}.{i % 256}")
        kernel.ipt_append(FORWARD, Rule(target=DROP, match_set="blacklist", set_dir="src"))
        blocked = udp_skb(src="172.16.0.5")
        verdict, scanned = kernel.netfilter.evaluate(FORWARD, blocked)
        assert verdict == DROP and scanned == 1
        allowed = udp_skb(src="10.0.0.1")
        verdict, scanned = kernel.netfilter.evaluate(FORWARD, allowed)
        assert verdict == ACCEPT and scanned == 1
