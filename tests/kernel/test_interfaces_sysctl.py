"""Tests for net devices, the device table, and sysctl."""

import pytest

from repro.kernel import Kernel
from repro.kernel.interfaces import DeviceError, LoopbackDevice, PhysicalDevice, VethDevice
from repro.kernel.sysctl import Sysctl, SysctlError
from repro.netsim.addresses import IfAddr, IPv4Addr, MacAddr
from repro.netsim.packet import make_udp


@pytest.fixture
def kernel():
    return Kernel("dev-test")


class TestDeviceTable:
    def test_loopback_preinstalled(self, kernel):
        lo = kernel.devices.by_name("lo")
        assert isinstance(lo, LoopbackDevice)
        assert lo.up and lo.has_address(IPv4Addr.parse("127.0.0.1"))

    def test_ifindex_allocation_monotonic(self, kernel):
        a = kernel.add_physical("eth0")
        b = kernel.add_physical("eth1")
        assert b.ifindex == a.ifindex + 1

    def test_unique_names(self, kernel):
        kernel.add_physical("eth0")
        with pytest.raises(DeviceError):
            kernel.add_physical("eth0")

    def test_unique_macs_within_kernel(self, kernel):
        macs = {kernel.add_physical(f"eth{i}").mac for i in range(10)}
        assert len(macs) == 10

    def test_unique_macs_across_kernels(self):
        a, b = Kernel("a"), Kernel("b")
        assert a.add_physical("eth0").mac != b.add_physical("eth0").mac

    def test_by_index_and_name(self, kernel):
        dev = kernel.add_physical("eth0")
        assert kernel.devices.by_index(dev.ifindex) is dev
        assert kernel.devices.by_name("eth0") is dev
        with pytest.raises(DeviceError):
            kernel.devices.by_index(999)
        with pytest.raises(DeviceError):
            kernel.devices.by_name("ghost")
        assert kernel.devices.get("ghost") is None

    def test_del_device_cleans_state(self, kernel):
        dev = kernel.add_physical("eth0")
        kernel.set_link("eth0", True)
        kernel.add_address("eth0", "10.0.0.1/24")
        kernel.neigh_add("eth0", "10.0.0.2", MacAddr.parse("02:aa:00:00:00:01"))
        kernel.del_device("eth0")
        assert "eth0" not in kernel.devices
        assert kernel.fib.lookup("10.0.0.9") is None
        assert kernel.neighbors.resolved(dev.ifindex, "10.0.0.2") is None

    def test_link_down_flushes_routes(self, kernel):
        kernel.add_physical("eth0")
        kernel.set_link("eth0", True)
        kernel.add_address("eth0", "10.0.0.1/24")
        assert kernel.fib.lookup("10.0.0.9") is not None
        kernel.set_link("eth0", False)
        assert kernel.fib.lookup("10.0.0.9") is None


class TestAddresses:
    def test_interface_address_keeps_host_part(self, kernel):
        kernel.add_physical("eth0")
        addr = kernel.add_address("eth0", "10.1.2.3/24")
        assert str(addr) == "10.1.2.3/24"
        assert str(addr.network) == "10.1.2.0/24"
        route = kernel.fib.lookup("10.1.2.200")
        assert route is not None and route.gateway is None  # connected

    def test_duplicate_address_rejected(self, kernel):
        kernel.add_physical("eth0")
        kernel.add_address("eth0", "10.0.0.1/24")
        with pytest.raises(DeviceError):
            kernel.add_address("eth0", "10.0.0.1/24")

    def test_host_address_no_connected_route(self, kernel):
        kernel.add_physical("eth0")
        kernel.add_address("eth0", "10.0.0.1/32")
        assert kernel.fib.lookup("10.0.0.2") is None

    def test_del_address_removes_connected_route(self, kernel):
        kernel.add_physical("eth0")
        kernel.add_address("eth0", "10.0.0.1/24")
        kernel.del_address("eth0", "10.0.0.1")
        assert kernel.fib.lookup("10.0.0.9") is None

    def test_remove_missing_address_rejected(self, kernel):
        dev = kernel.add_physical("eth0")
        with pytest.raises(DeviceError):
            dev.remove_address(IPv4Addr.parse("9.9.9.9"))


class TestVeth:
    def test_pair_transmit(self, kernel):
        a, b = kernel.add_veth_pair("va", "vb")
        kernel.set_link("va", True)
        kernel.set_link("vb", True)
        got = []
        b.deliver = lambda frame, queue=0: got.append(frame)
        a.transmit(b"hello")
        assert got == [b"hello"]

    def test_down_peer_drops(self, kernel):
        a, b = kernel.add_veth_pair("va", "vb")
        kernel.set_link("va", True)
        a.transmit(b"dropped")
        assert a.dropped == 1

    def test_cross_kernel_pair(self):
        host, pod = Kernel("host"), Kernel("pod")
        # share a clock so costs land consistently
        pod.clock = host.clock
        a, b = host.add_veth_pair("va", "eth0", peer_kernel=pod)
        assert b.kernel is pod
        assert "eth0" in pod.devices and "va" in host.devices

    def test_double_pairing_rejected(self, kernel):
        a, b = kernel.add_veth_pair("va", "vb")
        c = VethDevice(kernel, kernel.devices.next_ifindex(), "vc", kernel.devices.allocate_mac())
        with pytest.raises(DeviceError):
            a.connect(c)

    def test_veth_crossing_charges_cost(self, kernel):
        a, b = kernel.add_veth_pair("va", "vb")
        kernel.set_link("va", True)
        kernel.set_link("vb", True)
        b.deliver = lambda frame, queue=0: None
        t0 = kernel.clock.now_ns
        a.transmit(b"x")
        assert kernel.clock.now_ns - t0 == pytest.approx(kernel.costs.veth_xmit, abs=1)


class TestSysctl:
    def test_defaults(self):
        sysctl = Sysctl()
        assert sysctl.get("net.ipv4.ip_forward") == "0"
        assert not sysctl.get_bool("net.ipv4.ip_forward")

    def test_set_and_listeners(self):
        sysctl = Sysctl()
        seen = []
        sysctl.add_listener(lambda name, value: seen.append((name, value)))
        sysctl.set("net.ipv4.ip_forward", "1")
        assert sysctl.get_bool("net.ipv4.ip_forward")
        assert seen == [("net.ipv4.ip_forward", "1")]

    def test_idempotent_set_no_notification(self):
        sysctl = Sysctl()
        seen = []
        sysctl.add_listener(lambda name, value: seen.append(name))
        sysctl.set("net.ipv4.ip_forward", "0")  # already 0
        assert seen == []

    def test_unknown_key_rejected(self):
        sysctl = Sysctl()
        with pytest.raises(SysctlError):
            sysctl.get("net.made.up")
        with pytest.raises(SysctlError):
            sysctl.set("net.made.up", "1")

    def test_kernel_sysctl_notifies_bus(self, kernel):
        socket = kernel.bus.open_socket()
        socket.subscribe("sysctl")
        kernel.sysctl_set("net.ipv4.ip_forward", "1")
        note = socket.recv()
        assert note.attrs == {"name": "net.ipv4.ip_forward", "value": "1"}
