"""RPS flow steering: flow→CPU affinity and per-flow ordering.

The Hypothesis property is the invariant the sharded conntrack and per-CPU
flow cache rely on: for any packet stream, every packet of one flow — in
*both* directions — is processed on exactly one CPU, and per-flow packet
order is preserved end to end.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.measure.topology import LineTopology
from repro.netsim.packet import make_arp_request, make_udp

NUM_PREFIXES = 8


def build(num_queues=4):
    topo = LineTopology(num_queues=num_queues)
    topo.install_prefixes(NUM_PREFIXES)
    topo.prewarm_neighbors()
    delivered = []
    topo.sink_eth.nic.attach(lambda frame, q: delivered.append(frame))
    return topo, delivered


def record_processing_cpu(topo):
    """Wrap the DUT stack so each received frame logs its executing CPU."""
    log = []
    original = topo.dut.stack.receive

    def spy(dev, frame, queue=0):
        log.append((bytes(frame), topo.dut.cpus.current_cpu))
        return original(dev, frame, queue)

    topo.dut.stack.receive = spy
    return log


def forward_frame(topo, flow, seq=0):
    return make_udp(
        topo.src_eth.mac, topo.dut_in.mac, "10.0.1.2",
        topo.flow_destination(flow, NUM_PREFIXES),
        sport=1024 + flow, dport=9, ttl=16,
        payload=seq.to_bytes(4, "big"),
    ).to_bytes()


def reverse_frame(topo, flow):
    """The same flow seen from the sink side (reply direction)."""
    return make_udp(
        topo.sink_eth.mac, topo.dut_out.mac,
        topo.flow_destination(flow, NUM_PREFIXES), "10.0.1.2",
        sport=9, dport=1024 + flow, ttl=16,
    ).to_bytes()


class TestSteering:
    def test_single_cpu_kernel_runs_everything_on_cpu_zero(self):
        topo, delivered = build(num_queues=1)
        log = record_processing_cpu(topo)
        for flow in range(8):
            topo.dut_in.nic.receive_from_wire(forward_frame(topo, flow))
        assert [cpu for _, cpu in log] == [0] * 8
        assert topo.dut.softirq.rps_steered == 0
        assert len(delivered) == 8

    def test_flows_spread_across_cpus(self):
        topo, _ = build(num_queues=4)
        log = record_processing_cpu(topo)
        for flow in range(64):
            topo.dut_in.nic.receive_from_wire(forward_frame(topo, flow))
        assert {cpu for _, cpu in log} == {0, 1, 2, 3}
        assert sum(topo.dut.cpus.packets) == 64
        assert all(p > 0 for p in topo.dut.cpus.packets)

    def test_both_directions_of_a_flow_share_a_cpu(self):
        topo, _ = build(num_queues=4)
        log = record_processing_cpu(topo)
        for flow in range(16):
            topo.dut_in.nic.receive_from_wire(forward_frame(topo, flow))
            topo.dut_out.nic.receive_from_wire(reverse_frame(topo, flow))
        by_frame = dict(log)
        for flow in range(16):
            fwd_cpu = by_frame[forward_frame(topo, flow)]
            rev_cpu = by_frame[reverse_frame(topo, flow)]
            assert fwd_cpu == rev_cpu, f"flow {flow} split across CPUs"

    def test_unkeyable_frames_stay_on_the_rx_queue_cpu(self):
        topo, _ = build(num_queues=4)
        log = record_processing_cpu(topo)
        steered_before = topo.dut.softirq.rps_steered
        arp = make_arp_request(topo.src_eth.mac, "10.0.1.2", "10.0.1.1").to_bytes()
        queue = topo.dut_in.nic.rss_queue(arp)
        topo.dut_in.nic.receive_from_wire(arp)
        assert log[-1][1] == queue % topo.dut.cpus.num_cpus
        assert topo.dut.softirq.rps_steered == steered_before

    def test_cross_steer_pays_the_ipi_cost(self):
        topo, _ = build(num_queues=4)
        kernel = topo.dut
        # find a frame whose RPS target differs from its RX-queue CPU
        for flow in range(256):
            frame = forward_frame(topo, flow)
            queue = topo.dut_in.nic.rss_queue(frame)
            rx_cpu = queue % kernel.cpus.num_cpus
            target = kernel.softirq.steer(frame, rx_cpu)
            if target != rx_cpu:
                break
        else:  # pragma: no cover - population always has cross-steers
            raise AssertionError("no cross-steered flow found")
        kernel.cpus.reset_busy()
        steered_before = kernel.softirq.rps_steered
        topo.dut_in.nic.receive_from_wire(frame)
        assert kernel.softirq.rps_steered == steered_before + 1
        overhead = kernel.costs.rss_hash + kernel.costs.rps_steer + kernel.costs.rps_ipi
        assert kernel.cpus.busy_ns[rx_cpu] >= overhead
        assert kernel.cpus.busy_ns[target] > 0  # the real work landed there

    def test_nested_delivery_stays_inline_on_the_current_cpu(self):
        topo, delivered = build(num_queues=4)
        log = record_processing_cpu(topo)
        frame = forward_frame(topo, 0)
        with topo.dut.cpus.on(2):  # mid-softirq re-injection (veth/decap)
            topo.dut.softirq.rx(topo.dut.devices.by_name("eth0"), frame)
        assert topo.dut.softirq.nested_rx == 1
        assert log[-1] == (frame, 2)  # no re-steer, no recursion
        assert len(delivered) == 1


stream = st.lists(
    st.tuples(st.integers(0, 11), st.booleans()),  # (flow, reverse?)
    min_size=1, max_size=60,
)


class TestSteeringProperty:
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(ops=stream, num_queues=st.sampled_from([2, 4, 8]))
    def test_flow_affinity_and_order_for_any_stream(self, ops, num_queues):
        topo, delivered = build(num_queues=num_queues)
        log = record_processing_cpu(topo)
        seq = {}
        for flow, reverse in ops:
            if reverse:
                topo.dut_out.nic.receive_from_wire(reverse_frame(topo, flow))
            else:
                n = seq[flow] = seq.get(flow, 0) + 1
                topo.dut_in.nic.receive_from_wire(forward_frame(topo, flow, seq=n))

        # 1. all packets of a flow (both directions) on exactly one CPU
        flow_cpu = {}
        for (frame, cpu), (flow, reverse) in zip(log, ops):
            assert cpu is not None
            assert flow_cpu.setdefault(flow, cpu) == cpu

        # 2. per-flow order preserved at the sink (sequence in the payload)
        seen = {}
        for frame in delivered:
            sport = (frame[34] << 8) | frame[35]
            if sport < 1024:
                continue  # reply direction carries no sequence
            flow, n = sport - 1024, int.from_bytes(frame[42:46], "big")
            assert n > seen.get(flow, 0), f"flow {flow} reordered"
            seen[flow] = n

        # 3. every forward packet arrived (no loss in steering); reverse
        # packets exit toward the source and are not in the sink's log
        assert len(delivered) == sum(1 for _, reverse in ops if not reverse)
