"""Tests for NAPI-budget batched backlog draining.

Covers the budget bound, same-(dev, queue) run coalescing, per-CPU FIFO
ordering, the ``LINUXFP_NO_BATCH`` kill switch, the conservative fallbacks
that route a batch back through per-frame ``receive()``, and overflow
accounting under burst arrival.
"""

import pytest

from repro.kernel import Kernel
from repro.kernel.softirq import NAPI_BUDGET, batching_env_default
from repro.netsim.packet import make_udp


def udp_frame(i, dport=9):
    return make_udp(
        "02:00:00:00:00:01", "02:00:00:00:00:02",
        "10.0.1.2", f"10.100.0.{1 + (i % 200)}", sport=1024 + i, dport=dport,
    ).to_bytes()


@pytest.fixture
def kernel(monkeypatch):
    # hermetic: an ambient kill switch must not disable what we assert on
    monkeypatch.delenv("LINUXFP_NO_BATCH", raising=False)
    k = Kernel("batch-test", num_cores=2)
    k.add_physical("eth0")
    return k


class Recorder:
    """Monkeypatch target capturing how the stack was invoked."""

    def __init__(self, stack):
        self.calls = []  # ("single"|"batch", dev.name, n, queue)
        self.frames = []  # flattened arrival order
        self._stack = stack

    def receive(self, dev, frame, queue=0):
        self.calls.append(("single", dev.name, 1, queue))
        self.frames.append(frame)

    def receive_batch(self, dev, frames, queue=0):
        self.calls.append(("batch", dev.name, len(frames), queue))
        self.frames.extend(frames)


def record(kernel, monkeypatch):
    rec = Recorder(kernel.stack)
    monkeypatch.setattr(kernel.stack, "receive", rec.receive)
    monkeypatch.setattr(kernel.stack, "receive_batch", rec.receive_batch)
    return rec


class TestEnvDefault:
    def test_on_by_default(self, monkeypatch):
        monkeypatch.delenv("LINUXFP_NO_BATCH", raising=False)
        assert batching_env_default() is True

    def test_kill_switch(self, monkeypatch):
        monkeypatch.setenv("LINUXFP_NO_BATCH", "1")
        assert batching_env_default() is False
        monkeypatch.setenv("LINUXFP_NO_BATCH", "off")
        assert batching_env_default() is True


class TestDrain:
    def test_run_coalescing_same_dev_queue(self, kernel, monkeypatch):
        dev = kernel.devices.by_name("eth0")
        rec = record(kernel, monkeypatch)
        frames = [udp_frame(0) for _ in range(8)]  # one flow -> one CPU
        for frame in frames:
            kernel.softirq.backlogs[0].append((dev, frame, 0))
        kernel.softirq.process_backlogs()
        assert rec.calls == [("batch", "eth0", 8, 0)]
        assert rec.frames == frames

    def test_napi_budget_bounds_batch_size(self, kernel, monkeypatch):
        dev = kernel.devices.by_name("eth0")
        rec = record(kernel, monkeypatch)
        n = NAPI_BUDGET + 10
        for _ in range(n):
            kernel.softirq.backlogs[0].append((dev, udp_frame(0), 0))
        kernel.softirq.process_backlogs()
        sizes = [c[2] for c in rec.calls]
        assert max(sizes) == NAPI_BUDGET
        assert sum(sizes) == n

    def test_queue_change_breaks_run(self, kernel, monkeypatch):
        dev = kernel.devices.by_name("eth0")
        rec = record(kernel, monkeypatch)
        backlog = kernel.softirq.backlogs[0]
        for queue in (0, 0, 1, 1, 1, 0):
            backlog.append((dev, udp_frame(0), queue))
        kernel.softirq.process_backlogs()
        assert rec.calls == [
            ("batch", "eth0", 2, 0),
            ("batch", "eth0", 3, 1),
            ("single", "eth0", 1, 0),
        ]

    def test_device_change_breaks_run(self, kernel, monkeypatch):
        eth0 = kernel.devices.by_name("eth0")
        eth1 = kernel.add_physical("eth1")
        rec = record(kernel, monkeypatch)
        backlog = kernel.softirq.backlogs[0]
        for dev in (eth0, eth0, eth1, eth0):
            backlog.append((dev, udp_frame(0), 0))
        kernel.softirq.process_backlogs()
        assert rec.calls == [
            ("batch", "eth0", 2, 0),
            ("single", "eth1", 1, 0),
            ("single", "eth0", 1, 0),
        ]

    def test_per_cpu_fifo_order_preserved(self, kernel, monkeypatch):
        dev = kernel.devices.by_name("eth0")
        rec = record(kernel, monkeypatch)
        frames = [udp_frame(i) for i in range(12)]
        for frame in frames:
            kernel.softirq.backlogs[1].append((dev, frame, 0))
        kernel.softirq.process_backlogs()
        assert rec.frames == frames

    def test_kill_switch_drains_per_frame(self, kernel, monkeypatch):
        dev = kernel.devices.by_name("eth0")
        kernel.softirq.batching = False
        rec = record(kernel, monkeypatch)
        for _ in range(5):
            kernel.softirq.backlogs[0].append((dev, udp_frame(0), 0))
        kernel.softirq.process_backlogs()
        assert all(kind == "single" for kind, *_ in rec.calls)
        assert len(rec.calls) == 5

    def test_packets_counter_attributes_batch(self, kernel):
        dev = kernel.devices.by_name("eth0")
        for _ in range(6):
            kernel.softirq.backlogs[0].append((dev, udp_frame(0), 0))
        before = kernel.cpus.packets[0]
        kernel.softirq.process_backlogs()
        assert kernel.cpus.packets[0] - before == 6


class TestReceiveBatchFallbacks:
    """receive_batch must route back through per-frame receive() whenever
    per-frame machinery (hooks, tracing, flow cache) is live."""

    def _count_singles(self, kernel, monkeypatch):
        calls = {"n": 0}
        original = kernel.stack.receive

        def counting(dev, frame, queue=0):
            calls["n"] += 1
            return original(dev, frame, queue)

        monkeypatch.setattr(kernel.stack, "receive", counting)
        return calls

    def test_no_xdp_prog_falls_back(self, kernel, monkeypatch):
        dev = kernel.devices.by_name("eth0")
        calls = self._count_singles(kernel, monkeypatch)
        kernel.stack.receive_batch(dev, [udp_frame(i) for i in range(3)])
        assert calls["n"] == 3

    def test_armed_tracer_falls_back(self, kernel, monkeypatch):
        from repro.observability.tracer import TraceFilter

        dev = kernel.devices.by_name("eth0")
        kernel.observability.tracer.arm(TraceFilter(), capacity=16)
        calls = self._count_singles(kernel, monkeypatch)
        kernel.stack.receive_batch(dev, [udp_frame(i) for i in range(2)])
        assert calls["n"] == 2

    def test_ledger_balances_after_batched_rx(self, kernel):
        dev = kernel.devices.by_name("eth0")
        frames = [udp_frame(i) for i in range(20)]
        kernel.softirq.rx_burst(dev, [(f, 0) for f in frames])
        stack = kernel.stack
        assert stack.rx_packets == 20
        assert stack.rx_packets + stack.tx_local_packets == (
            stack.settled + stack.pending_packets()
        )


class TestOverflow:
    def test_burst_overflow_accounted_with_batching(self, kernel):
        kernel.sysctl.set("net.core.netdev_max_backlog", "8")
        dev = kernel.devices.by_name("eth0")
        frames = [(udp_frame(0), 0) for _ in range(20)]  # one flow, one CPU
        queued = kernel.softirq.rx_burst(dev, frames)
        assert queued == 8
        assert sum(kernel.softirq.backlog_drops) == 12
        stack = kernel.stack
        assert stack.rx_packets == 20
        assert stack.rx_packets + stack.tx_local_packets == (
            stack.settled + stack.pending_packets()
        )
