"""STP behavior on multi-bridge topologies."""

import pytest

from repro.kernel import Kernel
from repro.kernel.bridge import STP_BLOCKING, STP_FORWARDING, stp_converge
from repro.netsim.packet import make_udp


def link(kernel, name_a, bridge_a, name_b, bridge_b):
    kernel.add_veth_pair(name_a, name_b)
    kernel.set_link(name_a, True)
    kernel.set_link(name_b, True)
    kernel.enslave(name_a, bridge_a)
    kernel.enslave(name_b, bridge_b)


def make_triangle():
    """Three bridges joined pairwise — one physical loop."""
    kernel = Kernel("stp-triangle")
    bridges = []
    for i in range(3):
        kernel.add_bridge(f"br{i}")
        kernel.set_link(f"br{i}", True)
        kernel.set_bridge_attrs(f"br{i}", stp=True)
        bridges.append(kernel.devices.by_name(f"br{i}").bridge)
    link(kernel, "l01a", "br0", "l01b", "br1")
    link(kernel, "l12a", "br1", "l12b", "br2")
    link(kernel, "l20a", "br2", "l20b", "br0")
    return kernel, bridges


class TestStpTriangle:
    def test_single_root_elected(self):
        kernel, bridges = make_triangle()
        stp_converge(bridges, rounds=6)
        roots = {b.root_id for b in bridges}
        assert len(roots) == 1
        assert roots == {min(b.bridge_id for b in bridges)}

    def test_exactly_one_port_blocked(self):
        """Breaking one loop requires blocking exactly one port."""
        kernel, bridges = make_triangle()
        stp_converge(bridges, rounds=6)
        states = [port.state for bridge in bridges for port in bridge.ports.values()]
        assert states.count(STP_BLOCKING) == 1
        assert states.count(STP_FORWARDING) == len(states) - 1

    def test_root_bridge_all_forwarding(self):
        kernel, bridges = make_triangle()
        stp_converge(bridges, rounds=6)
        root = min(bridges, key=lambda b: b.bridge_id)
        assert all(p.state == STP_FORWARDING for p in root.ports.values())

    def test_no_broadcast_storm_after_convergence(self):
        """A broadcast injected into the converged triangle terminates."""
        kernel, bridges = make_triangle()
        stp_converge(bridges, rounds=6)
        # attach a host port to br0 and count copies arriving on a br2 host
        kernel.add_veth_pair("h0", "h0p")
        kernel.add_veth_pair("h2", "h2p")
        for name in ("h0", "h0p", "h2", "h2p"):
            kernel.set_link(name, True)
        kernel.enslave("h0", "br0")
        kernel.enslave("h2", "br2")
        received = []
        kernel.devices.by_name("h2p").deliver = lambda frame, queue=0: received.append(frame)
        bcast = make_udp("02:aa:00:00:00:01", "ff:ff:ff:ff:ff:ff", "10.0.0.1", "10.0.0.255")
        kernel.devices.by_name("h0p").transmit(bcast.to_bytes())
        # exactly one copy: the loop is broken (a storm would recurse forever
        # before Python's recursion limit killed the test)
        assert len(received) == 1

    def test_stp_disabled_would_loop(self):
        """Sanity: without STP the same triangle floods in a loop (bounded
        here only by Python's recursion limit — so we verify indirectly via
        a hop-limited probe)."""
        kernel, bridges = make_triangle()
        for bridge in bridges:
            bridge.stp_enabled = False
            for port in bridge.ports.values():
                port.state = STP_FORWARDING
        # every port forwarding + full loop = broadcast would cycle; the
        # absence of any blocked port is the hazard STP removes
        states = [p.state for b in bridges for p in b.ports.values()]
        assert STP_BLOCKING not in states
