"""Tests for IP fragmentation/reassembly and housekeeping."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernel import Kernel
from repro.kernel.fragments import REASSEMBLY_TIMEOUT_NS, Reassembler, fragment
from repro.kernel.sockets import udp_echo_server
from repro.measure.topology import LineTopology
from repro.netsim.clock import Clock
from repro.netsim.packet import IPPROTO_UDP, Packet, make_udp

MAC_A = "02:00:00:00:00:01"
MAC_B = "02:00:00:00:00:02"


def big_udp(payload_len, ident=7):
    pkt = make_udp(MAC_A, MAC_B, "10.0.1.2", "10.0.1.1", dport=7, payload=bytes(range(256)) * (payload_len // 256 + 1))
    pkt.payload = pkt.payload[:payload_len]
    pkt.ip.ident = ident
    return pkt


class TestFragmentFunction:
    def test_small_packet_untouched(self):
        pkt = big_udp(100)
        assert fragment(pkt, mtu=1500) == [pkt]

    def test_fragments_cover_payload(self):
        pkt = big_udp(3000)
        pieces = fragment(pkt, mtu=1500)
        assert len(pieces) >= 3
        assert pieces[0].ip.frag_offset == 0 and pieces[0].ip.more_fragments
        assert not pieces[-1].ip.more_fragments
        # offsets are 8-byte aligned and contiguous
        seen = 0
        for piece in pieces:
            assert piece.ip.frag_offset * 8 == seen
            seen += len(piece.payload)

    def test_df_prevents_fragmentation(self):
        pkt = big_udp(3000)
        pkt.ip.flags = 0x2  # DF
        assert fragment(pkt, mtu=1500) == []

    @settings(max_examples=25, deadline=None)
    @given(size=st.integers(min_value=1, max_value=6000), mtu=st.sampled_from([576, 1000, 1500]))
    def test_fragment_reassemble_round_trip(self, size, mtu):
        clock = Clock()
        reassembler = Reassembler(clock)
        pkt = big_udp(size)
        original = pkt.to_bytes()
        pieces = fragment(pkt, mtu=mtu)
        whole = None
        for piece in pieces:
            result = reassembler.push(Packet.from_bytes(piece.to_bytes()))
            if result is not None:
                whole = result
        assert whole is not None
        # IP payload identical (MACs/ident preserved; checksum recomputed)
        assert whole.to_bytes()[14:] == original[14:]

    def test_out_of_order_reassembly(self):
        clock = Clock()
        reassembler = Reassembler(clock)
        pieces = fragment(big_udp(4000), mtu=1000)
        results = [reassembler.push(Packet.from_bytes(p.to_bytes())) for p in reversed(pieces)]
        assert sum(1 for r in results if r is not None) == 1

    def test_interleaved_flows(self):
        clock = Clock()
        reassembler = Reassembler(clock)
        a = fragment(big_udp(2500, ident=1), mtu=1000)
        b = fragment(big_udp(2500, ident=2), mtu=1000)
        done = 0
        for pa, pb in zip(a, b):
            done += reassembler.push(Packet.from_bytes(pa.to_bytes())) is not None
            done += reassembler.push(Packet.from_bytes(pb.to_bytes())) is not None
        assert done == 2

    def test_timeout_gc(self):
        clock = Clock()
        reassembler = Reassembler(clock)
        pieces = fragment(big_udp(3000), mtu=1000)
        reassembler.push(Packet.from_bytes(pieces[0].to_bytes()))
        clock.advance(REASSEMBLY_TIMEOUT_NS + 1)
        assert reassembler.gc() == 1
        assert reassembler.timed_out == 1
        # late fragment starts a fresh queue, never completes silently
        assert reassembler.push(Packet.from_bytes(pieces[-1].to_bytes())) is None


class TestStackIntegration:
    def test_local_delivery_reassembles(self):
        topo = LineTopology()
        got = []
        topo.dut.sockets.bind(IPPROTO_UDP, 7, lambda k, skb: got.append(skb.pkt.payload))
        topo.dut.neigh_add("eth0", "10.0.1.2", topo.src_eth.mac)
        pkt = big_udp(3000)
        pkt.eth.dst = topo.dut_in.mac
        for piece in fragment(pkt, mtu=1500):
            topo.dut_in.nic.receive_from_wire(piece.to_bytes())
        assert len(got) == 1 and len(got[0]) == 3000

    def test_egress_fragmentation_at_mtu(self):
        topo = LineTopology()
        topo.prewarm_neighbors()
        topo.dut.devices.by_name("eth1").mtu = 600
        received = []
        topo.sink_eth.nic.attach(lambda f, q: received.append(Packet.from_bytes(f)))
        topo.install_prefixes(2)
        pkt = make_udp(topo.src_eth.mac, topo.dut_in.mac, "10.0.1.2", topo.flow_destination(0, 2),
                       payload=b"z" * 2000)
        topo.dut_in.nic.receive_from_wire(pkt.to_bytes())
        assert len(received) > 1
        assert all(p.frame_len - 14 <= 600 for p in received)

    def test_end_to_end_fragmented_echo(self):
        """Fragments forwarded through the DUT reassemble at the far host."""
        topo = LineTopology()
        topo.install_prefixes(2)
        topo.prewarm_neighbors()
        topo.dut.devices.by_name("eth1").mtu = 600
        topo.sink.route_add("10.0.1.0/24", via="10.0.2.1")
        got = []
        topo.sink.sockets.bind(IPPROTO_UDP, 7, lambda k, skb: got.append(len(skb.pkt.payload)))
        # destination owned by the sink so local delivery reassembles there
        topo.sink.add_address("eth0", "10.100.0.77/32")
        pkt = make_udp(topo.src_eth.mac, topo.dut_in.mac, "10.0.1.2", "10.100.0.77",
                       dport=7, payload=b"q" * 2000)
        topo.dut_in.nic.receive_from_wire(pkt.to_bytes())
        assert got == [2000]

    def test_housekeeping(self):
        kernel = Kernel("hk")
        kernel.add_bridge("br0")
        stats = kernel.run_housekeeping()
        assert stats == {"fdb_aged": 0, "conntrack_expired": 0, "fragments_timed_out": 0}
