"""CPU hotplug: offline/online retargeting across every per-CPU structure.

``Kernel.cpu_offline`` must leave no orphaned work behind: the dead CPU's
backlog is drained first (the ``dev_cpu_dead`` analogy), RSS indirection
and RX-queue affinity re-spread over the online set, the conntrack shard is
merged into a live one (lookups keep resolving via the hash-slot
indirection), the flow-cache shard is invalidated, and the controller hears
about it over netlink — surfacing a ``cpu-offline`` incident and rehoming
per-CPU map slots of deployed programs. ``cpu_online`` reverses all of it.
"""

import pytest

from repro.core import Controller
from repro.core.custom import make_flow_counter
from repro.kernel.conntrack import Conntrack, ConnTuple
from repro.measure.topology import LineTopology
from repro.netsim.addresses import IPv4Addr
from repro.netsim.clock import Clock
from repro.netsim.cpu import CpuSet
from repro.netsim.packet import IPPROTO_UDP, make_udp

NUM_PREFIXES = 8


def build(num_queues=4):
    topo = LineTopology(num_queues=num_queues)
    topo.install_prefixes(NUM_PREFIXES)
    topo.prewarm_neighbors()
    delivered = []
    topo.sink_eth.nic.attach(lambda frame, q: delivered.append(frame))
    return topo, delivered


def frame_for(topo, flow, seq=0):
    return make_udp(
        topo.src_eth.mac, topo.dut_in.mac, "10.0.1.2",
        topo.flow_destination(flow, NUM_PREFIXES),
        sport=1024 + flow, dport=9, ttl=16,
        payload=seq.to_bytes(4, "big"),
    ).to_bytes()


def assert_ledger_balanced(stack):
    assert stack.rx_packets + stack.tx_local_packets == stack.settled + stack.pending_packets()


class TestCpuSet:
    def test_offline_refuses_the_last_online_cpu(self):
        cpus = CpuSet(2)
        cpus.offline(1)
        with pytest.raises(ValueError, match="last online"):
            cpus.offline(0)

    def test_offline_refuses_an_executing_cpu(self):
        cpus = CpuSet(2)
        with cpus.on(1), pytest.raises(ValueError, match="executing"):
            cpus.offline(1)

    def test_on_refuses_an_offline_cpu(self):
        cpus = CpuSet(2)
        cpus.offline(1)
        with pytest.raises(ValueError, match="offline"):
            with cpus.on(1):
                pass  # pragma: no cover - must not execute
        cpus.online(1)
        with cpus.on(1):
            cpus.charge(5)
        assert cpus.busy_ns[1] == 5


class TestSteeringAfterHotplug:
    def test_no_packet_lands_on_an_offline_cpu(self):
        topo, delivered = build(num_queues=4)
        dut = topo.dut
        dut.cpu_offline(1)
        before = dut.cpus.packets[1]
        for i in range(64):
            topo.dut_in.nic.receive_from_wire(frame_for(topo, i))
        assert dut.cpus.packets[1] == before  # dead CPU did no work
        assert len(delivered) == 64  # its flows went elsewhere, not away
        assert_ledger_balanced(dut.stack)

    def test_rx_queue_affinity_remaps_onto_the_online_set(self):
        topo, _ = build(num_queues=4)
        dut = topo.dut
        assert dut.softirq.rx_queue_cpu(1) == 1
        dut.cpu_offline(1)
        owner = dut.softirq.rx_queue_cpu(1)
        assert owner != 1 and dut.cpus.is_online(owner)
        dut.cpu_online(1)
        assert dut.softirq.rx_queue_cpu(1) == 1

    def test_rss_indirection_avoids_dead_queues_and_resets_on_online(self):
        topo, _ = build(num_queues=4)
        dut = topo.dut
        nic = topo.dut_in.nic
        dut.cpu_offline(1)
        frames = [frame_for(topo, i) for i in range(64)]
        assert all(nic.rss_queue(f) != 1 for f in frames)
        dut.cpu_online(1)
        assert any(nic.rss_queue(f) == 1 for f in frames)

    def test_offline_drains_the_pending_backlog_first(self):
        topo, delivered = build(num_queues=4)
        dut = topo.dut
        # park frames on every backlog without draining (enqueue directly)
        queued = 0
        for i in range(32):
            queued += dut.softirq.enqueue(topo.dut_in, frame_for(topo, i), queue=i % 4)
        assert queued == 32 and sum(dut.softirq.backlog_depths()) == 32
        dut.cpu_offline(1)
        assert dut.softirq.backlog_depths()[1] == 0  # replayed, not dropped
        dut.softirq.process_backlogs()
        assert len(delivered) == 32
        assert_ledger_balanced(dut.stack)


class TestConntrackShards:
    def tup(self, i):
        return ConnTuple(
            IPv4Addr.parse(f"10.0.{i}.1"), IPv4Addr.parse(f"10.1.{i}.1"),
            IPPROTO_UDP, 1000 + i, 53,
        )

    def seeded(self, num_shards=4, entries=64):
        ct = Conntrack(Clock(), num_shards=num_shards)
        tuples = [self.tup(i) for i in range(entries)]
        for tup in tuples:
            ct.create(tup)
        return ct, tuples

    def test_merge_empties_the_dead_shard_and_keeps_lookups_resolving(self):
        ct, tuples = self.seeded()
        dead_tuples = [t for t in tuples if ct.shard_of(t) == 1]
        assert dead_tuples  # 64 flows over 4 shards: shard 1 is populated
        moved = ct.merge_shard(1, 0)
        assert moved == len(dead_tuples)
        assert not ct._shards[1]
        for tup in tuples:
            assert ct.lookup(tup) is not None  # nothing lost in the merge

    def test_split_rehomes_the_merged_entries_back(self):
        ct, tuples = self.seeded()
        ct.merge_shard(1, 0)
        moved = ct.split_shard(1)
        assert moved > 0
        for index, shard in enumerate(ct._shards):
            for tup in shard:
                assert ct.shard_of(tup) == index  # invariant restored
        for tup in tuples:
            assert ct.lookup(tup) is not None

    def test_merge_into_itself_is_rejected(self):
        ct, _ = self.seeded()
        with pytest.raises(ValueError):
            ct.merge_shard(2, 2)

    def test_kernel_offline_merges_and_online_splits(self):
        topo, _ = build(num_queues=4)
        dut = topo.dut
        ct = dut.conntrack
        for i in range(64):
            ct.create(self.tup(i))
        populated = len(ct._shards[1])
        assert populated > 0
        total = sum(len(s) for s in ct._shards)
        dut.cpu_offline(1)
        assert not ct._shards[1]
        assert sum(len(s) for s in ct._shards) == total  # merged, not lost
        dut.cpu_online(1)
        for index, shard in enumerate(ct._shards):
            for tup in shard:
                assert ct.shard_of(tup) == index


class TestFlowCacheShard:
    def test_offline_invalidates_the_dead_cpus_shard(self):
        topo, _ = build(num_queues=4)
        controller = Controller(topo.dut, hook="xdp", flow_cache=True)
        controller.start()
        topo.prewarm_neighbors()
        for i in range(64):
            topo.dut_in.nic.receive_from_wire(frame_for(topo, i))
            topo.dut_in.nic.receive_from_wire(frame_for(topo, i, seq=1))
        cache = topo.dut.flow_cache
        before = cache.stats.invalidations.get("cpu_offline", 0)
        topo.dut.cpu_offline(1)
        dropped = cache.stats.invalidations.get("cpu_offline", 0) - before
        assert dropped > 0  # the dead CPU's cached flows are gone
        # and traffic still forwards (re-populating live shards)
        for i in range(16):
            topo.dut_in.nic.receive_from_wire(frame_for(topo, i, seq=2))
        assert_ledger_balanced(topo.dut.stack)


class TestControllerIntegration:
    def accelerated(self, customs=()):
        topo, delivered = build(num_queues=4)
        controller = Controller(topo.dut, hook="xdp", custom_fpms=list(customs))
        controller.start()
        topo.prewarm_neighbors()
        return topo, delivered, controller

    def test_offline_surfaces_an_incident_and_health_reports_it(self):
        topo, _, controller = self.accelerated()
        topo.dut.cpu_offline(2)
        kinds = [i.kind for i in controller.incidents]
        assert "cpu-offline" in kinds
        health = controller.health()
        assert health["offline_cpus"] == [2]
        topo.dut.cpu_online(2)
        assert "cpu-online" in [i.kind for i in controller.incidents]
        assert controller.health()["offline_cpus"] == []

    def test_offline_rehomes_percpu_map_slots_of_deployed_programs(self):
        topo, delivered, controller = self.accelerated(customs=[make_flow_counter("flowmon")])
        for i in range(64):
            topo.dut_in.nic.receive_from_wire(frame_for(topo, i))
        entry = controller.deployer.deployed["eth0"]
        percpu = next(
            m for m in entry.current.program.maps if hasattr(m, "drain_cpu")
        )
        dead_before = len(percpu._cpu_data[1])
        total_before = sum(len(slot) for slot in percpu._cpu_data)
        assert dead_before > 0
        topo.dut.cpu_offline(1)
        target = topo.dut._hotplug_target(1)  # the post-offline online set
        assert len(percpu._cpu_data[1]) < dead_before  # slots rehomed
        assert sum(len(slot) for slot in percpu._cpu_data) == total_before
        assert len(percpu._cpu_data[target]) > 0
        kinds = [i.kind for i in controller.incidents]
        assert "cpu-map-drain" in kinds

    def test_traffic_keeps_flowing_across_an_offline_online_cycle(self):
        topo, delivered, controller = self.accelerated()
        for i in range(32):
            topo.dut_in.nic.receive_from_wire(frame_for(topo, i))
        topo.dut.cpu_offline(1)
        for i in range(32):
            topo.dut_in.nic.receive_from_wire(frame_for(topo, i, seq=1))
        topo.dut.cpu_online(1)
        for i in range(32):
            topo.dut_in.nic.receive_from_wire(frame_for(topo, i, seq=2))
        assert len(delivered) == 96
        assert_ledger_balanced(topo.dut.stack)
        assert controller.health()["ok"]
