"""Bounded per-CPU backlogs: ``net.core.netdev_max_backlog`` semantics.

The overload contract under test (ISSUE: storm-scale resilience): a frame
steered at a CPU whose backlog is full is refused *at enqueue* — it still
enters the conservation ledger and settles as a counted ``backlog_overflow``
drop on the CPU that refused it, so ``rx + tx_local == settled + pending``
survives saturation. Single-frame delivery enqueues and immediately drains
(the pre-backlog behavior, which never overflows); NAPI-style burst
delivery (:meth:`NIC.receive_burst`) enqueues the whole batch first, which
is where the bound actually bites.
"""

from repro.kernel.softirq import DEFAULT_MAX_BACKLOG
from repro.measure.topology import LineTopology
from repro.netsim.packet import make_udp
from repro.tools.sysctl_tool import sysctl

NUM_PREFIXES = 8


def build(num_queues=4):
    topo = LineTopology(num_queues=num_queues)
    topo.install_prefixes(NUM_PREFIXES)
    topo.prewarm_neighbors()
    delivered = []
    topo.sink_eth.nic.attach(lambda frame, q: delivered.append(frame))
    return topo, delivered


def frame_for(topo, flow, seq=0):
    return make_udp(
        topo.src_eth.mac, topo.dut_in.mac, "10.0.1.2",
        topo.flow_destination(flow, NUM_PREFIXES),
        sport=1024 + flow, dport=9, ttl=16,
        payload=seq.to_bytes(4, "big"),
    ).to_bytes()


def assert_ledger_balanced(stack):
    assert stack.rx_packets + stack.tx_local_packets == stack.settled + stack.pending_packets()


class TestSysctl:
    def test_default_is_the_linux_default(self):
        topo, _ = build()
        assert topo.dut.softirq.max_backlog == DEFAULT_MAX_BACKLOG == 1000

    def test_round_trip_via_sysctl_tool(self):
        topo, _ = build()
        dut = topo.dut
        assert sysctl(dut, "net.core.netdev_max_backlog") == [
            "net.core.netdev_max_backlog = 1000"
        ]
        sysctl(dut, "-w net.core.netdev_max_backlog=256")
        assert sysctl(dut, "net.core.netdev_max_backlog") == [
            "net.core.netdev_max_backlog = 256"
        ]
        # the softirq layer reads the tunable live, no restart required
        assert dut.softirq.max_backlog == 256

    def test_non_positive_or_garbage_falls_back_to_default(self):
        topo, _ = build()
        topo.dut.sysctl_set("net.core.netdev_max_backlog", "0")
        assert topo.dut.softirq.max_backlog == DEFAULT_MAX_BACKLOG
        topo.dut.sysctl_set("net.core.netdev_max_backlog", "unlimited")
        assert topo.dut.softirq.max_backlog == DEFAULT_MAX_BACKLOG


class TestSingleFrameDelivery:
    def test_per_frame_rx_never_overflows_even_at_bound_one(self):
        """Interrupt-per-packet arrival: enqueue + immediate drain means the
        backlog never holds more than the one frame."""
        topo, delivered = build()
        topo.dut.sysctl_set("net.core.netdev_max_backlog", "1")
        for i in range(32):
            topo.dut_in.nic.receive_from_wire(frame_for(topo, i))
        assert len(delivered) == 32
        assert sum(topo.dut.softirq.backlog_drops) == 0
        assert max(topo.dut.softirq.backlog_high_water) == 1
        assert_ledger_balanced(topo.dut.stack)


class TestBurstOverflow:
    def test_burst_overflow_drops_are_fully_accounted(self):
        topo, delivered = build()
        dut = topo.dut
        dut.sysctl_set("net.core.netdev_max_backlog", "8")
        frames = [frame_for(topo, i % 16, seq=i) for i in range(256)]
        topo.dut_in.nic.receive_burst(frames)
        softirq = dut.softirq
        dropped = sum(softirq.backlog_drops)
        assert dropped > 0  # 256 frames into 4 backlogs of 8 must overflow
        assert dut.stack.drops["backlog_overflow"] == dropped
        assert len(delivered) + dropped == 256  # nothing vanished silently
        assert dut.stack.rx_packets == 256  # drops entered the ledger too
        assert_ledger_balanced(dut.stack)

    def test_high_water_marks_respect_the_bound(self):
        topo, _ = build()
        dut = topo.dut
        dut.sysctl_set("net.core.netdev_max_backlog", "8")
        topo.dut_in.nic.receive_burst([frame_for(topo, i % 16, seq=i) for i in range(256)])
        assert max(dut.softirq.backlog_high_water) == 8
        assert all(depth == 0 for depth in dut.softirq.backlog_depths())  # drained

    def test_overflow_drop_lands_on_the_refusing_cpu(self):
        topo, _ = build()
        dut = topo.dut
        dut.sysctl_set("net.core.netdev_max_backlog", "4")
        topo.dut_in.nic.receive_burst([frame_for(topo, i % 16, seq=i) for i in range(128)])
        # per-CPU ledger slices still sum to the totals
        assert sum(dut.stack.rx_by_cpu.values()) == dut.stack.rx_packets
        assert sum(dut.stack.dropped_by_cpu.values()) == dut.stack.dropped
        for cpu, drops in enumerate(dut.softirq.backlog_drops):
            if drops:
                assert dut.stack.dropped_by_cpu.get(cpu, 0) >= drops

    def test_widening_the_bound_stops_the_bleeding(self):
        topo, delivered = build()
        dut = topo.dut
        dut.sysctl_set("net.core.netdev_max_backlog", "4")
        frames = [frame_for(topo, i % 16, seq=i) for i in range(128)]
        topo.dut_in.nic.receive_burst(frames)
        assert sum(dut.softirq.backlog_drops) > 0
        dut.sysctl_set("net.core.netdev_max_backlog", "4096")
        before = sum(dut.softirq.backlog_drops)
        topo.dut_in.nic.receive_burst(frames)
        assert sum(dut.softirq.backlog_drops) == before  # no new overflow
        assert_ledger_balanced(dut.stack)


class TestNestedRxAccounting:
    def test_nested_rx_counts_the_packet_on_the_current_cpu(self):
        """Regression: the inline nested-RX path (veth/loopback/decap
        re-injection) must increment ``cpus.packets`` like every other
        delivery, or per-CPU packet counts undercount re-injected frames."""
        topo, delivered = build()
        dut = topo.dut
        frame = frame_for(topo, 0)
        before = dut.cpus.packets[2]
        with dut.cpus.on(2):
            dut.softirq.rx(dut.devices.by_name("eth0"), frame)
        assert dut.softirq.nested_rx == 1
        assert dut.cpus.packets[2] == before + 1
        assert len(delivered) == 1
        assert_ledger_balanced(dut.stack)

    def test_packet_counters_cover_every_delivery_path(self):
        """Mixed single-frame + burst + nested arrivals: the per-CPU packet
        counters sum to everything the stack received."""
        topo, _ = build()
        dut = topo.dut
        for i in range(8):
            topo.dut_in.nic.receive_from_wire(frame_for(topo, i))
        topo.dut_in.nic.receive_burst([frame_for(topo, i, seq=1) for i in range(8)])
        with dut.cpus.on(1):
            dut.softirq.rx(dut.devices.by_name("eth0"), frame_for(topo, 3, seq=2))
        assert sum(dut.cpus.packets) == dut.stack.rx_packets == 17
