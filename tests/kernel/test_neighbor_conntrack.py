"""Tests for the neighbor (ARP) table and conntrack."""

import pytest

from repro.kernel.conntrack import (
    CT_CLOSED,
    CT_ESTABLISHED,
    CT_NEW,
    ConnTuple,
    Conntrack,
    TCP_CLOSE_TIMEOUT_NS,
    TCP_TIMEOUT_NS,
    UDP_TIMEOUT_NS,
)
from repro.kernel.neighbor import (
    MAX_QUEUE,
    NUD_FAILED,
    NUD_PERMANENT,
    NUD_REACHABLE,
    NUD_STALE,
    NeighborTable,
    REACHABLE_TIME_NS,
)
from repro.netsim.addresses import IPv4Addr, MacAddr
from repro.netsim.clock import Clock
from repro.netsim.packet import make_tcp, make_udp, TCP
from repro.netsim.skbuff import SKBuff

MAC1 = MacAddr.parse("02:00:00:00:00:01")
MAC2 = MacAddr.parse("02:00:00:00:00:02")


class TestNeighborTable:
    def test_update_then_resolved(self):
        table = NeighborTable(Clock())
        table.update(1, "10.0.0.2", MAC1)
        assert table.resolved(1, "10.0.0.2") == MAC1

    def test_unknown_is_none(self):
        table = NeighborTable(Clock())
        assert table.resolved(1, "10.0.0.2") is None

    def test_per_interface_keying(self):
        table = NeighborTable(Clock())
        table.update(1, "10.0.0.2", MAC1)
        assert table.resolved(2, "10.0.0.2") is None

    def test_incomplete_entries_not_resolved(self):
        table = NeighborTable(Clock())
        table.create_incomplete(1, "10.0.0.2")
        assert table.resolved(1, "10.0.0.2") is None

    def test_queue_and_drain(self):
        table = NeighborTable(Clock())
        entry = table.create_incomplete(1, "10.0.0.2")
        assert table.queue_packet(entry, "pkt1")
        assert table.queue_packet(entry, "pkt2")
        drained = table.update(1, "10.0.0.2", MAC1)
        assert drained == ["pkt1", "pkt2"]
        assert table.update(1, "10.0.0.2", MAC1) == []

    def test_queue_cap(self):
        table = NeighborTable(Clock())
        entry = table.create_incomplete(1, "10.0.0.2")
        for i in range(MAX_QUEUE):
            assert table.queue_packet(entry, i)
        assert not table.queue_packet(entry, "overflow")

    def test_reachable_times_out_to_stale(self):
        clock = Clock()
        table = NeighborTable(clock)
        table.update(1, "10.0.0.2", MAC1)
        clock.advance(REACHABLE_TIME_NS + 1)
        entry = table.lookup(1, "10.0.0.2")
        assert entry.state == NUD_STALE
        # STALE entries are still usable by the datapath (as in Linux).
        assert table.resolved(1, "10.0.0.2") == MAC1

    def test_permanent_entries_never_stale(self):
        clock = Clock()
        table = NeighborTable(clock)
        table.update(1, "10.0.0.2", MAC1, state=NUD_PERMANENT)
        clock.advance(REACHABLE_TIME_NS * 10)
        assert table.lookup(1, "10.0.0.2").state == NUD_PERMANENT

    def test_fail_drops_queue(self):
        table = NeighborTable(Clock())
        entry = table.create_incomplete(1, "10.0.0.2")
        table.queue_packet(entry, "pkt")
        dropped = table.fail(1, "10.0.0.2")
        assert dropped == ["pkt"]
        assert table.lookup(1, "10.0.0.2").state == NUD_FAILED

    def test_flush_ifindex(self):
        table = NeighborTable(Clock())
        table.update(1, "10.0.0.2", MAC1)
        table.update(2, "10.0.0.3", MAC2)
        table.flush_ifindex(1)
        assert table.resolved(1, "10.0.0.2") is None
        assert table.resolved(2, "10.0.0.3") == MAC2


def udp_skb(src="10.0.0.1", dst="10.0.0.2", sport=100, dport=200):
    return SKBuff(pkt=make_udp(MAC1, MAC2, src, dst, sport=sport, dport=dport))


def tcp_skb(src="10.0.0.1", dst="10.0.0.2", sport=100, dport=200, flags=TCP.ACK):
    return SKBuff(pkt=make_tcp(MAC1, MAC2, src, dst, sport=sport, dport=dport, flags=flags))


class TestConntrack:
    def test_track_creates_new(self):
        ct = Conntrack(Clock())
        entry = ct.track(udp_skb())
        assert entry.state == CT_NEW and entry.packets == 1
        assert len(ct) == 1

    def test_reverse_confirms_established(self):
        ct = Conntrack(Clock())
        ct.track(udp_skb())
        entry = ct.track(udp_skb(src="10.0.0.2", dst="10.0.0.1", sport=200, dport=100))
        assert entry.state == CT_ESTABLISHED
        assert len(ct) == 1  # one connection, both directions

    def test_same_direction_stays_new(self):
        ct = Conntrack(Clock())
        ct.track(udp_skb())
        entry = ct.track(udp_skb())
        assert entry.state == CT_NEW and entry.packets == 2

    def test_lookup_both_directions(self):
        ct = Conntrack(Clock())
        ct.track(udp_skb())
        tup = ConnTuple.from_skb(udp_skb())
        assert ct.lookup(tup) is ct.lookup(tup.reversed())

    def test_udp_timeout_expires(self):
        clock = Clock()
        ct = Conntrack(clock)
        ct.track(udp_skb())
        clock.advance(UDP_TIMEOUT_NS + 1)
        assert ct.lookup(ConnTuple.from_skb(udp_skb())) is None

    def test_gc(self):
        clock = Clock()
        ct = Conntrack(clock)
        ct.track(udp_skb())
        ct.track(udp_skb(sport=111))
        clock.advance(UDP_TIMEOUT_NS + 1)
        ct.track(udp_skb(sport=222))
        assert ct.gc() == 2
        assert len(ct) == 1

    def test_tcp_fin_closes(self):
        ct = Conntrack(Clock())
        ct.track(tcp_skb())
        entry = ct.track(tcp_skb(flags=TCP.FIN | TCP.ACK))
        assert entry.state == CT_CLOSED

    def test_closed_tcp_expires_at_close_timeout(self):
        """Regression: FIN-closed flows must not linger for the full
        established timeout — they use nf_conntrack_tcp_timeout_close."""
        clock = Clock()
        ct = Conntrack(clock)
        ct.track(tcp_skb())
        entry = ct.track(tcp_skb(flags=TCP.FIN | TCP.ACK))
        assert entry.state == CT_CLOSED
        assert entry.timeout_ns() == TCP_CLOSE_TIMEOUT_NS
        clock.advance(TCP_CLOSE_TIMEOUT_NS + 1)
        assert ct.lookup(ConnTuple.from_skb(tcp_skb())) is None
        assert len(ct) == 0

    def test_closed_tcp_gc_collected_early(self):
        clock = Clock()
        ct = Conntrack(clock)
        ct.track(tcp_skb())
        ct.track(tcp_skb(flags=TCP.RST))
        gen_before = ct.gen
        clock.advance(TCP_CLOSE_TIMEOUT_NS + 1)
        assert ct.gc() == 1
        assert ct.gen > gen_before

    def test_established_tcp_keeps_long_timeout(self):
        clock = Clock()
        ct = Conntrack(clock)
        ct.track(tcp_skb())
        entry = ct.track(tcp_skb(src="10.0.0.2", dst="10.0.0.1", sport=200, dport=100))
        assert entry.state == CT_ESTABLISHED
        assert entry.timeout_ns() == TCP_TIMEOUT_NS
        clock.advance(TCP_CLOSE_TIMEOUT_NS + 1)  # past close timeout only
        assert ct.lookup(ConnTuple.from_skb(tcp_skb())) is entry

    def test_non_l4_packet_not_tracked(self):
        from repro.netsim.packet import make_arp_request

        ct = Conntrack(Clock())
        skb = SKBuff(pkt=make_arp_request(MAC1, "10.0.0.1", "10.0.0.2"))
        assert ct.track(skb) is None

    def test_tuple_from_skb(self):
        tup = ConnTuple.from_skb(udp_skb())
        assert tup.src == IPv4Addr.parse("10.0.0.1")
        assert (tup.sport, tup.dport) == (100, 200)
        assert tup.reversed().reversed() == tup
