"""Hostile-input hardening: adversarial frames, link flaps, map faults.

The invariant under attack is the PR 4 conservation ledger:

    rx_packets + tx_local_packets == settled + pending_packets()
    settled == sum(outcomes) + dropped

plus "no exception, ever": truncated, malformed, or garbage frames — and
injected data-plane faults — must always settle with a *named* drop reason
(or a legitimate outcome), on both the plain and the accelerated pipeline.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.kernel.kernel import Kernel
from repro.measure.topology import LineTopology
from repro.netsim.addresses import IfAddr, MacAddr
from repro.netsim.packet import make_udp
from repro.observability.drop_reasons import reason_names
from repro.testing import faults


def assert_conserved(stack):
    pending = stack.pending_packets()
    assert stack.rx_packets + stack.tx_local_packets == stack.settled + pending
    assert stack.settled == sum(stack.outcomes.values()) + stack.dropped


def fresh_topo(accelerated=False):
    from repro.core import Controller

    topo = LineTopology()
    topo.install_prefixes(4)
    if accelerated:
        Controller(topo.dut, hook="xdp").start()
    topo.prewarm_neighbors()
    return topo


def valid_frame(topo, i=0):
    return make_udp(
        topo.src_eth.mac, topo.dut_in.mac, "10.0.1.2", topo.flow_destination(i, 4),
        sport=1234, dport=9, ttl=16,
    ).to_bytes()


# hostile inputs: pure garbage, truncations of a valid frame, and valid
# frames with a corrupted byte — the three classic fuzz families
garbage = st.binary(min_size=0, max_size=128)
truncate_at = st.integers(min_value=0, max_value=80)
corrupt = st.tuples(st.integers(min_value=0, max_value=60), st.integers(min_value=0, max_value=255))


class TestAdversarialFrames:
    @settings(max_examples=120, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(blobs=st.lists(garbage, min_size=1, max_size=8))
    def test_garbage_never_raises_and_ledger_balances(self, blobs):
        topo = fresh_topo()
        for blob in blobs:
            topo.dut_in.nic.receive_from_wire(blob)
        assert_conserved(topo.dut.stack)
        registered = set(reason_names())
        assert set(topo.dut.stack.drops) <= registered

    @settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(cuts=st.lists(truncate_at, min_size=1, max_size=8))
    def test_truncated_frames_settle_with_named_reason(self, cuts):
        topo = fresh_topo()
        frame = valid_frame(topo)
        for cut in cuts:
            topo.dut_in.nic.receive_from_wire(frame[:cut])
        assert_conserved(topo.dut.stack)

    @settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(mutations=st.lists(corrupt, min_size=1, max_size=8))
    def test_bitflipped_frames_on_accelerated_pipeline(self, mutations):
        topo = fresh_topo(accelerated=True)
        frame = bytearray(valid_frame(topo))
        for offset, value in mutations:
            mutant = bytearray(frame)
            mutant[offset % len(mutant)] = value
            topo.dut_in.nic.receive_from_wire(bytes(mutant))
        assert_conserved(topo.dut.stack)


class TestDeviceDropReasons:
    def test_veth_down_peer_emits_dev_link_down(self):
        # Satellite bugfix: this used to be a silent discard.
        kernel = Kernel("host")
        a, b = kernel.add_veth_pair("va", "vb")
        kernel.set_link("va", True)  # peer vb stays down
        a.transmit(b"\x00" * 20)
        assert a.dropped == 1
        assert kernel.stack.drops["dev_link_down"] == 1
        assert kernel.observability.drops.by_device[("va", "dev_link_down")] == 1

    def test_forwarded_packet_to_downed_peer_balances_ledger(self):
        kernel = Kernel("dut")
        eth = kernel.add_physical("eth0")
        kernel.set_link("eth0", True)
        veth, peer = kernel.add_veth_pair("v0", "v1")
        kernel.set_link("v0", True)  # v1 down: egress discards at the device
        eth.add_address(IfAddr.parse("10.0.0.1/24"))
        veth.add_address(IfAddr.parse("10.0.1.1/24"))
        kernel.sysctl.set("net.ipv4.ip_forward", "1")
        from repro.kernel.fib import Route, SCOPE_LINK
        from repro.netsim.addresses import IPv4Prefix

        kernel.fib.add(Route(IPv4Prefix.parse("10.0.1.0/24"), oif=veth.ifindex, scope=SCOPE_LINK))
        kernel.neighbors.update(veth.ifindex, "10.0.1.9", MacAddr.parse("02:00:00:00:00:77"))
        frame = make_udp(
            MacAddr.parse("02:00:00:00:00:55"), eth.mac, "10.0.0.9", "10.0.1.9",
            sport=1, dport=2,
        ).to_bytes()
        eth.nic.receive_from_wire(frame)
        stack = kernel.stack
        # the stack handed the frame off (outcome tx); the device recorded
        # the loss under a named reason — the ledger still balances
        assert stack.outcomes["tx"] == 1
        assert stack.drops["dev_link_down"] == 1
        assert_conserved(stack)

    def test_vxlan_runt_frame_is_malformed(self):
        kernel = Kernel("node")
        vx = kernel.add_vxlan("vxlan0", vni=7, local="192.168.0.1")
        kernel.set_link("vxlan0", True)
        vx.transmit(b"\x01\x02\x03")  # shorter than an ethernet header
        assert vx.dropped == 1
        assert kernel.stack.drops["malformed"] == 1

    def test_vxlan_fdb_miss_named(self):
        kernel = Kernel("node")
        vx = kernel.add_vxlan("vxlan0", vni=7, local="192.168.0.1")
        kernel.set_link("vxlan0", True)
        dst = MacAddr.parse("02:00:00:00:00:42")
        frame = dst.to_bytes() + b"\x00" * 20
        vx.transmit(frame)
        assert kernel.stack.drops["vxlan_no_remote"] == 1


class TestInjectedDataPlaneFaults:
    def test_link_flap_losses_are_counted_not_silent(self):
        topo = fresh_topo()
        frames = [valid_frame(topo, i) for i in range(10)]
        with faults.injected(seed=7) as inj:
            inj.arm("link_flap", probability=0.5)
            for frame in frames:
                topo.dut_in.nic.receive_from_wire(frame)
        stack = topo.dut.stack
        assert len(inj.fired_at("link_flap")) > 0
        assert stack.drops["dev_link_down"] == len(inj.fired_at("link_flap"))
        assert_conserved(stack)

    def test_arm_everything_excludes_data_plane_by_default(self):
        inj = faults.FaultInjector(seed=1)
        inj.arm_everything(probability=1.0)
        assert inj.decide("link_flap", "eth0") is None
        inj2 = faults.FaultInjector(seed=1)
        inj2.arm_everything(probability=1.0, include_data_plane=True)
        assert inj2.decide("link_flap", "eth0") == "drop"

    def test_map_update_faults_degrade_to_pass_with_counter(self):
        # a custom FPM whose map updates fail must not perturb forwarding:
        # the helper returns an error code, the program continues, and the
        # failure is visible on the map's pressure counter
        from repro.core import Controller
        from repro.core.custom import make_protocol_counter

        topo = LineTopology()
        topo.install_prefixes(4)
        protomon = make_protocol_counter()
        Controller(topo.dut, hook="xdp", custom_fpms=[protomon]).start()
        topo.prewarm_neighbors()
        delivered = []
        topo.sink_eth.nic.attach(lambda frame, q: delivered.append(frame))
        counters = next(iter(protomon.maps.values()))
        with faults.injected(seed=3) as inj:
            inj.arm("map_update", match=counters.name)
            for i in range(8):
                topo.dut_in.nic.receive_from_wire(valid_frame(topo, i))
        assert len(delivered) == 8  # forwarding unaffected
        assert counters.update_errors == 8
        assert_conserved(topo.dut.stack)
