"""Tests for the FIB (LPM routing table)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.kernel.fib import Fib, Route, RouteError, SCOPE_LINK, SCOPE_UNIVERSE
from repro.netsim.addresses import IPv4Addr, IPv4Prefix


def route(prefix, oif=1, via=None, metric=0):
    gateway = IPv4Addr.parse(via) if via else None
    return Route(prefix=IPv4Prefix.parse(prefix), oif=oif, gateway=gateway, metric=metric)


class TestFib:
    def test_exact_match(self):
        fib = Fib()
        fib.add(route("10.0.0.0/24", oif=2))
        found = fib.lookup("10.0.0.55")
        assert found is not None and found.oif == 2

    def test_longest_prefix_wins(self):
        fib = Fib()
        fib.add(route("10.0.0.0/8", oif=1))
        fib.add(route("10.1.0.0/16", oif=2))
        fib.add(route("10.1.2.0/24", oif=3))
        assert fib.lookup("10.1.2.3").oif == 3
        assert fib.lookup("10.1.9.9").oif == 2
        assert fib.lookup("10.9.9.9").oif == 1

    def test_default_route_fallback(self):
        fib = Fib()
        fib.add(route("0.0.0.0/0", oif=9, via="192.168.0.1"))
        fib.add(route("10.0.0.0/8", oif=1))
        assert fib.lookup("8.8.8.8").oif == 9
        assert fib.lookup("10.1.1.1").oif == 1

    def test_miss_returns_none(self):
        fib = Fib()
        fib.add(route("10.0.0.0/24", oif=1))
        assert fib.lookup("11.0.0.1") is None

    def test_host_route(self):
        fib = Fib()
        fib.add(route("10.0.0.0/24", oif=1))
        fib.add(route("10.0.0.7/32", oif=5))
        assert fib.lookup("10.0.0.7").oif == 5
        assert fib.lookup("10.0.0.8").oif == 1

    def test_metric_ordering(self):
        fib = Fib()
        fib.add(route("10.0.0.0/24", oif=1, metric=10))
        fib.add(route("10.0.0.0/24", oif=2, metric=5))
        assert fib.lookup("10.0.0.1").oif == 2

    def test_same_metric_replaces(self):
        fib = Fib()
        fib.add(route("10.0.0.0/24", oif=1))
        fib.add(route("10.0.0.0/24", oif=2))
        assert fib.lookup("10.0.0.1").oif == 2
        assert len(fib) == 1

    def test_replace_false_raises(self):
        fib = Fib()
        fib.add(route("10.0.0.0/24", oif=1))
        with pytest.raises(RouteError):
            fib.add(route("10.0.0.0/24", oif=2), replace=False)

    def test_remove(self):
        fib = Fib()
        fib.add(route("10.0.0.0/24", oif=1))
        removed = fib.remove(IPv4Prefix.parse("10.0.0.0/24"))
        assert removed.oif == 1
        assert fib.lookup("10.0.0.1") is None

    def test_remove_specific_metric(self):
        fib = Fib()
        fib.add(route("10.0.0.0/24", oif=1, metric=5))
        fib.add(route("10.0.0.0/24", oif=2, metric=10))
        fib.remove(IPv4Prefix.parse("10.0.0.0/24"), metric=10)
        assert fib.lookup("10.0.0.1").oif == 1

    def test_remove_missing_raises(self):
        with pytest.raises(RouteError):
            Fib().remove(IPv4Prefix.parse("10.0.0.0/24"))

    def test_remove_for_oif(self):
        fib = Fib()
        fib.add(route("10.0.0.0/24", oif=1))
        fib.add(route("10.1.0.0/24", oif=2))
        fib.add(route("10.2.0.0/24", oif=1))
        removed = fib.remove_for_oif(1)
        assert len(removed) == 2 and len(fib) == 1

    def test_routes_sorted_most_specific_first(self):
        fib = Fib()
        fib.add(route("0.0.0.0/0", oif=1, via="192.168.0.1"))
        fib.add(route("10.0.0.0/8", oif=1))
        fib.add(route("10.1.1.0/24", oif=2))
        lengths = [r.prefix.length for r in fib.routes()]
        assert lengths == sorted(lengths, reverse=True)

    def test_gatewayless_non_host_route_becomes_link_scope(self):
        r = route("10.0.0.0/24", oif=1)
        assert r.scope == SCOPE_LINK
        assert route("10.0.0.0/24", oif=1, via="10.9.0.1").scope == SCOPE_UNIVERSE

    def test_next_hop(self):
        assert route("10.0.0.0/24", oif=1, via="10.9.0.1").next_hop == IPv4Addr.parse("10.9.0.1")
        assert route("10.0.0.0/24", oif=1).next_hop is None

    def test_50_prefixes_paper_workload(self):
        """The paper's router experiment configures 50 prefixes."""
        fib = Fib()
        for i in range(50):
            fib.add(route(f"10.{i}.0.0/16", oif=(i % 4) + 1))
        assert len(fib) == 50
        for i in range(50):
            assert fib.lookup(f"10.{i}.200.1").oif == (i % 4) + 1

    @given(st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_lpm_is_most_specific_property(self, addr_value):
        fib = Fib()
        fib.add(route("0.0.0.0/0", oif=1, via="192.168.0.1"))
        fib.add(route("128.0.0.0/1", oif=2))
        fib.add(route("128.0.0.0/2", oif=3))
        found = fib.lookup(IPv4Addr(addr_value))
        top_bits = addr_value >> 30
        if top_bits == 0b10:
            assert found.oif == 3
        elif top_bits == 0b11:
            assert found.oif == 2
        else:
            assert found.oif == 1
