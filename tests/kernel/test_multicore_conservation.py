"""The PR 4/5 resilience suites re-run on a 4-CPU pipeline.

Multi-core must not break the packet-conservation ledger or the
degrade-don't-diverge guarantees: every per-CPU counter family sums to its
global, each CPU's ledger balances on its own, conntrack pressure behaves
identically to single-core, and a live redeploy freeze-copies per-CPU map
slots without losing a count.
"""

import pytest

from repro.core import Controller
from repro.core.custom import flow_counter_key, make_flow_counter
from repro.ebpf.maps import PercpuLruHashMap
from repro.kernel.netfilter import Rule
from repro.measure.topology import LineTopology
from repro.netsim.addresses import IPv4Addr
from repro.netsim.packet import make_udp
from repro.observability.metrics import MetricsRegistry

NUM_PREFIXES = 8
NUM_CPUS = 4


def build(rules=(), accelerated=False, conntrack_max=None, num_queues=NUM_CPUS,
          custom_fpms=None, flow_cache=False):
    topo = LineTopology(num_queues=num_queues)
    topo.install_prefixes(NUM_PREFIXES)
    if conntrack_max is not None:
        topo.dut.sysctl_set("net.netfilter.nf_conntrack_max", str(conntrack_max))
    for rule in rules:
        topo.dut.ipt_append("FORWARD", rule)
    controller = None
    if accelerated:
        controller = Controller(
            topo.dut, hook="xdp", flow_cache=flow_cache,
            custom_fpms=list(custom_fpms or []),
        )
        controller.start()
    topo.prewarm_neighbors()
    delivered = []
    topo.sink_eth.nic.attach(lambda frame, q: delivered.append(frame))
    return topo, controller, delivered


def drive_flows(topo, delivered, count, sport_base=1024, ttl=16):
    results = []
    for i in range(count):
        frame = make_udp(
            topo.src_eth.mac, topo.dut_in.mac, "10.0.1.2",
            topo.flow_destination(i, NUM_PREFIXES),
            sport=sport_base + i, dport=9, ttl=ttl,
        ).to_bytes()
        before = len(delivered)
        topo.dut_in.nic.receive_from_wire(frame)
        results.append(len(delivered) > before)
    return results


def assert_conserved_per_cpu(stack):
    """Global conservation plus the per-CPU decomposition of the ledger."""
    pending = stack.pending_packets()
    assert stack.rx_packets + stack.tx_local_packets == stack.settled + pending
    assert stack.settled == sum(stack.outcomes.values()) + stack.dropped
    assert sum(stack.rx_by_cpu.values()) == stack.rx_packets
    assert sum(stack.tx_local_by_cpu.values()) == stack.tx_local_packets
    assert sum(stack.settled_by_cpu.values()) == stack.settled
    assert sum(stack.dropped_by_cpu.values()) == stack.dropped
    if pending == 0:
        # a flow never migrates mid-simulation, so with nothing parked each
        # CPU's ledger must balance on its own
        for cpu in set(stack.rx_by_cpu) | set(stack.tx_local_by_cpu):
            rx = stack.rx_by_cpu[cpu] + stack.tx_local_by_cpu[cpu]
            assert rx == stack.settled_by_cpu[cpu], f"cpu {cpu} leaks packets"


class TestLedgerAcrossCpus:
    def test_mixed_traffic_balances_on_every_cpu(self):
        topo, _, delivered = build()
        stack = topo.dut.stack
        assert drive_flows(topo, delivered, 64).count(True) == 64
        drive_flows(topo, delivered, 8, sport_base=9000, ttl=1)  # ttl drops
        topo.dut_in.nic.receive_from_wire(b"\x00" * 8)  # malformed
        assert_conserved_per_cpu(stack)
        assert stack.dropped == 9
        # work actually spread: more than one CPU settled packets
        assert len([c for c in stack.settled_by_cpu if c >= 0]) > 1
        assert topo.dut.observability.drops.total() == 9

    def test_accelerated_pipeline_balances_too(self):
        topo, controller, delivered = build(accelerated=True, flow_cache=True)
        assert drive_flows(topo, delivered, 64).count(True) == 64
        drive_flows(topo, delivered, 64).count(True)  # warm-cache pass
        assert_conserved_per_cpu(topo.dut.stack)
        # the flow cache sharded by CPU: entries live in multiple shards
        cache = topo.dut.flow_cache
        assert cache.enabled
        shard_fill = [len(s) for s in cache._shards]
        assert sum(shard_fill) == len(cache.entries())
        assert len([f for f in shard_fill if f]) > 1

    def test_metrics_expose_the_per_cpu_families(self):
        topo, _, delivered = build()
        drive_flows(topo, delivered, 32)
        registry = MetricsRegistry(topo.dut)
        cpus = registry.snapshot()["cpus"]
        assert cpus["num_cpus"] == NUM_CPUS
        assert sum(cpus["rx_by_cpu"].values()) == topo.dut.stack.rx_packets
        assert sum(cpus["packets"]) == 32
        text = registry.to_prometheus()
        assert 'linuxfp_cpu_busy_ns_total{cpu="0"}' in text
        assert "linuxfp_rps_steered_total" in text


class TestPressureAtFourCpus:
    def test_conntrack_pressure_no_divergence_and_shards_sum(self):
        rules = [Rule(target="ACCEPT", ct_state="NEW")]
        slow, _, slow_out = build(rules, accelerated=False, conntrack_max=8)
        fast, _, fast_out = build(rules, accelerated=True, conntrack_max=8)
        assert drive_flows(slow, slow_out, 64) == drive_flows(fast, fast_out, 64)
        for topo in (slow, fast):
            ct = topo.dut.conntrack
            assert ct.num_shards == NUM_CPUS
            assert sum(ct.shard_sizes()) == len(ct) <= 8
            assert ct.early_drops > 0  # the pressure is visible, not fatal
            assert_conserved_per_cpu(topo.dut.stack)

    def test_sharded_conntrack_matches_single_core_outcomes(self):
        rules = [Rule(target="ACCEPT", ct_state="NEW")]
        uni, _, uni_out = build(rules, num_queues=1, conntrack_max=8)
        quad, _, quad_out = build(rules, num_queues=NUM_CPUS, conntrack_max=8)
        assert drive_flows(uni, uni_out, 48) == drive_flows(quad, quad_out, 48)


HOT = dict(sport=55_555, dport=9)


def hot_frame(topo):
    return make_udp(
        topo.src_eth.mac, topo.dut_in.mac, "10.0.1.2",
        topo.flow_destination(0, NUM_PREFIXES), ttl=16, **HOT,
    ).to_bytes()


def flow_map(controller):
    entry = controller.deployer.deployed["eth0"]
    return next(m for m in entry.current.program.maps if m.name == "flowmon_flows")


class TestMigrationFreezeCopiesPercpuSlots:
    def test_redeploy_carries_per_cpu_state_slot_wise(self):
        flowmon = make_flow_counter(max_flows=256, pin_maps=False)
        topo, controller, delivered = build(accelerated=True,
                                            custom_fpms=[flowmon])
        # spread distinct flows across the CPUs, plus a hot flow we audit
        sent_hot = 0
        drive_flows(topo, delivered, 32, sport_base=2000)
        for _ in range(5):
            topo.dut_in.nic.receive_from_wire(hot_frame(topo))
            sent_hot += 1
        old_map = flow_map(controller)
        assert isinstance(old_map, PercpuLruHashMap)
        assert old_map.num_cpus == NUM_CPUS
        before = dict(old_map.percpu_items())
        populated = {
            cpu
            for _, slots in before.items()
            for cpu, value in enumerate(slots) if value is not None
        }
        assert len(populated) > 1  # state really is per-CPU

        topo.dut.ipt_append("FORWARD", Rule(target="ACCEPT", ct_state="NEW"))
        controller.tick()

        report = controller.deployer.migrations["eth0"]
        assert report.dropped == 0
        assert report.migrated["flowmon_flows"] == len(before)
        new_map = flow_map(controller)
        assert new_map is not old_map and old_map.frozen
        assert dict(new_map.percpu_items()) == before  # slot-exact copy

        # the carried state keeps counting where it left off
        key = flow_counter_key(
            IPv4Addr.parse("10.0.1.2"),
            IPv4Addr.parse(topo.flow_destination(0, NUM_PREFIXES)),
            HOT["sport"], HOT["dport"],
        )
        topo.dut_in.nic.receive_from_wire(hot_frame(topo))
        sent_hot += 1
        assert int.from_bytes(new_map.lookup(key), "big") == sent_hot
        assert_conserved_per_cpu(topo.dut.stack)
