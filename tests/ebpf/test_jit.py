"""Tests for the bytecode→Python JIT.

Covers the compiler's reports and fail-closed fallback, the engine's unit
cache (identity-keyed, LRU-bounded), the entry-ABI guard, chain-aware
zero-copy facts with prog-array version invalidation, interpreter resume
mid-tail-chain, tail-call-limit parity, and the burst hook entry point.
"""

import pytest

from repro.core.fpm.library import render_dispatcher, render_fast_path
from repro.ebpf.hooks import XdpAttachment
from repro.ebpf.isa import mov_imm
from repro.ebpf.jit import JitEngine, JitReport, compile_program
from repro.ebpf.jit.engine import jit_env_default
from repro.ebpf.maps import ProgArray
from repro.ebpf.memory import Pointer, Region
from repro.ebpf.minic import compile_c
from repro.ebpf.program import Program
from repro.ebpf.vm import VM, Env, VMError
from repro.kernel import Kernel
from repro.tools.fpmlint import HOOKS, _configurations

READER_SRC = """
u32 main(u8* pkt, u64 len, u64 ifindex) {
    if (len < 14) { return 2; }
    u64 t = ld16(pkt, 12);
    if (t == 0x0800) { return 2; }
    return 1;
}
"""

WRITER_SRC = """
u32 main(u8* pkt, u64 len, u64 ifindex) {
    if (len < 14) { return 2; }
    st8(pkt, 0, 7);
    return 2;
}
"""


def compile_src(source, name="jit-test", hook="xdp", maps=None):
    return compile_c(source, name=name, hook=hook, maps=maps)


def frame_args(frame):
    region = Region("pkt", bytearray(frame))
    return region, [Pointer(region, 0), len(frame), 1]


FRAME = bytes(range(64))


# ------------------------------------------------------------- compiler

class TestCompiler:
    def test_every_template_config_compiles(self):
        for label, nodes in _configurations().items():
            for hook in HOOKS:
                program = compile_src(
                    render_fast_path("eth0", hook, nodes), name=f"{label}@{hook}", hook=hook
                )
                unit, report = compile_program(program)
                assert unit is not None, f"{label}@{hook}: {report.error}"
                assert report.status == "compiled"
                assert report.insns == len(program)
                assert report.blocks > 0
                assert report.inline_mem_ops > 0

    def test_dispatcher_compiles(self):
        program = compile_src(
            render_dispatcher("eth0", "xdp"), name="disp", maps={"jmp": ProgArray("jmp")}
        )
        unit, report = compile_program(program)
        assert unit is not None
        assert report.status == "compiled"

    def test_unverifiable_program_falls_back(self):
        # No exit instruction: check_structure refuses it, the JIT declines.
        bad = Program(name="bad", insns=[mov_imm(0, 0)], hook="xdp")
        unit, report = compile_program(bad)
        assert unit is None
        assert report.status == "fallback"
        assert report.error
        # Fallback reports stay conservative about packet writes.
        assert report.writes_packet is True

    def test_writes_packet_fact(self):
        _, reader = compile_program(compile_src(READER_SRC))
        _, writer = compile_program(compile_src(WRITER_SRC))
        assert reader.status == "compiled" and not reader.writes_packet
        assert writer.status == "compiled" and writer.writes_packet

    def test_null_checks_folded_on_router(self):
        nodes = _configurations()["router"]
        program = compile_src(render_fast_path("eth0", "xdp", nodes), hook="xdp")
        _, report = compile_program(program)
        assert report.folded_null_checks >= 0  # fact is reported
        assert report.inline_mem_ops > report.generic_ops


# --------------------------------------------------------------- engine

class TestEngine:
    def test_env_default(self, monkeypatch):
        monkeypatch.delenv("LINUXFP_JIT", raising=False)
        assert jit_env_default() is False
        monkeypatch.setenv("LINUXFP_JIT", "1")
        assert jit_env_default() is True
        monkeypatch.setenv("LINUXFP_JIT", "off")
        assert jit_env_default() is False

    def test_unit_cache_hits_by_identity(self):
        kernel = Kernel("jit-cache")
        engine = JitEngine(kernel, enabled=True)
        program = compile_src(READER_SRC)
        first = engine.unit_for(program)
        second = engine.unit_for(program)
        assert first is second
        assert engine.stats["compiled"] == 1

    def test_unit_cache_is_lru_bounded(self):
        kernel = Kernel("jit-lru")
        engine = JitEngine(kernel, enabled=True)
        engine.MAX_UNITS = 2
        programs = [compile_src(READER_SRC, name=f"p{i}") for i in range(4)]
        for program in programs:
            engine.unit_for(program)
        assert len(engine._units) == 2
        assert engine.stats["compiled"] == 4

    def test_execute_matches_interpreter(self):
        k_jit, k_int = Kernel("jit-a"), Kernel("jit-b")
        engine = JitEngine(k_jit, enabled=True)
        program = compile_src(READER_SRC)
        region, args = frame_args(FRAME)
        verdict, executed = engine.execute(program, args, Env(k_jit, 4))
        region2, args2 = frame_args(FRAME)
        vm = VM(k_int)
        expected = vm.run(program, args2, Env(k_int, 4))
        assert verdict == expected
        assert executed == vm.insns_executed
        assert engine.stats["jit_runs"] == 1

    def test_execute_charges_interpreter_clock(self):
        k_jit, k_int = Kernel("jit-clk-a"), Kernel("jit-clk-b")
        engine = JitEngine(k_jit, enabled=True)
        program = compile_src(READER_SRC)
        _, args = frame_args(FRAME)
        engine.execute(program, args, Env(k_jit, 4), charge_costs=True)
        _, args2 = frame_args(FRAME)
        VM(k_int, charge_costs=True).run(program, args2, Env(k_int, 4))
        assert k_jit.clock.now_ns == k_int.clock.now_ns

    def test_abi_guard_falls_back_to_interpreter(self):
        kernel = Kernel("jit-abi")
        engine = JitEngine(kernel, enabled=True)
        program = compile_src(READER_SRC)
        region = Region("pkt", bytearray(FRAME))
        # Nonzero base offset: not the ABI the code was specialized for.
        args = [Pointer(region, 4), len(FRAME) - 4, 1]
        verdict, _ = engine.execute(program, args, Env(kernel, 4))
        assert engine.stats["interp_runs"] == 1
        k2 = Kernel("jit-abi-ref")
        region2 = Region("pkt", bytearray(FRAME))
        expected = VM(k2).run(program, [Pointer(region2, 4), len(FRAME) - 4, 1], Env(k2, 4))
        assert verdict == expected

    def test_disabled_engine_uses_interpreter(self):
        kernel = Kernel("jit-off")
        engine = JitEngine(kernel, enabled=False)
        program = compile_src(READER_SRC)
        assert engine.zero_copy_ok(program) is False
        _, args = frame_args(FRAME)
        engine.execute(program, args, Env(kernel, 4))
        assert engine.stats["jit_runs"] == 0
        assert engine.stats["interp_runs"] == 1


# ---------------------------------------------------------- chain facts

class TestZeroCopyFacts:
    def _dispatcher(self):
        jmp = ProgArray("jmp")
        disp = compile_src(render_dispatcher("eth0", "xdp"), name="disp", maps={"jmp": jmp})
        return disp, jmp

    def test_read_only_chain_allows_zero_copy(self):
        kernel = Kernel("jit-zc")
        engine = JitEngine(kernel, enabled=True)
        disp, jmp = self._dispatcher()
        jmp.set_prog(0, compile_src(READER_SRC, name="reader"))
        assert engine.zero_copy_ok(disp) is True

    def test_writer_in_chain_blocks_zero_copy(self):
        kernel = Kernel("jit-zc-w")
        engine = JitEngine(kernel, enabled=True)
        disp, jmp = self._dispatcher()
        jmp.set_prog(0, compile_src(WRITER_SRC, name="writer"))
        assert engine.zero_copy_ok(disp) is False

    def test_prog_array_swap_invalidates_cached_fact(self):
        kernel = Kernel("jit-zc-swap")
        engine = JitEngine(kernel, enabled=True)
        disp, jmp = self._dispatcher()
        jmp.set_prog(0, compile_src(READER_SRC, name="reader"))
        assert engine.zero_copy_ok(disp) is True
        # An atomic fast-path swap must flip the cached chain fact.
        jmp.set_prog(0, compile_src(WRITER_SRC, name="writer"))
        assert engine.zero_copy_ok(disp) is False
        jmp.set_prog(0, compile_src(READER_SRC, name="reader2"))
        assert engine.zero_copy_ok(disp) is True

    def test_uncompilable_chain_member_blocks_zero_copy(self):
        kernel = Kernel("jit-zc-fb")
        engine = JitEngine(kernel, enabled=True)
        disp, jmp = self._dispatcher()
        target = compile_src(READER_SRC, name="poisoned")
        jmp.set_prog(0, target)
        engine._units[id(target)] = (target, None, JitReport(status="fallback"))
        assert engine.zero_copy_ok(disp) is False


# ----------------------------------------------------------- tail chain

class TestTailChain:
    def _chain(self, target_src=READER_SRC):
        jmp = ProgArray("jmp")
        disp = compile_src(render_dispatcher("eth0", "xdp"), name="disp", maps={"jmp": jmp})
        target = compile_src(target_src, name="target")
        jmp.set_prog(0, target)
        return disp, target

    def test_compiled_chain_matches_interpreter(self):
        disp, _ = self._chain()
        k_jit, k_int = Kernel("jit-tc-a"), Kernel("jit-tc-b")
        engine = JitEngine(k_jit, enabled=True)
        _, args = frame_args(FRAME)
        verdict, executed = engine.execute(disp, args, Env(k_jit, 4))
        _, args2 = frame_args(FRAME)
        vm = VM(k_int)
        expected = vm.run(disp, args2, Env(k_int, 4))
        assert (verdict, executed) == (expected, vm.insns_executed)
        assert k_jit.clock.now_ns == k_int.clock.now_ns

    def test_interpreter_resumes_uncompilable_tail_target(self):
        disp, target = self._chain()
        k_jit, k_int = Kernel("jit-res-a"), Kernel("jit-res-b")
        engine = JitEngine(k_jit, enabled=True)
        # Poison the target's cache entry: the dispatcher stays compiled but
        # the tail call must hand over to the interpreter mid-chain.
        engine._units[id(target)] = (target, None, JitReport(status="fallback"))
        _, args = frame_args(FRAME)
        verdict, executed = engine.execute(disp, args, Env(k_jit, 4))
        _, args2 = frame_args(FRAME)
        vm = VM(k_int)
        expected = vm.run(disp, args2, Env(k_int, 4))
        assert (verdict, executed) == (expected, vm.insns_executed)
        assert k_jit.clock.now_ns == k_int.clock.now_ns
        assert engine.stats["jit_runs"] == 1
        assert engine.stats["interp_runs"] == 1

    def test_tail_call_limit_message_parity(self):
        jmp = ProgArray("jmp")
        disp = compile_src(render_dispatcher("eth0", "xdp"), name="disp", maps={"jmp": jmp})
        jmp.set_prog(0, disp)  # self-referential: chains forever
        k_jit, k_int = Kernel("jit-lim-a"), Kernel("jit-lim-b")
        engine = JitEngine(k_jit, enabled=True)
        _, args = frame_args(FRAME)
        with pytest.raises(VMError) as jit_err:
            engine.execute(disp, args, Env(k_jit, 4))
        _, args2 = frame_args(FRAME)
        with pytest.raises(VMError) as int_err:
            VM(k_int).run(disp, args2, Env(k_int, 4))
        assert str(jit_err.value) == str(int_err.value)
        assert k_jit.clock.now_ns == k_int.clock.now_ns


# ------------------------------------------------------------ burst hook

class TestBurstHook:
    def test_burst_matches_per_frame_and_counts_zero_copy(self):
        program = compile_src(READER_SRC, name="burst")
        frames = [FRAME, bytes(10), bytes(range(40))]

        k_jit = Kernel("jit-burst")
        k_jit.jit.enabled = True
        attach_jit = XdpAttachment(program)
        dev = k_jit.add_physical("eth0")
        burst = attach_jit.run_xdp_burst(k_jit, dev, frames)

        k_ref = Kernel("jit-burst-ref")
        k_ref.jit.enabled = False
        attach_ref = XdpAttachment(program)
        dev_ref = k_ref.add_physical("eth0")
        single = [attach_ref.run_xdp(k_ref, dev_ref, frame) for frame in frames]

        assert [(r.verdict, bytes(r.frame)) for r in burst] == [
            (r.verdict, bytes(r.frame)) for r in single
        ]
        assert attach_jit.invocations == len(frames)
        # Read-only program: every burst frame ran zero-copy.
        assert k_jit.jit.stats["zero_copy_frames"] == len(frames)
        assert k_jit.clock.now_ns == k_ref.clock.now_ns

    def test_zero_copy_rejected_for_writer(self):
        program = compile_src(WRITER_SRC, name="burst-writer", hook="xdp")
        kernel = Kernel("jit-burst-w")
        kernel.jit.enabled = True
        attach = XdpAttachment(program)
        dev = kernel.add_physical("eth0")
        results = attach.run_xdp_burst(kernel, dev, [FRAME])
        assert kernel.jit.stats["zero_copy_frames"] == 0
        assert results[0].frame[0] == 7  # the store landed on a copy
