"""minic edge cases: scoping, precedence, errors, codegen corners."""

import pytest

from repro.ebpf.minic import CodegenError, ParseError, compile_c
from repro.ebpf.verifier import verify
from repro.ebpf.vm import VM, Env
from repro.kernel import Kernel


@pytest.fixture
def kernel():
    return Kernel("minic-edge")


def run_c(kernel, source, args=None):
    program = compile_c(source)
    verify(program)
    return VM(kernel).run(program, args if args is not None else [0, 0, 0], Env(kernel, 4))


class TestScoping:
    def test_block_shadowing(self, kernel):
        source = """
        u32 main() {
            u64 x = 1;
            if (1) {
                u64 x = 10;
                if (x != 10) { return 99; }
            }
            return x;
        }
        """
        assert run_c(kernel, source) == 1

    def test_same_scope_redefinition_rejected(self):
        with pytest.raises(CodegenError, match="redefinition"):
            compile_c("u32 main() { u64 x = 1; u64 x = 2; return x; }")

    def test_inner_scope_variable_not_visible_outside(self):
        source = """
        u32 main() {
            if (1) { u64 hidden = 5; }
            return hidden;
        }
        """
        with pytest.raises(CodegenError, match="undefined"):
            compile_c(source)

    def test_inline_params_do_not_leak(self):
        source = """
        static u64 f(u64 secret) { return secret + 1; }
        u32 main() { u64 r = f(1); return secret; }
        """
        with pytest.raises(CodegenError, match="undefined"):
            compile_c(source)

    def test_inline_functions_are_lexically_scoped(self):
        """Inlined functions use lexical (their own) scope, not the caller's."""
        source = """
        static u64 f() { return outer; }
        u32 main() { u64 outer = 7; return f(); }
        """
        with pytest.raises(CodegenError, match="undefined"):
            compile_c(source)


class TestPrecedenceAndLiterals:
    def test_unary_minus_binds_tighter(self, kernel):
        assert run_c(kernel, "u32 main() { return (0 - 2) * 3 + 10; }") == 4

    def test_shift_precedence_lower_than_additive(self, kernel):
        # C: 1 << 2 + 1 == 1 << 3
        assert run_c(kernel, "u32 main() { return 1 << 2 + 1; }") == 8

    def test_bitwise_or_lowest(self, kernel):
        # C: 1 | 2 == 3 ; 1 | 2 & 3 == 1 | (2 & 3) == 3
        assert run_c(kernel, "u32 main() { return 1 | 2 & 3; }") == 3

    def test_hex_case_insensitive(self, kernel):
        assert run_c(kernel, "u32 main() { return 0xAb + 0XcD; }") == 0xAB + 0xCD

    def test_large_64bit_literals(self, kernel):
        assert run_c(kernel, "u32 main() { return 0xFFFFFFFFFFFFFFFF & 0xFF; }") == 0xFF


class TestErrors:
    def test_array_with_initializer_rejected(self):
        with pytest.raises(CodegenError):
            compile_c("u32 main() { u64 buf[2] = 5; return 0; }")

    def test_assign_to_array_rejected(self):
        with pytest.raises(CodegenError):
            compile_c("u32 main() { u64 buf[2]; buf = 5; return 0; }")

    def test_wrong_arity_inline_call(self):
        with pytest.raises(CodegenError, match="arguments"):
            compile_c("static u64 f(u64 a) { return a; } u32 main() { return f(1, 2); }")

    def test_too_many_helper_args(self):
        with pytest.raises(CodegenError):
            compile_c("u32 main() { return trace_printk(1, 2, 3, 4, 5, 6); }")

    def test_addrof_undefined(self):
        with pytest.raises(CodegenError):
            compile_c("u32 main() { u64 p = &nothing; return 0; }")

    def test_ld_builtin_arity(self):
        with pytest.raises(CodegenError):
            compile_c("u32 main(u8* p, u64 l, u64 i) { return ld32(p); }")

    def test_st_builtin_arity(self):
        with pytest.raises(CodegenError):
            compile_c("u32 main(u8* p, u64 l, u64 i) { st32(p, 0); return 0; }")

    def test_main_too_many_params(self):
        with pytest.raises(CodegenError):
            compile_c("u32 main(u64 a, u64 b, u64 c, u64 d) { return 0; }")

    def test_mutual_recursion_rejected(self):
        source = """
        static u64 ping(u64 x) { return pong(x); }
        static u64 pong(u64 x) { return ping(x); }
        u32 main() { return ping(1); }
        """
        with pytest.raises(CodegenError, match="recursive"):
            compile_c(source)


class TestCodegenCorners:
    def test_deeply_nested_expression(self, kernel):
        expr = "1"
        for i in range(2, 12):
            expr = f"({expr} + {i})"
        assert run_c(kernel, f"u32 main() {{ return {expr}; }}") == sum(range(1, 12))

    def test_many_locals(self, kernel):
        decls = "\n".join(f"u64 v{i} = {i};" for i in range(30))
        total = " + ".join(f"v{i}" for i in range(30))
        assert run_c(kernel, f"u32 main() {{ {decls} return {total}; }}") == sum(range(30))

    def test_else_if_ladder(self, kernel):
        source = """
        u32 main(u64 a, u64 b, u64 c) {
            if (a == 0) { return 10; }
            else if (a == 1) { return 11; }
            else if (a == 2) { return 12; }
            else { return 13; }
        }
        """
        program = compile_c(source)
        verify(program, entry_kinds=("scalar", "scalar", "scalar"))
        vm = VM(kernel)
        for a, expected in ((0, 10), (1, 11), (2, 12), (9, 13)):
            assert vm.run(program, [a, 0, 0], Env(kernel, 4)) == expected

    def test_comments_everywhere(self, kernel):
        source = """
        // leading comment
        u32 main() { /* inline */ u64 x = 1; // trailing
            /* multi
               line */ return x + 1;
        }
        """
        assert run_c(kernel, source) == 2

    def test_empty_function_body_returns_zero(self, kernel):
        assert run_c(kernel, "u32 main() { }") == 0

    def test_expression_statement_side_effects(self, kernel):
        kernel.clock.advance(5)
        source = "u32 main() { ktime_get_ns(); return 1; }"
        assert run_c(kernel, source) == 1
