"""Tests for program tooling: repr, disassembly, and loader bookkeeping."""

import pytest

from repro.ebpf.isa import Insn, Op, call, exit_, ldx, mov_imm, mov_reg
from repro.ebpf.loader import Loader
from repro.ebpf.minic import compile_c
from repro.ebpf.program import Program
from repro.kernel import Kernel


class TestInsnRepr:
    def test_mov_imm(self):
        text = repr(mov_imm(3, 42, "the answer"))
        assert "mov_imm" in text and "dst=r3" in text and "imm=0x2a" in text and "the answer" in text

    def test_small_imm_decimal(self):
        assert "imm=7" in repr(mov_imm(0, 7))

    def test_reg_ops_show_src(self):
        assert "src=r5" in repr(mov_reg(1, 5))
        assert "src=r2" in repr(ldx(1, 2, 4, 8))

    def test_offset_shown(self):
        assert "off=-8" in repr(Insn(Op.STX, dst=10, src=1, off=-8, imm=8))


class TestDisassembly:
    def test_disassemble_format(self):
        program = Program("demo", [mov_imm(0, 1), exit_()], hook="xdp")
        lines = program.disassemble().splitlines()
        assert lines[0] == "; program demo (xdp, 2 insns)"
        assert lines[1].startswith("   0: ")
        assert lines[2].startswith("   1: ")

    def test_compiled_source_preserved(self):
        source = "u32 main() { return 7; }"
        program = compile_c(source, name="keep")
        assert program.source == source
        assert len(program.disassemble().splitlines()) == len(program) + 1

    def test_len(self):
        program = compile_c("u32 main() { return 1 + 2; }")
        assert len(program) == len(program.insns)


class TestLoaderBookkeeping:
    def test_loaded_registry(self):
        kernel = Kernel("ld")
        kernel.add_physical("eth0")
        loader = Loader(kernel)
        attachment = loader.load(compile_c("u32 main() { return 2; }", name="p1"))
        assert loader.loaded["p1"] is attachment

    def test_tc_egress_attach_detach(self):
        kernel = Kernel("ld")
        kernel.add_physical("eth0")
        loader = Loader(kernel)
        attachment = loader.load(compile_c("u32 main() { return 0; }", name="e", hook="tc"))
        loader.attach_tc("eth0", attachment, egress=True)
        dev = kernel.devices.by_name("eth0")
        assert dev.tc_egress_prog is attachment and dev.tc_ingress_prog is None
        loader.detach_tc("eth0", egress=True)
        assert dev.tc_egress_prog is None

    def test_reattaching_same_program_no_reset(self):
        kernel = Kernel("ld")
        dev = kernel.add_physical("eth0")
        loader = Loader(kernel, model_reset_loss=True)
        attachment = loader.load(compile_c("u32 main() { return 2; }", name="same"))
        loader.attach_xdp("eth0", attachment)
        loader.attach_xdp("eth0", attachment)  # idempotent
        assert dev.nic._reset_drops_remaining == 0
