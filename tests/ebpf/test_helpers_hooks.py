"""Tests for kernel helpers and XDP/TC hook integration."""

import pytest

from repro.ebpf.helpers import (
    FIB_LKUP_RET_NO_NEIGH,
    FIB_LKUP_RET_NOT_FWDED,
    FIB_LKUP_RET_SUCCESS,
    HELPER_IDS,
    IPT_ACCEPT,
    IPT_DROP,
    bpf_conntrack_lookup,
    bpf_fdb_lookup,
    bpf_fib_lookup,
    bpf_ipt_lookup,
)
from repro.ebpf.loader import Loader, LoaderError
from repro.ebpf.memory import Pointer, Region
from repro.ebpf.minic import compile_c
from repro.ebpf.vm import Env
from repro.kernel import Kernel
from repro.kernel.bridge import STP_BLOCKING
from repro.kernel.netfilter import Rule
from repro.netsim.addresses import IPv4Prefix, MacAddr, ipv4
from repro.netsim.packet import IPPROTO_TCP, make_tcp, make_udp

MAC_NEXT_HOP = MacAddr.parse("02:aa:00:00:00:99")


@pytest.fixture
def kernel():
    k = Kernel("helper-test")
    k.add_physical("eth0")
    k.add_physical("eth1")
    k.set_link("eth0", True)
    k.set_link("eth1", True)
    k.add_address("eth0", "10.0.1.1/24")
    k.add_address("eth1", "10.0.2.1/24")
    return k


def env_for(kernel):
    return Env(kernel, redirect_verdict=4)


def out_buf(size=16):
    region = Region("stack", bytearray(size), allow_pointers=True)
    return Pointer(region, 0), region


class TestFibLookupHelper:
    def test_success_writes_rewrite_data(self, kernel):
        kernel.route_add("10.99.0.0/16", via="10.0.2.2")
        kernel.neigh_add("eth1", "10.0.2.2", MAC_NEXT_HOP)
        ptr, region = out_buf()
        rc = bpf_fib_lookup(env_for(kernel), [ipv4("10.99.1.1").value, ptr, 0, 0, 0])
        assert rc == FIB_LKUP_RET_SUCCESS
        oif = int.from_bytes(region.data[0:4], "big")
        assert oif == kernel.devices.by_name("eth1").ifindex
        assert MacAddr.from_bytes(bytes(region.data[4:10])) == kernel.devices.by_name("eth1").mac
        assert MacAddr.from_bytes(bytes(region.data[10:16])) == MAC_NEXT_HOP

    def test_no_route(self, kernel):
        ptr, __ = out_buf()
        rc = bpf_fib_lookup(env_for(kernel), [ipv4("192.168.50.1").value, ptr, 0, 0, 0])
        assert rc == FIB_LKUP_RET_NOT_FWDED

    def test_unresolved_neighbor(self, kernel):
        kernel.route_add("10.99.0.0/16", via="10.0.2.2")
        ptr, __ = out_buf()
        rc = bpf_fib_lookup(env_for(kernel), [ipv4("10.99.1.1").value, ptr, 0, 0, 0])
        assert rc == FIB_LKUP_RET_NO_NEIGH

    def test_charges_cost(self, kernel):
        ptr, __ = out_buf()
        t0 = kernel.clock.now_ns
        bpf_fib_lookup(env_for(kernel), [0, ptr, 0, 0, 0])
        assert kernel.clock.now_ns - t0 == pytest.approx(kernel.costs.helper_fib_lookup, abs=1)


class TestFdbLookupHelper:
    def make_bridge(self, kernel):
        kernel.add_bridge("br0")
        kernel.set_link("br0", True)
        for i in range(2):
            kernel.add_veth_pair(f"v{i}", f"p{i}")
            kernel.set_link(f"v{i}", True)
            kernel.set_link(f"p{i}", True)
            kernel.enslave(f"v{i}", "br0")
        return kernel.devices.by_name("br0")

    def test_hit_returns_egress_port(self, kernel):
        bridge_dev = self.make_bridge(kernel)
        v0 = kernel.devices.by_name("v0")
        v1 = kernel.devices.by_name("v1")
        mac = MacAddr.parse("02:bb:00:00:00:01")
        bridge_dev.bridge.fdb_learn(mac, 1, v1.ifindex)
        rc = bpf_fdb_lookup(env_for(kernel), [bridge_dev.ifindex, v0.ifindex, 1, mac.value, 0])
        assert rc == v1.ifindex

    def test_miss_returns_zero(self, kernel):
        bridge_dev = self.make_bridge(kernel)
        v0 = kernel.devices.by_name("v0")
        rc = bpf_fdb_lookup(
            env_for(kernel), [bridge_dev.ifindex, v0.ifindex, 1, MacAddr.parse("02:bb:00:00:00:02").value, 0]
        )
        assert rc == 0

    def test_aged_entry_returns_zero(self, kernel):
        bridge_dev = self.make_bridge(kernel)
        v0, v1 = kernel.devices.by_name("v0"), kernel.devices.by_name("v1")
        mac = MacAddr.parse("02:bb:00:00:00:01")
        bridge_dev.bridge.fdb_learn(mac, 1, v1.ifindex)
        kernel.clock.advance(bridge_dev.bridge.ageing_time_ns + 1)
        assert bpf_fdb_lookup(env_for(kernel), [bridge_dev.ifindex, v0.ifindex, 1, mac.value, 0]) == 0

    def test_blocked_egress_port_returns_zero(self, kernel):
        bridge_dev = self.make_bridge(kernel)
        v0, v1 = kernel.devices.by_name("v0"), kernel.devices.by_name("v1")
        mac = MacAddr.parse("02:bb:00:00:00:01")
        bridge_dev.bridge.fdb_learn(mac, 1, v1.ifindex)
        bridge_dev.bridge.stp_enabled = True
        bridge_dev.bridge.ports[v1.ifindex].state = STP_BLOCKING
        assert bpf_fdb_lookup(env_for(kernel), [bridge_dev.ifindex, v0.ifindex, 1, mac.value, 0]) == 0

    def test_local_mac_returns_zero(self, kernel):
        bridge_dev = self.make_bridge(kernel)
        v0 = kernel.devices.by_name("v0")
        rc = bpf_fdb_lookup(env_for(kernel), [bridge_dev.ifindex, v0.ifindex, 1, bridge_dev.mac.value, 0])
        assert rc == 0

    def test_src_check_fresh_entry(self, kernel):
        bridge_dev = self.make_bridge(kernel)
        v0 = kernel.devices.by_name("v0")
        mac = MacAddr.parse("02:bb:00:00:00:03")
        bridge_dev.bridge.fdb_learn(mac, 1, v0.ifindex)
        assert bpf_fdb_lookup(env_for(kernel), [bridge_dev.ifindex, v0.ifindex, 1, mac.value, 1]) == v0.ifindex

    def test_src_check_station_move_returns_zero(self, kernel):
        """A source MAC seen on a different port must go to the slow path."""
        bridge_dev = self.make_bridge(kernel)
        v0, v1 = kernel.devices.by_name("v0"), kernel.devices.by_name("v1")
        mac = MacAddr.parse("02:bb:00:00:00:03")
        bridge_dev.bridge.fdb_learn(mac, 1, v1.ifindex)
        assert bpf_fdb_lookup(env_for(kernel), [bridge_dev.ifindex, v0.ifindex, 1, mac.value, 1]) == 0

    def test_non_bridge_ifindex_returns_zero(self, kernel):
        eth0 = kernel.devices.by_name("eth0")
        assert bpf_fdb_lookup(env_for(kernel), [eth0.ifindex, 1, 1, 0x020000000001, 0]) == 0


class TestIptLookupHelper:
    def packet_region(self, src="10.0.0.5", dst="10.0.9.9"):
        frame = make_udp("02:00:00:00:00:01", "02:00:00:00:00:02", src, dst).to_bytes()
        region = Region("pkt", bytearray(frame))
        return Pointer(region, 0), len(frame)

    def test_accept_by_default(self, kernel):
        ptr, length = self.packet_region()
        assert bpf_ipt_lookup(env_for(kernel), [1, ptr, length, 0, 0]) == IPT_ACCEPT

    def test_drop_rule_matches(self, kernel):
        kernel.ipt_append("FORWARD", Rule(target="DROP", src=IPv4Prefix.parse("10.0.0.0/24")))
        ptr, length = self.packet_region()
        assert bpf_ipt_lookup(env_for(kernel), [1, ptr, length, 0, 0]) == IPT_DROP

    def test_linear_cost_in_rules(self, kernel):
        """The fast path inherits iptables' linear scan (Fig 8)."""
        for i in range(200):
            kernel.ipt_append("FORWARD", Rule(target="DROP", src=IPv4Prefix.parse(f"172.16.{i}.0/24")))
        ptr, length = self.packet_region()
        t0 = kernel.clock.now_ns
        bpf_ipt_lookup(env_for(kernel), [1, ptr, length, 0, 0])
        elapsed = kernel.clock.now_ns - t0
        expected = kernel.costs.helper_ipt_base + 200 * kernel.costs.helper_ipt_per_rule
        assert elapsed == pytest.approx(expected, abs=2)

    def test_ipset_rule_constant_cost(self, kernel):
        kernel.ipset_create("bl", "hash:ip")
        for i in range(100):
            kernel.ipset_add("bl", f"172.16.0.{i}")
        kernel.ipt_append("FORWARD", Rule(target="DROP", match_set="bl", set_dir="src"))
        ptr, length = self.packet_region(src="172.16.0.50")
        assert bpf_ipt_lookup(env_for(kernel), [1, ptr, length, 0, 0]) == IPT_DROP
        ptr, length = self.packet_region(src="10.0.0.5")
        assert bpf_ipt_lookup(env_for(kernel), [1, ptr, length, 0, 0]) == IPT_ACCEPT

    def test_drop_policy(self, kernel):
        kernel.ipt_policy("FORWARD", "DROP")
        ptr, length = self.packet_region()
        assert bpf_ipt_lookup(env_for(kernel), [1, ptr, length, 0, 0]) == IPT_DROP

    def test_bad_chain_unsupported(self, kernel):
        ptr, length = self.packet_region()
        from repro.ebpf.helpers import IPT_UNSUPPORTED

        assert bpf_ipt_lookup(env_for(kernel), [9, ptr, length, 0, 0]) == IPT_UNSUPPORTED


class TestConntrackHelper:
    def test_hit_after_ipvs_pin(self, kernel):
        kernel.ipvs_add_service("10.96.0.1", 80, IPPROTO_TCP)
        kernel.ipvs_add_dest("10.96.0.1", 80, IPPROTO_TCP, "10.244.1.10", 8080)
        from repro.kernel.conntrack import ConnTuple

        tup = ConnTuple(ipv4("10.0.0.1"), ipv4("10.96.0.1"), IPPROTO_TCP, 1234, 80)
        kernel.ipvs.connect(tup)
        ptr, region = out_buf(8)
        rc = bpf_conntrack_lookup(
            env_for(kernel), [ipv4("10.0.0.1").value, ipv4("10.96.0.1").value, IPPROTO_TCP, (1234 << 16) | 80, ptr]
        )
        assert rc == 1
        assert bytes(region.data[0:4]) == ipv4("10.244.1.10").to_bytes()
        assert int.from_bytes(region.data[4:6], "big") == 8080

    def test_miss(self, kernel):
        ptr, __ = out_buf(8)
        rc = bpf_conntrack_lookup(env_for(kernel), [1, 2, IPPROTO_TCP, 3, ptr])
        assert rc == 0


PASS_ALL = "u32 main(u8* pkt, u64 len, u64 ifindex) { return 2; }"
DROP_ALL = "u32 main(u8* pkt, u64 len, u64 ifindex) { return 1; }"


class TestHooksAndLoader:
    def test_xdp_drop_counts(self, kernel):
        loader = Loader(kernel)
        att = loader.load(compile_c(DROP_ALL, name="drop", hook="xdp"))
        loader.attach_xdp("eth0", att)
        frame = make_udp("02:00:00:00:00:01", "02:00:00:00:00:02", "1.1.1.1", "10.0.1.1").to_bytes()
        kernel.devices.by_name("eth0").nic.receive_from_wire(frame)
        assert kernel.stack.drops["xdp_drop"] == 1
        assert att.invocations == 1

    def test_xdp_pass_reaches_stack(self, kernel):
        loader = Loader(kernel)
        att = loader.load(compile_c(PASS_ALL, name="pass", hook="xdp"))
        loader.attach_xdp("eth0", att)
        frame = make_udp("02:00:00:00:00:01", "02:00:00:00:00:02", "1.1.1.1", "10.0.1.1", dport=9).to_bytes()
        kernel.devices.by_name("eth0").nic.receive_from_wire(frame)
        assert kernel.stack.drops["no_socket"] == 1  # made it to local delivery

    def test_tc_shot(self, kernel):
        loader = Loader(kernel)
        att = loader.load(compile_c(DROP_ALL.replace("return 1", "return 2"), name="shot", hook="tc"))
        loader.attach_tc("eth0", att)
        frame = make_udp("02:00:00:00:00:01", "02:00:00:00:00:02", "1.1.1.1", "10.0.1.1").to_bytes()
        kernel.devices.by_name("eth0").nic.receive_from_wire(frame)
        assert kernel.stack.drops["tc_shot"] == 1

    def test_abort_becomes_drop(self, kernel):
        from repro.ebpf.hooks import XdpAttachment
        from repro.ebpf.verifier import VerifierError

        bad = "u32 main(u8* pkt, u64 len, u64 ifindex) { return ld32(pkt, 5000); }"
        program = compile_c(bad, name="bad", hook="xdp")
        # the range-tracking verifier rejects the unguarded read statically...
        with pytest.raises(VerifierError, match="packet"):
            Loader(kernel).load(program)
        # ...and the runtime fat pointers remain as defense in depth: force
        # the program onto the hook anyway and the abort still becomes a drop
        att = XdpAttachment(program)
        kernel.devices.by_name("eth0").xdp_prog = att
        frame = make_udp("02:00:00:00:00:01", "02:00:00:00:00:02", "1.1.1.1", "10.0.1.1").to_bytes()
        kernel.devices.by_name("eth0").nic.receive_from_wire(frame)
        assert att.aborts == 1
        assert kernel.stack.drops["xdp_aborted"] == 1

    def test_hook_mismatch_rejected(self, kernel):
        loader = Loader(kernel)
        xdp_att = loader.load(compile_c(PASS_ALL, name="x", hook="xdp"))
        with pytest.raises(LoaderError):
            loader.attach_tc("eth0", xdp_att)

    def test_loader_verifies(self, kernel):
        from repro.ebpf.isa import mov_reg, exit_
        from repro.ebpf.program import Program
        from repro.ebpf.verifier import VerifierError

        bad = Program("bad", [mov_reg(0, 9), exit_()], hook="xdp")
        with pytest.raises(VerifierError):
            Loader(kernel).load(bad)

    def test_detach(self, kernel):
        loader = Loader(kernel)
        att = loader.load(compile_c(DROP_ALL, name="drop", hook="xdp"))
        loader.attach_xdp("eth0", att)
        loader.detach_xdp("eth0")
        frame = make_udp("02:00:00:00:00:01", "02:00:00:00:00:02", "1.1.1.1", "10.0.1.1", dport=9).to_bytes()
        kernel.devices.by_name("eth0").nic.receive_from_wire(frame)
        assert kernel.stack.drops["xdp_drop"] == 0

    def test_xdp_rewrite_visible_downstream(self, kernel):
        rewrite = """
        u32 main(u8* pkt, u64 len, u64 ifindex) {
            if (len < 6) { return 2; }
            st48(pkt, 0, 0x020000000042);
            return 2;
        }
        """
        loader = Loader(kernel)
        att = loader.load(compile_c(rewrite, name="rw", hook="xdp"))
        loader.attach_xdp("eth0", att)
        seen = []
        kernel.stack.netif_receive = lambda dev, skb: seen.append(skb.pkt.eth.dst)
        frame = make_udp("02:00:00:00:00:01", "02:00:00:00:00:02", "1.1.1.1", "10.0.1.1").to_bytes()
        kernel.devices.by_name("eth0").nic.receive_from_wire(frame)
        assert seen == [MacAddr.parse("02:00:00:00:00:42")]
