"""Tests for the minic compiler: lexer, parser, codegen, execution."""

import pytest

from repro.ebpf.loader import Loader
from repro.ebpf.maps import ProgArray
from repro.ebpf.memory import Pointer, Region
from repro.ebpf.minic import CodegenError, LexError, ParseError, compile_c, parse, tokenize
from repro.ebpf.verifier import verify
from repro.ebpf.vm import VM, Env
from repro.kernel import Kernel


@pytest.fixture
def kernel():
    return Kernel("minic-test")


def run_c(kernel, source, args=None, maps=None, packet=None):
    prog = compile_c(source, name="t", hook="xdp", maps=maps)
    verify(prog)
    vm = VM(kernel)
    if packet is not None:
        region = Region("pkt", bytearray(packet))
        args = [Pointer(region, 0), len(packet), 1]
        result = vm.run(prog, args, Env(kernel, 4))
        return result, bytes(region.data)
    return vm.run(prog, args if args is not None else [0, 0, 0], Env(kernel, 4))


class TestLexer:
    def test_tokens(self):
        kinds = [(t.kind, t.text) for t in tokenize("u64 x = 0x2A; // comment")]
        assert kinds == [("kw", "u64"), ("ident", "x"), ("punct", "="), ("num", "0x2A"), ("punct", ";"), ("eof", "")]

    def test_two_char_operators(self):
        texts = [t.text for t in tokenize("a == b != c <= d >> e && f")][:-1]
        assert texts == ["a", "==", "b", "!=", "c", "<=", "d", ">>", "e", "&&", "f"]

    def test_block_comment(self):
        assert [t.text for t in tokenize("a /* hi\nthere */ b")][:-1] == ["a", "b"]

    def test_unterminated_comment(self):
        with pytest.raises(LexError):
            tokenize("/* never ends")

    def test_bad_char(self):
        with pytest.raises(LexError):
            tokenize("a $ b")

    def test_line_numbers(self):
        tokens = tokenize("a\nb\nc")
        assert [t.line for t in tokens[:-1]] == [1, 2, 3]


class TestParser:
    def test_requires_main(self):
        with pytest.raises(ParseError, match="main"):
            parse("u32 helper() { return 0; }")

    def test_if_else_chain(self):
        unit = parse("u32 main() { if (1) { return 1; } else if (2) { return 2; } else { return 3; } }")
        assert unit.func("main") is not None

    def test_extern_map(self):
        unit = parse("extern map jmp; u32 main() { return 0; }")
        assert unit.maps[0].name == "jmp"

    def test_rejects_garbage(self):
        with pytest.raises(ParseError):
            parse("u32 main() { return 1 + ; }")

    def test_rejects_stray_else(self):
        with pytest.raises(ParseError):
            parse("u32 main() { else { return 1; } }")

    def test_no_loops_in_grammar(self):
        with pytest.raises(ParseError):
            parse("u32 main() { while (1) { } return 0; }")


class TestCodegenExecution:
    def test_return_constant(self, kernel):
        assert run_c(kernel, "u32 main() { return 42; }") == 42

    def test_arithmetic(self, kernel):
        assert run_c(kernel, "u32 main() { return (2 + 3) * 4 - 6 / 2; }") == 17

    def test_precedence(self, kernel):
        assert run_c(kernel, "u32 main() { return 2 + 3 * 4; }") == 14

    def test_hex_and_bitwise(self, kernel):
        assert run_c(kernel, "u32 main() { return (0xF0 | 0x0F) & 0x3C; }") == 0x3C

    def test_shifts(self, kernel):
        assert run_c(kernel, "u32 main() { return (1 << 10) >> 2; }") == 256

    def test_variables_and_assignment(self, kernel):
        src = "u32 main() { u64 a = 5; u64 b = a * 2; a = b + 1; return a; }"
        assert run_c(kernel, src) == 11

    def test_comparisons_produce_01(self, kernel):
        assert run_c(kernel, "u32 main() { return (3 < 5) + (5 < 3) + (4 == 4); }") == 2

    def test_logical_ops_short_circuit(self, kernel):
        assert run_c(kernel, "u32 main() { return (1 && 2) + (0 || 5) + (0 && 9); }") == 2

    def test_unary(self, kernel):
        assert run_c(kernel, "u32 main() { return !0 + !7; }") == 1
        assert run_c(kernel, "u32 main() { return (~0) & 0xFF; }") == 0xFF

    def test_if_else(self, kernel):
        src = """
        u32 main(u8* pkt, u64 len, u64 ifindex) {
            if (len > 100) { return 1; }
            else { return 2; }
        }
        """
        region = Region("pkt", bytearray(150))
        assert run_c(kernel, src, args=[Pointer(region, 0), 150, 1]) == 1
        assert run_c(kernel, src, args=[Pointer(region, 0), 50, 1]) == 2

    def test_nested_if(self, kernel):
        src = """
        u32 main(u8* pkt, u64 len, u64 ifindex) {
            if (len > 10) {
                if (len > 20) { return 3; }
                return 2;
            }
            return 1;
        }
        """
        region = Region("pkt", bytearray(1))
        assert run_c(kernel, src, args=[Pointer(region, 0), 25, 1]) == 3
        assert run_c(kernel, src, args=[Pointer(region, 0), 15, 1]) == 2
        assert run_c(kernel, src, args=[Pointer(region, 0), 5, 1]) == 1

    def test_packet_load_builtins(self, kernel):
        packet = bytes([0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99])
        src = "u32 main(u8* pkt, u64 len, u64 ifindex) { if (len < 5) { return 0; } return ld32(pkt, 1); }"
        result, __ = run_c(kernel, src, packet=packet)
        assert result == 0x22334455

    def test_ld48_mac(self, kernel):
        packet = bytes([0xAA, 0xBB, 0xCC, 0xDD, 0xEE, 0xFF, 0x00])
        src = "u32 main(u8* pkt, u64 len, u64 ifindex) { if (len < 6) { return 0; } return ld48(pkt, 0); }"
        result, __ = run_c(kernel, src, packet=packet)
        assert result == 0xAABBCCDDEEFF

    def test_store_builtins_rewrite_packet(self, kernel):
        src = """
        u32 main(u8* pkt, u64 len, u64 ifindex) {
            if (len < 8) { return 0; }
            st16(pkt, 0, 0xBEEF);
            st48(pkt, 2, 0x020000000001);
            return 0;
        }
        """
        __, data = run_c(kernel, src, packet=bytes(8))
        assert data == bytes([0xBE, 0xEF, 0x02, 0x00, 0x00, 0x00, 0x00, 0x01])

    def test_dynamic_offset_load(self, kernel):
        src = """
        u32 main(u8* pkt, u64 len, u64 ifindex) {
            if (len != 3) { return 0; }
            u64 off = len - 1;
            return ld8(pkt, off);
        }
        """
        result, __ = run_c(kernel, src, packet=b"\x00\x00\x2a")
        assert result == 0x2A

    def test_stack_array_and_addressing(self, kernel):
        src = """
        u32 main() {
            u64 buf[2];
            st64(buf, 0, 0x1122334455667788);
            return ld16(buf, 6);
        }
        """
        assert run_c(kernel, src) == 0x7788

    def test_static_function_inlined(self, kernel):
        src = """
        static u64 twice(u64 x) { return x * 2; }
        u32 main() { return twice(21); }
        """
        prog = compile_c(src, name="t")
        assert run_c(kernel, src) == 42
        # no CALL emitted for the user function
        from repro.ebpf.isa import Op
        assert all(i.op != Op.CALL for i in prog.insns)

    def test_inline_early_return(self, kernel):
        src = """
        static u64 clamp(u64 x) {
            if (x > 100) { return 100; }
            return x;
        }
        u32 main() { return clamp(250) + clamp(7); }
        """
        assert run_c(kernel, src) == 107

    def test_nested_inlining(self, kernel):
        src = """
        static u64 inc(u64 x) { return x + 1; }
        static u64 inc2(u64 x) { return inc(inc(x)); }
        u32 main() { return inc2(40); }
        """
        assert run_c(kernel, src) == 42

    def test_recursion_rejected(self, kernel):
        src = """
        static u64 loop(u64 x) { return loop(x); }
        u32 main() { return loop(1); }
        """
        with pytest.raises(CodegenError, match="recursive"):
            compile_c(src)

    def test_undefined_variable_rejected(self):
        with pytest.raises(CodegenError, match="undefined"):
            compile_c("u32 main() { return nope; }")

    def test_unknown_function_rejected(self):
        with pytest.raises(CodegenError, match="unknown function"):
            compile_c("u32 main() { return magic(); }")

    def test_stack_overflow_rejected(self):
        with pytest.raises(CodegenError, match="stack"):
            compile_c("u32 main() { u64 big[100]; return 0; }")

    def test_helper_call(self, kernel):
        kernel.clock.advance(777)
        src = "u32 main() { u64 t = ktime_get_ns(); return t >= 777; }"
        assert run_c(kernel, src) == 1

    def test_tail_call(self, kernel):
        target = compile_c("u32 main() { return 55; }", name="target")
        jmp = ProgArray("jmp", max_entries=2)
        jmp.set_prog(1, target)
        src = """
        extern map jmp;
        u32 main(u8* pkt, u64 len, u64 ifindex) {
            tail_call(pkt, jmp, 1);
            return 0;
        }
        """
        result, __ = run_c(kernel, src, maps={"jmp": jmp}, packet=b"\x00")
        assert result == 55

    def test_tail_call_missing_map_rejected(self):
        src = """
        u32 main(u8* pkt, u64 len, u64 ifindex) {
            tail_call(pkt, jmp, 1);
            return 0;
        }
        """
        with pytest.raises(CodegenError):
            compile_c(src)

    def test_extern_map_must_be_provided(self):
        with pytest.raises(CodegenError, match="not provided"):
            compile_c("extern map ghost; u32 main() { return 0; }")

    def test_compiled_programs_always_verify(self, kernel):
        sources = [
            "u32 main() { return 1 + 2 * 3; }",
            "u32 main(u8* p, u64 l, u64 i) { if (l > 14 && ld16(p, 12) == 0x800) { return 1; } return 2; }",
            "static u64 f(u64 a, u64 b) { return a % (b + 1); } u32 main() { return f(10, 2); }",
        ]
        for source in sources:
            verify(compile_c(source))
