"""Fuzz-style robustness tests: hostile inputs must fail *cleanly*.

The safety story of the eBPF substrate is that nothing a program (or a
malformed message) does can crash the host — errors surface as typed
exceptions (VerifierError/VMError/CodecError/PacketError), never as
arbitrary Python faults.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ebpf.isa import MEM_SIZES, NUM_REGS, Insn, Op
from repro.ebpf.program import Program, ProgramError
from repro.ebpf.verifier import VerifierError, verify
from repro.ebpf.vm import VM, Env, VMError
from repro.kernel import Kernel
from repro.netlink.codec import CodecError, unpack_attrs
from repro.netlink.messages import NetlinkMsg
from repro.netsim.packet import Packet, PacketError

SIMPLE_OPS = [
    Op.MOV_IMM, Op.MOV_REG, Op.ADD_IMM, Op.ADD_REG, Op.SUB_IMM, Op.MUL_REG,
    Op.DIV_REG, Op.AND_IMM, Op.OR_REG, Op.LSH_IMM, Op.RSH_IMM, Op.NEG,
    Op.LDX, Op.STX, Op.ST_IMM, Op.JA, Op.JEQ_IMM, Op.JNE_REG, Op.JGT_IMM,
    Op.JSET_IMM, Op.CALL, Op.EXIT,
]

random_insns = st.lists(
    st.builds(
        Insn,
        op=st.sampled_from(SIMPLE_OPS),
        dst=st.integers(min_value=0, max_value=NUM_REGS - 1),
        src=st.integers(min_value=0, max_value=NUM_REGS - 1),
        off=st.integers(min_value=-16, max_value=16),
        imm=st.integers(min_value=-256, max_value=256),
    ),
    min_size=1,
    max_size=24,
)


class TestVerifierVmFuzz:
    @settings(max_examples=200, deadline=None)
    @given(insns=random_insns)
    def test_verifier_never_crashes(self, insns):
        program = Program("fuzz", insns, hook="xdp")
        try:
            verify(program)
        except VerifierError:
            pass  # rejection is the expected outcome for garbage

    @settings(max_examples=150, deadline=None)
    @given(insns=random_insns)
    def test_verified_programs_execute_safely(self, insns):
        """Anything the verifier accepts must run to completion or abort
        with VMError — no other exception, no hang."""
        program = Program("fuzz", insns, hook="xdp")
        try:
            verify(program)
        except VerifierError:
            return
        kernel = Kernel("fuzz")
        vm = VM(kernel, insn_limit=10_000)
        try:
            result = vm.run(program, [0, 0, 0], Env(kernel, 4))
            assert isinstance(result, int)
        except VMError:
            pass

    @settings(max_examples=100, deadline=None)
    @given(insns=random_insns)
    def test_unverified_execution_only_raises_vmerror(self, insns):
        """Even bypassing the verifier (as baselines may), the VM defends
        itself: VMError is the only failure mode."""
        program = Program("fuzz", insns, hook="xdp")
        kernel = Kernel("fuzz")
        vm = VM(kernel, insn_limit=10_000)
        try:
            vm.run(program, [0, 0, 0], Env(kernel, 4))
        except VMError:
            pass


class TestDecoderFuzz:
    @settings(max_examples=200, deadline=None)
    @given(data=st.binary(max_size=120))
    def test_attr_decoder_never_crashes(self, data):
        try:
            unpack_attrs(data)
        except CodecError:
            pass

    @settings(max_examples=200, deadline=None)
    @given(data=st.binary(max_size=120))
    def test_netlink_parse_never_crashes(self, data):
        try:
            NetlinkMsg.parse_stream(data)
        except CodecError:
            pass

    @settings(max_examples=300, deadline=None)
    @given(data=st.binary(max_size=120))
    def test_packet_parse_never_crashes(self, data):
        try:
            Packet.from_bytes(data)
        except PacketError:
            pass

    @settings(max_examples=100, deadline=None)
    @given(data=st.binary(min_size=14, max_size=200))
    def test_stack_survives_arbitrary_frames(self, data):
        """Garbage off the wire must never take the kernel down."""
        kernel = Kernel("fuzz")
        dev = kernel.add_physical("eth0")
        kernel.set_link("eth0", True)
        kernel.add_address("eth0", "10.0.0.1/24")
        dev.nic.receive_from_wire(bytes(data))  # must not raise

    def test_empty_program_rejected(self):
        with pytest.raises(ProgramError):
            Program("empty", [], hook="xdp")

    def test_bad_hook_rejected(self):
        with pytest.raises(ProgramError):
            Program("x", [Insn(Op.EXIT)], hook="socket")
