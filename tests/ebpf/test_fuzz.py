"""Fuzz-style robustness tests: hostile inputs must fail *cleanly*.

The safety story of the eBPF substrate is that nothing a program (or a
malformed message) does can crash the host — errors surface as typed
exceptions (VerifierError/VMError/CodecError/PacketError), never as
arbitrary Python faults.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Controller
from repro.ebpf.isa import MEM_SIZES, NUM_REGS, Insn, Op
from repro.ebpf.program import Program, ProgramError
from repro.ebpf.verifier import VerifierError, verify
from repro.ebpf.vm import VM, Env, VMError
from repro.kernel import Kernel
from repro.measure.topology import LineTopology
from repro.netlink.codec import CodecError, unpack_attrs
from repro.netlink.messages import NetlinkMsg
from repro.netsim.packet import Packet, PacketError, make_udp

SIMPLE_OPS = [
    Op.MOV_IMM, Op.MOV_REG, Op.ADD_IMM, Op.ADD_REG, Op.SUB_IMM, Op.MUL_REG,
    Op.DIV_REG, Op.AND_IMM, Op.OR_REG, Op.LSH_IMM, Op.RSH_IMM, Op.NEG,
    Op.LDX, Op.STX, Op.ST_IMM, Op.JA, Op.JEQ_IMM, Op.JNE_REG, Op.JGT_IMM,
    Op.JSET_IMM, Op.CALL, Op.EXIT,
]

random_insns = st.lists(
    st.builds(
        Insn,
        op=st.sampled_from(SIMPLE_OPS),
        dst=st.integers(min_value=0, max_value=NUM_REGS - 1),
        src=st.integers(min_value=0, max_value=NUM_REGS - 1),
        off=st.integers(min_value=-16, max_value=16),
        imm=st.integers(min_value=-256, max_value=256),
    ),
    min_size=1,
    max_size=24,
)


class TestVerifierVmFuzz:
    @settings(max_examples=200, deadline=None)
    @given(insns=random_insns)
    def test_verifier_never_crashes(self, insns):
        program = Program("fuzz", insns, hook="xdp")
        try:
            verify(program)
        except VerifierError:
            pass  # rejection is the expected outcome for garbage

    @settings(max_examples=150, deadline=None)
    @given(insns=random_insns)
    def test_verified_programs_execute_safely(self, insns):
        """Anything the verifier accepts must run to completion or abort
        with VMError — no other exception, no hang."""
        program = Program("fuzz", insns, hook="xdp")
        try:
            verify(program)
        except VerifierError:
            return
        kernel = Kernel("fuzz")
        vm = VM(kernel, insn_limit=10_000)
        try:
            result = vm.run(program, [0, 0, 0], Env(kernel, 4))
            assert isinstance(result, int)
        except VMError:
            pass

    @settings(max_examples=100, deadline=None)
    @given(insns=random_insns)
    def test_unverified_execution_only_raises_vmerror(self, insns):
        """Even bypassing the verifier (as baselines may), the VM defends
        itself: VMError is the only failure mode."""
        program = Program("fuzz", insns, hook="xdp")
        kernel = Kernel("fuzz")
        vm = VM(kernel, insn_limit=10_000)
        try:
            vm.run(program, [0, 0, 0], Env(kernel, 4))
        except VMError:
            pass


class TestDecoderFuzz:
    @settings(max_examples=200, deadline=None)
    @given(data=st.binary(max_size=120))
    def test_attr_decoder_never_crashes(self, data):
        try:
            unpack_attrs(data)
        except CodecError:
            pass

    @settings(max_examples=200, deadline=None)
    @given(data=st.binary(max_size=120))
    def test_netlink_parse_never_crashes(self, data):
        try:
            NetlinkMsg.parse_stream(data)
        except CodecError:
            pass

    @settings(max_examples=300, deadline=None)
    @given(data=st.binary(max_size=120))
    def test_packet_parse_never_crashes(self, data):
        try:
            Packet.from_bytes(data)
        except PacketError:
            pass

    @settings(max_examples=100, deadline=None)
    @given(data=st.binary(min_size=14, max_size=200))
    def test_stack_survives_arbitrary_frames(self, data):
        """Garbage off the wire must never take the kernel down."""
        kernel = Kernel("fuzz")
        dev = kernel.add_physical("eth0")
        kernel.set_link("eth0", True)
        kernel.add_address("eth0", "10.0.0.1/24")
        dev.nic.receive_from_wire(bytes(data))  # must not raise

def _accelerated_dut(flow_cache):
    """A LineTopology DUT running the synthesized XDP fast path."""
    topo = LineTopology()
    topo.install_prefixes(4)
    Controller(topo.dut, hook="xdp", flow_cache=flow_cache).start()
    topo.prewarm_neighbors()
    out = []
    topo.sink_eth.nic.attach(lambda frame, q: out.append(frame))
    return topo, out


def _good_frame(topo):
    """A canonical forwardable UDP frame (the flow the cache will hold)."""
    return make_udp(
        topo.src_eth.mac, topo.dut_in.mac, "10.0.1.2",
        topo.flow_destination(0, 4), sport=1234, dport=53, ttl=32,
    ).to_bytes()


def _ipv4_payloads(frames):
    return [f[14:] for f in frames if f[12:14] == b"\x08\x00"]


class TestFlowCacheFuzz:
    """Hostile frames through the flow-cache path: the cache must fail open
    (bypass to the full program), never raise, and never serve a verdict
    recorded for a different packet (cache poisoning)."""

    @settings(max_examples=60, deadline=None)
    @given(data=st.lists(st.binary(min_size=0, max_size=200), min_size=1, max_size=6))
    def test_arbitrary_frames_never_raise_or_poison(self, data):
        on_topo, on_out = _accelerated_dut(flow_cache=True)
        off_topo, off_out = _accelerated_dut(flow_cache=False)
        good_on, good_off = _good_frame(on_topo), _good_frame(off_topo)
        # seed the cache with a legitimate flow, then batter it with garbage
        on_topo.dut_in.nic.receive_from_wire(good_on)
        off_topo.dut_in.nic.receive_from_wire(good_off)
        for frame in data:
            on_topo.dut_in.nic.receive_from_wire(bytes(frame))   # must not raise
            off_topo.dut_in.nic.receive_from_wire(bytes(frame))
        # the cached entry must still replay the *original* verdict
        on_topo.dut_in.nic.receive_from_wire(good_on)
        off_topo.dut_in.nic.receive_from_wire(good_off)
        assert _ipv4_payloads(on_out) == _ipv4_payloads(off_out)

    @settings(max_examples=80, deadline=None)
    @given(
        mutations=st.lists(
            st.tuples(st.integers(min_value=0, max_value=59), st.integers(min_value=0, max_value=255)),
            min_size=1,
            max_size=4,
        )
    )
    def test_mutations_of_cached_flow_frame(self, mutations):
        """Bit-flipped variants of a cached flow's frame must never be served
        that flow's cached actions: cache-on and cache-off agree exactly."""
        on_topo, on_out = _accelerated_dut(flow_cache=True)
        off_topo, off_out = _accelerated_dut(flow_cache=False)
        good_on, good_off = _good_frame(on_topo), _good_frame(off_topo)
        # hot cache: the entry for this exact flow exists and has been hit
        for _ in range(3):
            on_topo.dut_in.nic.receive_from_wire(good_on)
            off_topo.dut_in.nic.receive_from_wire(good_off)

        def mutate(frame):
            buf = bytearray(frame)
            for pos, val in mutations:
                buf[pos % len(buf)] = val
            return bytes(buf)

        on_topo.dut_in.nic.receive_from_wire(mutate(good_on))    # must not raise
        off_topo.dut_in.nic.receive_from_wire(mutate(good_off))
        assert _ipv4_payloads(on_out) == _ipv4_payloads(off_out)

    @settings(max_examples=60, deadline=None)
    @given(cut=st.integers(min_value=0, max_value=59))
    def test_truncated_frames_bypass_cleanly(self, cut):
        """Every truncation of a valid frame is handled without raising and
        agrees with the cache-off DUT."""
        on_topo, on_out = _accelerated_dut(flow_cache=True)
        off_topo, off_out = _accelerated_dut(flow_cache=False)
        good_on, good_off = _good_frame(on_topo), _good_frame(off_topo)
        on_topo.dut_in.nic.receive_from_wire(good_on)
        off_topo.dut_in.nic.receive_from_wire(good_off)
        on_topo.dut_in.nic.receive_from_wire(good_on[:cut])
        off_topo.dut_in.nic.receive_from_wire(good_off[:cut])
        assert _ipv4_payloads(on_out) == _ipv4_payloads(off_out)

    def test_unkeyable_garbage_never_enters_cache(self):
        """Frames that fail flow-key extraction are bypasses: they must not
        create cache entries, only bump the bypass counter."""
        topo, _ = _accelerated_dut(flow_cache=True)
        cache = topo.dut.flow_cache
        topo.dut_in.nic.receive_from_wire(_good_frame(topo))
        assert len(cache) == 1
        hostile = [
            b"",                                   # empty
            b"\x00" * 13,                          # shorter than an Ethernet header
            b"\xff" * 64,                          # broadcast garbage, bad ethertype
            _good_frame(topo)[:20],                # truncated mid-IP-header
            b"\x00" * 12 + b"\x08\x00" + b"\x46" + b"\x00" * 50,  # IHL != 5
        ]
        before = dict(cache.stats.bypasses)
        for frame in hostile:
            topo.dut_in.nic.receive_from_wire(frame)
        assert len(cache) == 1  # nothing new was recorded
        assert sum(cache.stats.bypasses.values()) > sum(before.values())

    def test_checksum_corruption_misses_cache(self):
        """A frame whose IP checksum is wrong must not hit the cached entry
        for the same 5-tuple — the kernel drops it on both paths."""
        on_topo, on_out = _accelerated_dut(flow_cache=True)
        off_topo, off_out = _accelerated_dut(flow_cache=False)
        good_on, good_off = _good_frame(on_topo), _good_frame(off_topo)
        on_topo.dut_in.nic.receive_from_wire(good_on)
        off_topo.dut_in.nic.receive_from_wire(good_off)

        def corrupt(frame):
            buf = bytearray(frame)
            buf[24] ^= 0xFF  # IP header checksum byte
            return bytes(buf)

        hits_before = dict(on_topo.dut.flow_cache.stats.hits)
        on_topo.dut_in.nic.receive_from_wire(corrupt(good_on))
        off_topo.dut_in.nic.receive_from_wire(corrupt(good_off))
        assert dict(on_topo.dut.flow_cache.stats.hits) == hits_before
        assert _ipv4_payloads(on_out) == _ipv4_payloads(off_out)


class TestProgramConstruction:
    def test_empty_program_rejected(self):
        with pytest.raises(ProgramError):
            Program("empty", [], hook="xdp")

    def test_bad_hook_rejected(self):
        with pytest.raises(ProgramError):
            Program("x", [Insn(Op.EXIT)], hook="socket")


class TestDifferentialFuzz:
    """The verifier's prize property, checked differentially: a program the
    range-tracking pass *accepts* can never fault memory at runtime. A
    fat-pointer violation (VMError) on an accepted program is a verifier
    soundness bug and fails the test — it is not an acceptable drop."""

    @settings(max_examples=300, deadline=None)
    @given(insns=random_insns, frame=st.binary(max_size=64))
    def test_accepted_programs_never_fault(self, insns, frame):
        from repro.ebpf.memory import Pointer, Region

        program = Program("fuzz", insns, hook="xdp")
        try:
            verify(program)
        except VerifierError:
            return
        kernel = Kernel("fuzz")
        vm = VM(kernel, insn_limit=10_000)
        region = Region("pkt", bytearray(frame))
        # run with the real hook ABI: r1=packet ptr, r2=length, r3=ifindex
        result = vm.run(program, [Pointer(region, 0), len(frame), 4], Env(kernel, 4))
        assert isinstance(result, int)

    def test_rejected_template_mutant_fails_closed(self):
        """Stripping the packet-length guard from a synthesized fast path
        makes the verifier reject it; deploy() degrades instead of serving
        the unsafe program, and traffic still forwards via the slow path."""
        from repro.core.synthesizer import SynthesizedPath
        from repro.ebpf.minic import compile_c

        topo = LineTopology()
        topo.install_prefixes(4)
        controller = Controller(topo.dut, hook="xdp", flow_cache=False)
        controller.start()
        topo.prewarm_neighbors()
        out = []
        topo.sink_eth.nic.attach(lambda frame, q: out.append(frame))

        deployer = controller.deployer
        ifname, entry = next(
            (name, e) for name, e in deployer.deployed.items() if e.current is not None
        )
        mutant_source = entry.current.source.replace("if (len < 34) { return 2; }", "")
        assert mutant_source != entry.current.source
        mutant = SynthesizedPath(
            ifname=ifname,
            program=compile_c(mutant_source, name="mutant", hook="xdp"),
            source=mutant_source,
            pruned_nfs=[],
        )

        assert deployer.deploy(mutant) is False
        failure = deployer.failures[ifname]
        assert failure.stage == "verify"
        assert failure.detail is not None
        assert failure.detail["code"] == "packet-out-of-bounds"

        topo.dut_in.nic.receive_from_wire(_good_frame(topo))
        assert out, "slow path must keep forwarding after a rejected deploy"
