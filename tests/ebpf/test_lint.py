"""Tests for the FPM lint pass and the fpmlint CI driver."""

import pytest

from repro.ebpf.analysis.lint import lint_program
from repro.ebpf.isa import Insn, Op, exit_, ldx, mov_imm
from repro.ebpf.maps import HashMap
from repro.ebpf.program import Program
from repro.ebpf.verifier import VerifierError


def prog(insns, maps=None, name="t"):
    return Program(name, insns, hook="xdp", maps=maps or [])


class TestLintFindings:
    def test_clean_program_has_no_findings(self):
        assert lint_program(prog([mov_imm(0, 0), exit_()])) == []

    def test_dead_code_reported(self):
        insns = [
            mov_imm(0, 0),
            exit_(),
            mov_imm(0, 1),  # unreachable
            exit_(),
        ]
        findings = lint_program(prog(insns))
        assert [f.code for f in findings] == ["dead-code", "dead-code"]
        assert findings[0].pc == 2

    def test_redundant_check_reported(self):
        # r0 = 5, then "if r0 > 3" can only be taken
        insns = [
            mov_imm(0, 5),
            Insn(Op.JGT_IMM, dst=0, imm=3, off=1),
            mov_imm(0, 0),  # dead: the branch is always taken
            exit_(),
        ]
        findings = lint_program(prog(insns))
        codes = {f.code for f in findings}
        assert "redundant-check" in codes
        redundant = next(f for f in findings if f.code == "redundant-check")
        assert redundant.pc == 1
        assert "always taken" in redundant.message

    def test_feasible_both_ways_not_flagged(self):
        insns = [
            Insn(Op.JEQ_IMM, dst=3, imm=7, off=2),  # r3 is an unknown scalar
            mov_imm(0, 0),
            exit_(),
            mov_imm(0, 1),
            exit_(),
        ]
        assert lint_program(prog(insns)) == []

    def test_unused_map_reported(self):
        unused = HashMap("stale", 4, 8)
        findings = lint_program(prog([mov_imm(0, 0), exit_()], maps=[unused]))
        assert [f.code for f in findings] == ["unused-map"]
        assert "stale" in findings[0].message

    def test_lint_requires_a_verifiable_program(self):
        with pytest.raises(VerifierError):
            lint_program(prog([ldx(0, 1, 0, 4), exit_()]))

    def test_finding_str_is_greppable(self):
        unused = HashMap("stale", 4, 8)
        (finding,) = lint_program(prog([mov_imm(0, 0), exit_()], maps=[unused]))
        assert str(finding) == "t: unused-map: map 'stale' (slot 0) is never referenced"


class TestFpmlintDriver:
    def test_template_library_is_clean(self):
        from repro.tools.fpmlint import lint_library

        checked, problems = lint_library()
        assert problems == []
        # every configuration × both hooks, plus the dispatcher
        assert checked == 14

    def test_main_exit_code(self, capsys):
        from repro.tools.fpmlint import main

        assert main([]) == 0
        assert "no findings" in capsys.readouterr().out
