"""Tests for the eBPF VM: ALU semantics, memory, calls, tail calls."""

import pytest

from repro.ebpf.isa import Insn, Op, call, exit_, ldx, mov_imm, mov_reg, stx
from repro.ebpf.maps import ProgArray
from repro.ebpf.memory import Pointer, Region
from repro.ebpf.program import Program
from repro.ebpf.vm import VM, Env, VMError, STACK_SIZE, TAIL_CALL_LIMIT
from repro.kernel import Kernel


@pytest.fixture
def kernel():
    return Kernel("vm-test")


def run(kernel, insns, args=None, maps=None, env=None):
    prog = Program("t", insns, hook="xdp", maps=maps or [])
    vm = VM(kernel)
    return vm.run(prog, args if args is not None else [0, 0, 0], env or Env(kernel, 4))


class TestAlu:
    def test_mov_and_exit(self, kernel):
        assert run(kernel, [mov_imm(0, 42), exit_()]) == 42

    def test_add_sub_wraparound(self, kernel):
        insns = [mov_imm(0, (1 << 64) - 1), Insn(Op.ADD_IMM, dst=0, imm=2), exit_()]
        assert run(kernel, insns) == 1

    def test_mul_div_mod(self, kernel):
        insns = [
            mov_imm(0, 100),
            Insn(Op.MUL_IMM, dst=0, imm=7),
            Insn(Op.DIV_IMM, dst=0, imm=3),   # 233
            Insn(Op.MOD_IMM, dst=0, imm=100),  # 33
            exit_(),
        ]
        assert run(kernel, insns) == 33

    def test_div_by_zero_yields_zero(self, kernel):
        insns = [mov_imm(0, 5), mov_imm(1, 0), Insn(Op.DIV_REG, dst=0, src=1), exit_()]
        assert run(kernel, insns) == 0

    def test_mod_by_zero_keeps_value(self, kernel):
        insns = [mov_imm(0, 5), mov_imm(1, 0), Insn(Op.MOD_REG, dst=0, src=1), exit_()]
        assert run(kernel, insns) == 5

    def test_bitwise_and_shifts(self, kernel):
        insns = [
            mov_imm(0, 0xF0),
            Insn(Op.OR_IMM, dst=0, imm=0x0F),
            Insn(Op.LSH_IMM, dst=0, imm=8),
            Insn(Op.RSH_IMM, dst=0, imm=4),
            Insn(Op.AND_IMM, dst=0, imm=0xFF0),
            exit_(),
        ]
        assert run(kernel, insns) == 0xFF0

    def test_shift_count_masked_to_63(self, kernel):
        insns = [mov_imm(0, 1), mov_imm(1, 64), Insn(Op.LSH_REG, dst=0, src=1), exit_()]
        assert run(kernel, insns) == 1  # 64 & 63 == 0

    def test_neg(self, kernel):
        insns = [mov_imm(0, 1), Insn(Op.NEG, dst=0), exit_()]
        assert run(kernel, insns) == (1 << 64) - 1


class TestControlFlow:
    def test_conditional_taken(self, kernel):
        insns = [
            mov_imm(0, 7),
            Insn(Op.JEQ_IMM, dst=0, imm=7, off=1),
            mov_imm(0, 0),
            exit_(),
        ]
        assert run(kernel, insns) == 7

    def test_conditional_not_taken(self, kernel):
        insns = [
            mov_imm(0, 7),
            Insn(Op.JEQ_IMM, dst=0, imm=8, off=1),
            mov_imm(0, 1),
            exit_(),
        ]
        assert run(kernel, insns) == 1

    def test_jset(self, kernel):
        insns = [
            mov_imm(0, 0b1010),
            Insn(Op.JSET_IMM, dst=0, imm=0b0010, off=1),
            mov_imm(0, 0),
            exit_(),
        ]
        assert run(kernel, insns) == 0b1010

    def test_uninitialized_register_read_aborts(self, kernel):
        with pytest.raises(VMError):
            run(kernel, [mov_reg(0, 5), exit_()], args=[])

    def test_exit_without_r0_aborts(self, kernel):
        with pytest.raises(VMError):
            run(kernel, [exit_()], args=[])

    def test_instruction_budget(self, kernel):
        # An infinite loop (the verifier would reject it; the VM must still
        # defend itself because the Polycube baseline bypasses our verifier).
        insns = [mov_imm(0, 0), Insn(Op.JA, off=-1), exit_()]
        vm = VM(kernel, insn_limit=1000)
        with pytest.raises(VMError):
            vm.run(Program("loop", insns, hook="xdp"), [0], Env(kernel, 4))


class TestMemory:
    def test_stack_store_load(self, kernel):
        insns = [
            mov_imm(1, 0xABCD),
            Insn(Op.STX, dst=10, src=1, off=-8, imm=8),
            ldx(0, 10, -8, 8),
            exit_(),
        ]
        assert run(kernel, insns) == 0xABCD

    def test_sized_access_big_endian(self, kernel):
        region = Region("pkt", bytearray(b"\x12\x34\x56\x78"))
        insns = [ldx(0, 1, 0, 2), exit_()]
        assert run(kernel, insns, args=[Pointer(region, 0)]) == 0x1234

    def test_packet_rewrite(self, kernel):
        region = Region("pkt", bytearray(4))
        insns = [Insn(Op.ST_IMM, dst=1, src=2, off=1, imm=0xBEEF), mov_imm(0, 0), exit_()]
        run(kernel, insns, args=[Pointer(region, 0)])
        assert bytes(region.data) == b"\x00\xbe\xef\x00"

    def test_out_of_bounds_load_aborts(self, kernel):
        region = Region("pkt", bytearray(4))
        insns = [ldx(0, 1, 2, 4), exit_()]
        with pytest.raises(VMError):
            run(kernel, insns, args=[Pointer(region, 0)])

    def test_store_through_scalar_aborts(self, kernel):
        insns = [mov_imm(1, 1234), Insn(Op.STX, dst=1, src=1, off=0, imm=8), exit_()]
        with pytest.raises(VMError):
            run(kernel, insns, args=[])

    def test_pointer_arithmetic(self, kernel):
        region = Region("pkt", bytearray(b"\x00\x00\x00\x2a"))
        insns = [Insn(Op.ADD_IMM, dst=1, imm=3), ldx(0, 1, 0, 1), exit_()]
        assert run(kernel, insns, args=[Pointer(region, 0)]) == 0x2A

    def test_negative_pointer_offset(self, kernel):
        region = Region("pkt", bytearray(b"\x11\x22"))
        insns = [
            Insn(Op.ADD_IMM, dst=1, imm=2),
            Insn(Op.ADD_IMM, dst=1, imm=-1),
            ldx(0, 1, 0, 1),
            exit_(),
        ]
        assert run(kernel, insns, args=[Pointer(region, 0)]) == 0x22

    def test_pointer_spill_to_stack(self, kernel):
        region = Region("pkt", bytearray(b"\x99"))
        insns = [
            Insn(Op.STX, dst=10, src=1, off=-8, imm=8),  # spill pointer
            ldx(2, 10, -8, 8),                            # reload it
            ldx(0, 2, 0, 1),
            exit_(),
        ]
        assert run(kernel, insns, args=[Pointer(region, 0)]) == 0x99

    def test_pointer_spill_to_packet_aborts(self, kernel):
        region = Region("pkt", bytearray(16))
        insns = [
            mov_reg(2, 1),
            Insn(Op.STX, dst=2, src=1, off=0, imm=8),  # spill pointer into packet
            mov_imm(0, 0),
            exit_(),
        ]
        with pytest.raises(VMError):
            run(kernel, insns, args=[Pointer(region, 0)])

    def test_pointer_pointer_arithmetic_aborts(self, kernel):
        region = Region("pkt", bytearray(8))
        insns = [mov_reg(2, 1), Insn(Op.ADD_REG, dst=1, src=2), mov_imm(0, 0), exit_()]
        with pytest.raises(VMError):
            run(kernel, insns, args=[Pointer(region, 0)])


class TestCosts:
    def test_per_instruction_cost_charged(self, kernel):
        t0 = kernel.clock.now_ns
        run(kernel, [mov_imm(0, 0), exit_()])
        elapsed = kernel.clock.now_ns - t0
        expected = kernel.costs.ebpf_prog_entry + 2 * kernel.costs.ebpf_insn
        assert elapsed == pytest.approx(expected, abs=1)

    def test_less_code_is_faster(self, kernel):
        """The paper's minimality thesis, at the VM level."""
        short = [mov_imm(0, 0), exit_()]
        long = [mov_imm(0, 0)] + [Insn(Op.ADD_IMM, dst=0, imm=0)] * 50 + [exit_()]
        t0 = kernel.clock.now_ns
        run(kernel, short)
        short_cost = kernel.clock.now_ns - t0
        t0 = kernel.clock.now_ns
        run(kernel, long)
        long_cost = kernel.clock.now_ns - t0
        assert long_cost > short_cost


class TestTailCalls:
    def make_target(self, value):
        return Program(f"target{value}", [mov_imm(0, value), exit_()], hook="xdp")

    def test_tail_call_jumps(self, kernel):
        jmp = ProgArray("jmp", max_entries=4)
        jmp.set_prog(1, self.make_target(99))
        insns = [
            Insn(Op.LD_MAP, dst=2, imm=0),
            mov_imm(3, 1),
            Insn(Op.TAIL_CALL),
            mov_imm(0, 0),  # not reached on successful tail call
            exit_(),
        ]
        assert run(kernel, insns, maps=[jmp]) == 99

    def test_empty_slot_falls_through(self, kernel):
        jmp = ProgArray("jmp", max_entries=4)
        insns = [
            Insn(Op.LD_MAP, dst=2, imm=0),
            mov_imm(3, 2),
            Insn(Op.TAIL_CALL),
            mov_imm(0, 7),
            exit_(),
        ]
        assert run(kernel, insns, maps=[jmp]) == 7

    def test_tail_call_charges_cost(self, kernel):
        jmp = ProgArray("jmp", max_entries=4)
        jmp.set_prog(0, self.make_target(1))
        insns = [
            Insn(Op.LD_MAP, dst=2, imm=0),
            mov_imm(3, 0),
            Insn(Op.TAIL_CALL),
            mov_imm(0, 0),
            exit_(),
        ]
        t0 = kernel.clock.now_ns
        run(kernel, insns, maps=[jmp])
        elapsed = kernel.clock.now_ns - t0
        assert elapsed >= kernel.costs.ebpf_tail_call

    def test_tail_call_depth_limit(self, kernel):
        jmp = ProgArray("jmp", max_entries=2)
        self_call = Program(
            "selfcall",
            [
                Insn(Op.LD_MAP, dst=2, imm=0),
                mov_imm(3, 0),
                Insn(Op.TAIL_CALL),
                mov_imm(0, 0),
                exit_(),
            ],
            hook="xdp",
            maps=[jmp],
        )
        jmp.set_prog(0, self_call)
        vm = VM(kernel)
        with pytest.raises(VMError, match="tail call limit"):
            vm.run(self_call, [0, 0, 0], Env(kernel, 4))

    def test_tail_call_resets_entry_args(self, kernel):
        region = Region("pkt", bytearray(b"\x55"))
        target = Program("reader", [ldx(0, 1, 0, 1), exit_()], hook="xdp")
        jmp = ProgArray("jmp", max_entries=1)
        jmp.set_prog(0, target)
        insns = [
            mov_imm(1, 0),  # clobber r1
            Insn(Op.LD_MAP, dst=2, imm=0),
            mov_imm(3, 0),
            Insn(Op.TAIL_CALL),
            mov_imm(0, 0),
            exit_(),
        ]
        # entry r1 = pointer; the tail-called program must see it again
        assert run(kernel, insns, args=[Pointer(region, 0)], maps=[jmp]) == 0x55


class TestHelpersViaVM:
    def test_unknown_helper_aborts(self, kernel):
        with pytest.raises(VMError):
            run(kernel, [call(999), exit_()])

    def test_helper_clobbers_arg_registers(self, kernel):
        from repro.ebpf.helpers import HELPER_IDS

        insns = [
            call(HELPER_IDS["ktime_get_ns"]),
            mov_reg(0, 1),  # r1 was clobbered by the call
            exit_(),
        ]
        with pytest.raises(VMError):
            run(kernel, insns, args=[0])

    def test_ktime_returns_clock(self, kernel):
        from repro.ebpf.helpers import HELPER_IDS

        kernel.clock.advance(5000)
        result = run(kernel, [call(HELPER_IDS["ktime_get_ns"]), exit_()])
        assert result >= 5000
