"""Observational equivalence of the batched+JIT fast path vs the interpreter.

Four layers of proof, from single programs up to the full pipeline:

1. **Corpus differential** — every FPM template config (the fpmlint matrix
   plus the prog-array dispatcher) runs a seeded mixed corpus (well-formed,
   truncated, garbage frames) through the JIT engine and a twin interpreter;
   verdicts, output frames, redirect targets, executed-insn counts, and
   abort types/messages must agree sample for sample.
2. **Cost parity** — with ``charge_costs=True`` the engine must advance the
   simulated clock by *exactly* the interpreter's nanoseconds, per config.
   Batching and JIT amortize host overhead, never simulated work.
3. **Property-based** — Hypothesis drives arbitrary byte strings (and
   structured mutations) through both sides of the router fast path and the
   tail-call dispatcher.
4. **End-to-end** — twin router topologies (batched+JIT vs per-frame
   interpreter) forward an identical traffic mix, including runs with armed
   data-plane faults; the conservation ledger, drop tables, per-NIC
   counters, and the simulated clock must match exactly.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ebpf.jit import JitEngine
from repro.ebpf.maps import ProgArray
from repro.ebpf.memory import Pointer, Region
from repro.ebpf.vm import VM, Env, VMError
from repro.kernel import Kernel
from repro.measure.scenarios import setup_router
from repro.netsim.packet import make_udp
from repro.testing import faults
from repro.tools.fpmopt import _compile, _programs, frame_corpus

CORPUS = frame_corpus(96, seed=7)


def _all_configs():
    """(name, freshly-compiled program) per template config; the dispatcher
    gets a populated prog array so tail calls actually chain."""
    out = []
    for label, hook, source, maps_kind in _programs():
        program = _compile(label, hook, source, maps_kind)
        if maps_kind:  # dispatcher: point slot 0 at a real fast path
            r_label, r_hook, r_source, _ = _programs()[0]
            target = _compile(r_label, hook, r_source if r_hook == hook else r_source, None)
            for m in program.maps:
                if isinstance(m, ProgArray):
                    m.set_prog(0, target)
        out.append((f"{label}@{hook}", program))
    return out


def _sample_interp(kernel, program, frame, charge):
    region = Region("pkt", bytearray(frame))
    env = Env(kernel, redirect_verdict=4)
    vm = VM(kernel, charge_costs=charge)
    try:
        verdict = vm.run(program, [Pointer(region, 0), len(frame), 1], env)
    except VMError as exc:
        return ("abort", str(exc), vm.insns_executed)
    return ("ok", int(verdict), bytes(region.data), env.redirect_ifindex, vm.insns_executed)


def _sample_jit(kernel, engine, program, frame, charge):
    region = Region("pkt", bytearray(frame))
    env = Env(kernel, redirect_verdict=4)
    try:
        verdict, executed = engine.execute(
            program, [Pointer(region, 0), len(frame), 1], env, charge_costs=charge
        )
    except VMError as exc:
        # the engine does not expose the count on abort; compare message only
        return ("abort", str(exc), None)
    return ("ok", int(verdict), bytes(region.data), env.redirect_ifindex, executed)


def _abort_tolerant_eq(a, b):
    if a[0] == "abort" and b[0] == "abort":
        return a[1] == b[1]
    return a == b


# -------------------------------------------------- corpus differential

@pytest.mark.parametrize("name,program", _all_configs(), ids=lambda v: v if isinstance(v, str) else "")
def test_corpus_differential(name, program):
    k_int, k_jit = Kernel("diff-int"), Kernel("diff-jit")
    engine = JitEngine(k_jit, enabled=True)
    for i, frame in enumerate(CORPUS):
        ref = _sample_interp(k_int, program, frame, charge=False)
        got = _sample_jit(k_jit, engine, program, frame, charge=False)
        assert _abort_tolerant_eq(got, ref), f"{name} packet {i}: {got!r} != {ref!r}"
    assert engine.stats["fallbacks"] == 0


@pytest.mark.parametrize("name,program", _all_configs(), ids=lambda v: v if isinstance(v, str) else "")
def test_cost_parity(name, program):
    """Acceptance: the JIT charges exactly the interpreter's nanoseconds."""
    k_int, k_jit = Kernel("cost-int"), Kernel("cost-jit")
    engine = JitEngine(k_jit, enabled=True)
    for i, frame in enumerate(CORPUS):
        before = (k_int.clock.now_ns, k_jit.clock.now_ns)
        try:
            _sample_interp(k_int, program, frame, charge=True)
        except faults.InjectedFault:  # pragma: no cover - no faults armed
            pass
        _sample_jit(k_jit, engine, program, frame, charge=True)
        charged_int = k_int.clock.now_ns - before[0]
        charged_jit = k_jit.clock.now_ns - before[1]
        assert charged_jit == charged_int, (
            f"{name} packet {i}: jit charged {charged_jit}ns, "
            f"interpreter {charged_int}ns"
        )
    assert engine.stats["jit_runs"] > 0


# ------------------------------------------------------ injected faults

def test_differential_under_armed_fault_sites():
    """Helper-boundary faults must abort identically on both sides: the
    JIT flushes its batched counters before every call, so an injected
    fault observes (and charges) exactly the interpreter's state."""
    configs = [c for c in _all_configs() if "router" in c[0] or "gateway" in c[0]]
    frame = CORPUS[0]
    for name, program in configs:
        for site in ("map_update",):
            def run(side_kernel, use_jit):
                with faults.injected(seed=11) as inj:
                    inj.arm(site, count=1)
                    if use_jit:
                        engine = JitEngine(side_kernel, enabled=True)
                        try:
                            out = _sample_jit(side_kernel, engine, program, frame, charge=True)
                        except faults.InjectedFault as exc:
                            out = ("fault", str(exc))
                    else:
                        try:
                            out = _sample_interp(side_kernel, program, frame, charge=True)
                        except faults.InjectedFault as exc:
                            out = ("fault", str(exc))
                return out

            k_int, k_jit = Kernel("fault-int"), Kernel("fault-jit")
            ref = run(k_int, use_jit=False)
            got = run(k_jit, use_jit=True)
            if ref[0] == "abort" and got[0] == "abort":
                assert got[1] == ref[1], f"{name}/{site}"
            else:
                assert got[:2] == ref[:2], f"{name}/{site}: {got!r} != {ref!r}"
            assert k_jit.clock.now_ns == k_int.clock.now_ns, f"{name}/{site}"


# ------------------------------------------------------- property-based

ROUTER = _all_configs()[0][1]
DISPATCHER = [p for n, p in _all_configs() if n.startswith("dispatcher@xdp")][0]


@settings(max_examples=60, deadline=None)
@given(frame=st.binary(min_size=0, max_size=128))
def test_property_arbitrary_bytes(frame):
    k_int, k_jit = Kernel("prop-int"), Kernel("prop-jit")
    engine = JitEngine(k_jit, enabled=True)
    ref = _sample_interp(k_int, ROUTER, frame, charge=True)
    got = _sample_jit(k_jit, engine, ROUTER, frame, charge=True)
    assert _abort_tolerant_eq(got, ref)
    assert k_jit.clock.now_ns == k_int.clock.now_ns


@settings(max_examples=40, deadline=None)
@given(
    dst_low=st.integers(min_value=0, max_value=0xFFFF),
    ttl=st.sampled_from([0, 1, 2, 64, 255]),
    cut=st.integers(min_value=0, max_value=80),
)
def test_property_structured_udp(dst_low, ttl, cut):
    pkt = make_udp(
        "02:00:00:00:00:01", "02:00:00:00:00:02",
        "10.0.1.2", f"10.100.{dst_low >> 8}.{dst_low & 0xFF}", dport=9, ttl=ttl,
    )
    frame = pkt.to_bytes()[: max(0, len(pkt.to_bytes()) - cut)]
    for program in (ROUTER, DISPATCHER):
        k_int, k_jit = Kernel("prop2-int"), Kernel("prop2-jit")
        engine = JitEngine(k_jit, enabled=True)
        ref = _sample_interp(k_int, program, frame, charge=True)
        got = _sample_jit(k_jit, engine, program, frame, charge=True)
        assert _abort_tolerant_eq(got, ref)
        assert k_jit.clock.now_ns == k_int.clock.now_ns


# ----------------------------------------------------------- end-to-end

def _drive(topo, packets=200, oddballs=True):
    nic = topo.dut_in.nic
    src_mac, dst_mac = topo.src_eth.mac, topo.dut_in.mac
    frames = []
    for i in range(packets):
        pkt = make_udp(
            src_mac, dst_mac, "10.0.1.2", topo.flow_destination(i % 32),
            sport=1024 + (i % 32), dport=9,
        )
        frames.append(pkt.to_bytes())
    if oddballs:
        frames.append(make_udp(src_mac, dst_mac, "10.0.1.2", "10.100.0.1", dport=9, ttl=1).to_bytes())
        frames.append(make_udp(src_mac, dst_mac, "10.0.1.2", "192.0.2.1", dport=9).to_bytes())
        frames.append(b"\x00" * 10)
    # NAPI-coalesced arrival in chunks: engages the batched drain
    for i in range(0, len(frames), 64):
        nic.receive_burst(frames[i:i + 64])


def _ledger(topo):
    stack = topo.dut.stack
    obs = topo.dut.observability
    return {
        "rx": stack.rx_packets,
        "tx_local": stack.tx_local_packets,
        "settled": stack.settled,
        "dropped": stack.dropped,
        "pending": stack.pending_packets(),
        "drops": obs.drops.table(),
        "dut_out_tx": topo.dut_out.nic.stats.tx_packets,
        "sink_rx": topo.sink_eth.nic.stats.rx_packets,
        "clock_ns": topo.dut.clock.now_ns,
    }


def test_end_to_end_batched_jit_matches_seed_interpreter(monkeypatch):
    # hermetic: an ambient kill switch must not disable the side under test
    monkeypatch.delenv("LINUXFP_NO_BATCH", raising=False)
    fast = setup_router("linuxfp", hook="xdp", jit=True)
    assert fast.dut.softirq.batching  # default on
    slow = setup_router("linuxfp", hook="xdp", jit=False)
    slow.dut.softirq.batching = False  # the seed per-frame drain

    _drive(fast)
    _drive(slow)

    ledger_fast, ledger_slow = _ledger(fast), _ledger(slow)
    assert ledger_fast == ledger_slow
    # conservation survives on both sides
    assert ledger_fast["rx"] + ledger_fast["tx_local"] == (
        ledger_fast["settled"] + ledger_fast["pending"]
    )
    # the fast side actually exercised the JIT + zero-copy machinery
    stats = fast.dut.jit.stats
    assert stats["jit_runs"] > 0
    assert stats["fallbacks"] == 0


def test_end_to_end_equivalence_under_data_plane_faults(monkeypatch):
    """With backlog-overflow faults armed (same seed both sides), the
    batched+JIT pipeline drops exactly the frames the seed pipeline drops
    and the ledger still balances."""
    monkeypatch.delenv("LINUXFP_NO_BATCH", raising=False)
    def run(jit_on):
        with faults.injected(seed=23) as inj:
            inj.arm("backlog_overflow", probability=0.05)
            topo = setup_router("linuxfp", hook="xdp", jit=jit_on)
            if not jit_on:
                topo.dut.softirq.batching = False
            _drive(topo, packets=150, oddballs=False)
            return _ledger(topo), inj.fired_at("backlog_overflow")

    ledger_fast, fired_fast = run(True)
    ledger_slow, fired_slow = run(False)
    assert fired_fast == fired_slow  # same chaos on both sides
    assert ledger_fast == ledger_slow
    assert ledger_fast["rx"] + ledger_fast["tx_local"] == (
        ledger_fast["settled"] + ledger_fast["pending"]
    )


def test_tc_hook_end_to_end_parity(monkeypatch):
    monkeypatch.delenv("LINUXFP_NO_BATCH", raising=False)
    fast = setup_router("linuxfp", hook="tc", jit=True)
    slow = setup_router("linuxfp", hook="tc", jit=False)
    slow.dut.softirq.batching = False
    _drive(fast, packets=120)
    _drive(slow, packets=120)
    assert _ledger(fast) == _ledger(slow)
