"""LRU hash map semantics and the map resilience surface.

``LruHashMap`` follows ``BPF_MAP_TYPE_LRU_HASH``: an insert into a full map
evicts the least-recently-used entry (lookups and updates both refresh
recency) instead of failing. The base-map additions this suite also covers:
schema tuples, freeze-for-migration, ``items()``/``clone_empty()``, and the
``update_errors`` pressure counter.
"""

import pytest

from repro.ebpf.maps import ArrayMap, HashMap, LpmTrieMap, LruHashMap, MapError
from repro.netsim.addresses import IPv4Addr


def k(i: int) -> bytes:
    return i.to_bytes(4, "little")


def v(i: int) -> bytes:
    return i.to_bytes(8, "little")


class TestLruSemantics:
    def test_insert_at_capacity_evicts_oldest(self):
        m = LruHashMap("lru", 4, 8, max_entries=3)
        for i in range(3):
            m.update(k(i), v(i))
        m.update(k(3), v(3))  # full: key 0 is the LRU entry
        assert m.lookup(k(0)) is None
        assert m.lookup(k(3)) == v(3)
        assert m.evictions == 1
        assert len(m) == 3

    def test_lookup_refreshes_recency(self):
        m = LruHashMap("lru", 4, 8, max_entries=3)
        for i in range(3):
            m.update(k(i), v(i))
        assert m.lookup(k(0)) == v(0)  # 0 becomes most recent
        m.update(k(3), v(3))  # evicts 1, not 0
        assert m.lookup(k(0)) == v(0)
        assert m.lookup(k(1)) is None

    def test_update_refreshes_recency(self):
        m = LruHashMap("lru", 4, 8, max_entries=3)
        for i in range(3):
            m.update(k(i), v(i))
        m.update(k(0), v(99))  # rewrite refreshes
        m.update(k(3), v(3))
        assert m.lookup(k(0)) == v(99)
        assert m.lookup(k(1)) is None

    def test_never_raises_map_full(self):
        m = LruHashMap("lru", 4, 8, max_entries=2)
        for i in range(100):
            m.update(k(i), v(i))
        assert len(m) == 2
        assert m.evictions == 98

    def test_from_hash_preserves_contents_and_schema_sizes(self):
        plain = HashMap("flows", 4, 8, max_entries=5)
        for i in range(3):
            plain.update(k(i), v(i))
        lru = LruHashMap.from_hash(plain)
        assert lru.name == "flows"
        assert (lru.key_size, lru.value_size, lru.max_entries) == (4, 8, 5)
        assert sorted(lru.items()) == sorted(plain.items())
        assert lru.map_type == "lru_hash"

    def test_plain_hash_still_rejects_at_capacity(self):
        m = HashMap("h", 4, 8, max_entries=1)
        m.update(k(0), v(0))
        with pytest.raises(MapError):
            m.update(k(1), v(1))


class TestMigrationSurface:
    def test_schema_tuple(self):
        assert HashMap("h", 4, 8, max_entries=16).schema() == ("hash", 4, 8, 1)
        assert LruHashMap("h", 4, 8, max_entries=16, schema_version=2).schema() == (
            "lru_hash", 4, 8, 2,
        )

    def test_frozen_refuses_writes_but_not_reads(self):
        m = HashMap("h", 4, 8)
        m.update(k(1), v(1))
        m.frozen = True
        assert m.lookup(k(1)) == v(1)
        with pytest.raises(MapError):
            m.update(k(2), v(2))
        with pytest.raises(MapError):
            m.delete(k(1))
        m.frozen = False
        m.update(k(2), v(2))

    def test_clone_empty_is_subclass_safe(self):
        lru = LruHashMap("lru", 4, 8, max_entries=3)
        lru.update(k(1), v(1))
        clone = lru.clone_empty()
        assert type(clone) is LruHashMap
        assert clone.schema() == lru.schema()
        assert len(clone) == 0

    def test_items_round_trip_every_map_type(self):
        maps = [
            HashMap("h", 4, 8),
            LruHashMap("lru", 4, 8),
            ArrayMap("a", 8, 4),
            LpmTrieMap("t", 8),
        ]
        for m in maps:
            if m.map_type == "lpm_trie":
                m.update(LpmTrieMap.make_key(24, IPv4Addr.parse("10.1.2.0")), v(7))
            else:
                m.update(k(1), v(7)[: m.value_size])
            clone = m.clone_empty()
            for key, value in m.items():
                clone.update(key, value)
            assert sorted(clone.items()) == sorted(m.items()), m.name


class TestArrayMapNullOnOutOfRange:
    def test_lookup_out_of_range_returns_none(self):
        # Regression: real BPF array lookup returns NULL past max_entries;
        # it used to raise MapError, aborting programs on a legal read.
        m = ArrayMap("a", 4, 2)
        assert m.lookup((2).to_bytes(4, "little")) is None
        assert m.lookup((2**32 - 1).to_bytes(4, "little")) is None

    def test_in_range_still_preinitialized_zero(self):
        m = ArrayMap("a", 4, 2)
        assert m.lookup((1).to_bytes(4, "little")) == b"\x00" * 4

    def test_writes_still_reject_out_of_range(self):
        m = ArrayMap("a", 4, 2)
        with pytest.raises(MapError):
            m.update((2).to_bytes(4, "little"), b"\x01" * 4)
        with pytest.raises(MapError):
            m.delete((2).to_bytes(4, "little"))
