"""Property-based tests: minic compilation vs direct evaluation, and the
LPM trie vs a naive reference implementation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ebpf.maps import LpmTrieMap
from repro.ebpf.minic import compile_c
from repro.ebpf.verifier import verify
from repro.ebpf.vm import VM, Env
from repro.kernel import Kernel
from repro.netsim.addresses import IPv4Addr

MASK64 = (1 << 64) - 1


# --- random arithmetic expressions compiled vs evaluated --------------------

class ExprNode:
    """A random expression over variables a, b, c with safe operators."""

    def __init__(self, text):
        self.text = text


@st.composite
def expressions(draw, depth=0):
    """A random expression as (text, ast) where ast is a nested tuple."""
    if depth >= 3 or draw(st.booleans()):
        choice = draw(st.integers(min_value=0, max_value=3))
        if choice == 0:
            value = draw(st.integers(min_value=0, max_value=0xFFFF))
            return str(value), ("num", value)
        name = draw(st.sampled_from(["a", "b", "c"]))
        return name, ("var", name)
    op = draw(st.sampled_from(["+", "-", "*", "&", "|", "^", ">>", "<<"]))
    left_text, left_ast = draw(expressions(depth=depth + 1))
    right_text, right_ast = draw(expressions(depth=depth + 1))
    if op == "<<":
        shift = draw(st.integers(min_value=0, max_value=8))
        right_text, right_ast = str(shift), ("num", shift)
    if op == ">>":
        shift = draw(st.integers(min_value=0, max_value=16))
        right_text, right_ast = str(shift), ("num", shift)
    return f"({left_text} {op} {right_text})", ("bin", op, left_ast, right_ast)


def eval_reference(ast, env):
    """Evaluate with eBPF's unsigned 64-bit wrap-around semantics, masking
    every intermediate (Python's >> on negatives is arithmetic; the VM's is
    logical on the masked word)."""
    kind = ast[0]
    if kind == "num":
        return ast[1] & MASK64
    if kind == "var":
        return env[ast[1]] & MASK64
    __, op, left_ast, right_ast = ast
    left = eval_reference(left_ast, env)
    right = eval_reference(right_ast, env)
    if op == "+":
        return (left + right) & MASK64
    if op == "-":
        return (left - right) & MASK64
    if op == "*":
        return (left * right) & MASK64
    if op == "&":
        return left & right
    if op == "|":
        return left | right
    if op == "^":
        return left ^ right
    if op == "<<":
        return (left << (right & 63)) & MASK64
    if op == ">>":
        return left >> (right & 63)
    raise AssertionError(op)


class TestMinicArithmeticProperty:
    @settings(max_examples=60, deadline=None)
    @given(
        expr=expressions(),
        a=st.integers(min_value=0, max_value=0xFFFFFFFF),
        b=st.integers(min_value=0, max_value=0xFFFFFFFF),
        c=st.integers(min_value=0, max_value=0xFFFF),
    )
    def test_compiled_matches_python(self, expr, a, b, c):
        text, ast = expr
        kernel = Kernel("prop")
        source = f"u32 main(u64 a, u64 b, u64 c) {{ return {text}; }}"
        program = compile_c(source)
        verify(program, entry_kinds=("scalar", "scalar", "scalar"))
        result = VM(kernel).run(program, [a, b, c], Env(kernel, 4))
        assert result == eval_reference(ast, {"a": a, "b": b, "c": c})

    @settings(max_examples=40, deadline=None)
    @given(
        a=st.integers(min_value=0, max_value=0xFFFFFFFF),
        b=st.integers(min_value=0, max_value=0xFFFFFFFF),
    )
    def test_comparison_chain_matches_python(self, a, b):
        kernel = Kernel("prop")
        source = """
        u32 main(u64 a, u64 b) {
            if (a < b) { return 1; }
            if (a == b) { return 2; }
            return 3;
        }
        """
        program = compile_c(source)
        result = VM(kernel).run(program, [a, b], Env(kernel, 4))
        assert result == (1 if a < b else 2 if a == b else 3)

    @settings(max_examples=40, deadline=None)
    @given(
        a=st.integers(min_value=0, max_value=0xFFFF),
        b=st.integers(min_value=0, max_value=0xFFFF),
    )
    def test_division_semantics(self, a, b):
        """eBPF: x/0 == 0, x%0 == x."""
        kernel = Kernel("prop")
        program = compile_c("u32 main(u64 a, u64 b) { return a / b + a % b; }")
        result = VM(kernel).run(program, [a, b], Env(kernel, 4))
        expected = (a // b + a % b) if b else (0 + a)
        assert result == (expected & MASK64)


# --- LPM trie vs naive reference ---------------------------------------------

def naive_lpm(entries, addr):
    best = None
    for length, prefix_value, value in entries:
        mask = 0 if length == 0 else (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF
        if (addr & mask) == (prefix_value & mask):
            if best is None or length > best[0]:
                best = (length, value)
    return best[1] if best else None


class TestLpmTrieProperty:
    @settings(max_examples=60, deadline=None)
    @given(
        entries=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=32),
                st.integers(min_value=0, max_value=0xFFFFFFFF),
                st.binary(min_size=4, max_size=4),
            ),
            max_size=16,
        ),
        probes=st.lists(st.integers(min_value=0, max_value=0xFFFFFFFF), min_size=1, max_size=8),
    )
    def test_matches_naive_reference(self, entries, probes):
        trie = LpmTrieMap("lpm", value_size=4, max_entries=64)
        # normalize duplicates the same way the trie does (last write wins)
        seen = {}
        for length, prefix_value, value in entries:
            mask = 0 if length == 0 else (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF
            seen[(length, prefix_value & mask)] = value
            trie.update(LpmTrieMap.make_key(length, IPv4Addr(prefix_value)), value)
        reference = [(length, prefix, value) for (length, prefix), value in seen.items()]
        for addr in probes:
            expected = naive_lpm(reference, addr)
            actual = trie.lookup(LpmTrieMap.make_key(32, IPv4Addr(addr)))
            assert actual == expected


# --- kernel FIB vs naive reference -------------------------------------------

class TestFibProperty:
    @settings(max_examples=50, deadline=None)
    @given(
        routes=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=32),
                st.integers(min_value=0, max_value=0xFFFFFFFF),
                st.integers(min_value=1, max_value=8),
            ),
            max_size=16,
        ),
        probes=st.lists(st.integers(min_value=0, max_value=0xFFFFFFFF), min_size=1, max_size=8),
    )
    def test_fib_matches_naive_lpm(self, routes, probes):
        from repro.kernel.fib import Fib, Route
        from repro.netsim.addresses import IPv4Prefix

        fib = Fib()
        seen = {}
        for length, value, oif in routes:
            prefix = IPv4Prefix(IPv4Addr(value), length)
            seen[(length, prefix.address.value)] = oif
            fib.add(Route(prefix=prefix, oif=oif))
        reference = [(length, prefix, oif) for (length, prefix), oif in seen.items()]
        for addr in probes:
            expected = naive_lpm(reference, addr)
            found = fib.lookup(IPv4Addr(addr))
            assert (found.oif if found else None) == expected
