"""Per-CPU map flavours: slot isolation, aggregate-on-read, migration.

The semantics under test mirror ``BPF_MAP_TYPE_PERCPU_*``: fast-path access
(inside a CPU context) touches only the executing CPU's slot; control-plane
reads aggregate the per-CPU values; control-plane writes make the written
value the aggregate. The Hypothesis property is the PR's correctness claim:
for any interleaving of per-CPU counter updates, aggregate-on-read equals
the true sum.
"""

from types import SimpleNamespace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ebpf.helpers import _charge_shared_map_write
from repro.ebpf.maps import (
    HashMap,
    LruHashMap,
    MapError,
    PercpuArrayMap,
    PercpuHashMap,
    PercpuLruHashMap,
)
from repro.kernel.kernel import Kernel
from repro.netsim.cpu import CpuSet


def k(i: int) -> bytes:
    return i.to_bytes(4, "little")


def v(i: int) -> bytes:
    return i.to_bytes(8, "big")


class TestPercpuHashSemantics:
    def test_in_context_access_is_slot_local(self):
        cpus = CpuSet(4)
        m = PercpuHashMap("ctrs", 4, 8, max_entries=16, num_cpus=4)
        with cpus.on(1):
            m.update(k(1), v(10))
        with cpus.on(3):
            m.update(k(1), v(32))
            assert m.lookup(k(1)) == v(32)  # own slot only
        with cpus.on(0):
            assert m.lookup(k(1)) is None  # never wrote here
        assert m.lookup_cpu(1, k(1)) == v(10)

    def test_control_plane_lookup_aggregates(self):
        cpus = CpuSet(4)
        m = PercpuHashMap("ctrs", 4, 8, max_entries=16, num_cpus=4)
        for cpu, inc in ((0, 5), (1, 7), (3, 30)):
            with cpus.on(cpu):
                m.update(k(1), v(inc))
        assert m.lookup(k(1)) == v(42)
        assert m.items() == [(k(1), v(42))]

    def test_aggregate_wraps_at_value_width(self):
        m = PercpuHashMap("ctrs", 4, 1, max_entries=4, num_cpus=2)
        m.update_cpu(0, k(1), bytes([200]))
        m.update_cpu(1, k(1), bytes([100]))
        assert m.lookup(k(1)) == bytes([44])  # (200+100) mod 256

    def test_control_plane_update_becomes_the_aggregate(self):
        cpus = CpuSet(2)
        m = PercpuHashMap("ctrs", 4, 8, max_entries=16, num_cpus=2)
        with cpus.on(1):
            m.update(k(1), v(99))
        m.update(k(1), v(7))  # control plane: reset the counter
        assert m.lookup(k(1)) == v(7)
        assert m.lookup_cpu(1, k(1)) is None

    def test_delete_removes_every_cpu(self):
        m = PercpuHashMap("ctrs", 4, 8, max_entries=16, num_cpus=3)
        for cpu in range(3):
            m.update_cpu(cpu, k(1), v(cpu))
        m.delete(k(1))
        assert m.lookup(k(1)) is None
        assert len(m) == 0

    def test_capacity_counts_distinct_keys_across_cpus(self):
        cpus = CpuSet(2)
        m = PercpuHashMap("ctrs", 4, 8, max_entries=2, num_cpus=2)
        with cpus.on(0):
            m.update(k(1), v(1))
        with cpus.on(1):
            m.update(k(1), v(1))  # same key: no new entry
            m.update(k(2), v(2))
        with cpus.on(0), pytest.raises(MapError):
            m.update(k(3), v(3))

    def test_from_hash_preserves_aggregates(self):
        src = HashMap("ctrs", 4, 8, max_entries=16)
        src.update(k(1), v(41))
        m = PercpuHashMap.from_hash(src, num_cpus=4)
        assert m.lookup(k(1)) == v(41)
        clone = m.clone_empty()
        assert clone.num_cpus == 4 and len(clone) == 0


class TestPercpuLru:
    def test_each_cpu_evicts_from_its_own_shard(self):
        cpus = CpuSet(2)
        m = PercpuLruHashMap("flows", 4, 8, max_entries=4, num_cpus=2)
        assert m.shard_budget == 2
        with cpus.on(0):
            m.update(k(1), v(1))
            m.update(k(2), v(2))
        with cpus.on(1):
            m.update(k(3), v(3))
        with cpus.on(0):
            m.update(k(4), v(4))  # CPU 0 at budget: evicts its own LRU (k1)
        assert m.evictions == 1
        assert m.lookup_cpu(0, k(1)) is None
        assert m.lookup_cpu(1, k(3)) == v(3)  # CPU 1's shard untouched

    def test_lookup_refreshes_recency_in_context(self):
        cpus = CpuSet(1)
        m = PercpuLruHashMap("flows", 4, 8, max_entries=2, num_cpus=1)
        with cpus.on(0):
            m.update(k(1), v(1))
            m.update(k(2), v(2))
            assert m.lookup(k(1)) == v(1)  # k1 now most recent
            m.update(k(3), v(3))
            assert m.lookup(k(2)) is None  # k2 was the LRU victim
            assert m.lookup(k(1)) == v(1)

    def test_from_lru_upgrade(self):
        src = LruHashMap("flows", 4, 8, max_entries=8)
        src.update(k(1), v(11))
        m = PercpuLruHashMap.from_lru(src, num_cpus=4)
        assert m.map_type == "percpu_lru_hash"
        assert m.lookup(k(1)) == v(11)


class TestPercpuArray:
    def test_slots_and_aggregate(self):
        cpus = CpuSet(2)
        m = PercpuArrayMap("stats", 8, max_entries=4, num_cpus=2)
        with cpus.on(0):
            m.update(k(2), v(10))
        with cpus.on(1):
            m.update(k(2), v(5))
            assert m.lookup(k(2)) == v(5)
        assert m.lookup(k(2)) == v(15)  # control plane sums

    def test_missing_index_aggregates_to_zero_not_none(self):
        m = PercpuArrayMap("stats", 8, max_entries=2, num_cpus=2)
        assert m.lookup(k(1)) == v(0)  # arrays are pre-populated

    def test_out_of_bounds(self):
        m = PercpuArrayMap("stats", 8, max_entries=2, num_cpus=2)
        assert m.lookup(k(7)) is None  # OOB read is NULL
        with pytest.raises(MapError):
            m.update(k(7), v(1))
        m.delete(k(1))  # in-bounds delete zeroes
        assert m.lookup(k(1)) == v(0)

    def test_control_update_zeroes_other_cpus(self):
        cpus = CpuSet(2)
        m = PercpuArrayMap("stats", 8, max_entries=2, num_cpus=2)
        with cpus.on(1):
            m.update(k(0), v(9))
        m.update(k(0), v(3))
        assert m.lookup(k(0)) == v(3)


# ---------------------------------------------------------- hotplug drain

class TestDrainCpu:
    """``drain_cpu``: rehoming a dead CPU's slot values onto a live CPU.

    The contract: control-plane aggregates are identical before and after
    (a drain moves values, never drops or duplicates them), and a value
    moves only when the move is safe — the target has no value for that key
    and (for the LRU flavour) room in its shard budget. Stranded values are
    fine; clobbered or evicted live ones are not.
    """

    def test_hash_moves_only_unclaimed_keys(self):
        m = PercpuHashMap("ctrs", 4, 8, max_entries=16, num_cpus=4)
        m.update_cpu(1, k(1), v(10))  # only on the dead CPU: moves
        m.update_cpu(1, k(2), v(20))  # target has k2 too: stays
        m.update_cpu(0, k(2), v(5))
        before = {key: val for key, val in m.items()}
        assert m.drain_cpu(1, 0) == 1
        assert m.lookup_cpu(0, k(1)) == v(10)
        assert m.lookup_cpu(1, k(1)) is None
        assert m.lookup_cpu(1, k(2)) == v(20)  # stranded, not clobbered
        assert {key: val for key, val in m.items()} == before  # aggregates

    def test_drain_into_itself_is_a_noop(self):
        m = PercpuHashMap("ctrs", 4, 8, max_entries=16, num_cpus=4)
        m.update_cpu(1, k(1), v(10))
        assert m.drain_cpu(1, 1) == 0
        assert m.lookup_cpu(1, k(1)) == v(10)

    def test_lru_never_evicts_live_target_entries(self):
        m = PercpuLruHashMap("flows", 4, 8, max_entries=8, num_cpus=4)
        assert m.shard_budget == 2
        m.update_cpu(0, k(1), v(1))  # target at budget
        m.update_cpu(0, k(2), v(2))
        m.update_cpu(1, k(3), v(3))
        m.update_cpu(1, k(4), v(4))
        assert m.drain_cpu(1, 0) == 0  # no room: everything strands
        assert m.evictions == 0
        assert m.lookup_cpu(0, k(1)) == v(1)
        assert m.lookup_cpu(1, k(3)) == v(3)  # still readable in aggregate
        assert m.lookup(k(3)) == v(3)

    def test_lru_moves_up_to_the_shard_budget(self):
        m = PercpuLruHashMap("flows", 4, 8, max_entries=8, num_cpus=4)
        m.update_cpu(1, k(1), v(1))
        m.update_cpu(1, k(2), v(2))
        m.update_cpu(0, k(3), v(3))  # one free slot on the target
        assert m.drain_cpu(1, 0) == 1
        assert len(m._cpu_data[0]) == 2  # at budget, no eviction

    def test_array_moves_into_zero_slots_only(self):
        m = PercpuArrayMap("stats", 8, max_entries=4, num_cpus=2)
        m.update_cpu(1, k(0), v(10))  # target slot zero: moves
        m.update_cpu(1, k(1), v(20))  # target slot occupied: stays
        m.update_cpu(0, k(1), v(5))
        aggregate_before = [m.lookup(k(i)) for i in range(4)]
        assert m.drain_cpu(1, 0) == 1
        assert m.lookup_cpu(0, k(0)) == v(10)
        assert m.lookup_cpu(1, k(0)) == v(0)
        assert m.lookup_cpu(1, k(1)) == v(20)
        assert [m.lookup(k(i)) for i in range(4)] == aggregate_before


# ------------------------------------------------------------- contention

class TestSharedMapContentionCharge:
    """The modeled cross-CPU cost: mutating a *shared* map from a multi-core
    data path pays ``cross_cpu_lock``; per-CPU flavours pay nothing."""

    def charge_ns(self, kernel, bpf_map, cpu=None):
        env = SimpleNamespace(kernel=kernel)
        before = kernel.cpus.total_busy_ns
        if cpu is None:
            _charge_shared_map_write(env, bpf_map)
        else:
            with kernel.cpus.on(cpu):
                _charge_shared_map_write(env, bpf_map)
        return kernel.cpus.total_busy_ns - before

    def test_shared_map_write_pays_on_multicore_data_path(self):
        kernel = Kernel("dut", num_cores=4)
        shared = HashMap("ct", 4, 8, max_entries=8)
        assert self.charge_ns(kernel, shared, cpu=2) == kernel.costs.cross_cpu_lock

    def test_percpu_map_and_control_plane_pay_nothing(self):
        kernel = Kernel("dut", num_cores=4)
        percpu = PercpuHashMap("ctrs", 4, 8, max_entries=8, num_cpus=4)
        assert self.charge_ns(kernel, percpu, cpu=2) == 0
        shared = HashMap("ct", 4, 8, max_entries=8)
        assert self.charge_ns(kernel, shared, cpu=None) == 0  # control plane

    def test_single_core_kernel_pays_nothing(self):
        kernel = Kernel("dut", num_cores=1)
        shared = HashMap("ct", 4, 8, max_entries=8)
        assert self.charge_ns(kernel, shared, cpu=0) == 0


# ------------------------------------------------- the aggregation property

op = st.tuples(
    st.integers(0, 3),            # executing CPU
    st.integers(0, 5),            # key
    st.integers(1, 1000),         # increment
)


class TestAggregationProperty:
    @settings(max_examples=60, deadline=None)
    @given(ops=st.lists(op, min_size=1, max_size=60))
    def test_aggregate_on_read_equals_true_sum(self, ops):
        """Fetch-add counters from any CPU interleaving sum exactly."""
        cpus = CpuSet(4)
        m = PercpuHashMap("ctrs", 4, 8, max_entries=16, num_cpus=4)
        true_sum = {}
        per_cpu = {}
        for cpu, key, inc in ops:
            with cpus.on(cpu):
                cur = m.lookup(k(key))
                cur = int.from_bytes(cur, "big") if cur else 0
                m.update(k(key), v(cur + inc))
            true_sum[key] = true_sum.get(key, 0) + inc
            per_cpu[(cpu, key)] = per_cpu.get((cpu, key), 0) + inc
        for key, total in true_sum.items():
            assert m.lookup(k(key)) == v(total)  # control-plane aggregate
        for (cpu, key), total in per_cpu.items():
            with cpus.on(cpu):
                assert m.lookup(k(key)) == v(total)  # slot view

    @settings(max_examples=40, deadline=None)
    @given(ops=st.lists(op, min_size=1, max_size=40))
    def test_array_aggregate_matches(self, ops):
        cpus = CpuSet(4)
        m = PercpuArrayMap("stats", 8, max_entries=6, num_cpus=4)
        true_sum = {}
        for cpu, idx, inc in ops:
            with cpus.on(cpu):
                cur = int.from_bytes(m.lookup(k(idx)), "big")
                m.update(k(idx), v(cur + inc))
            true_sum[idx] = true_sum.get(idx, 0) + inc
        for idx, total in true_sum.items():
            assert m.lookup(k(idx)) == v(total)
