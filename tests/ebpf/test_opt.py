"""Tests for the equivalence-checked bytecode superoptimizer.

Covers the proof obligation (symbolic + differential window checking, with
the acceptance-required regression that an unsound rewrite is *refuted* and
leaves a counterexample), the rewrite catalog, branch folding from the
verifier's range facts, the fail-closed fallback, the shared DCE pass, and
the full 14-config template sweep with whole-program differential replay.
"""

import pytest

from repro.ebpf.analysis.opt import (
    Counterexample,
    Rule,
    check_window,
    default_rules,
    eliminate_unreachable,
    optimize_program,
    remove_insns,
)
from repro.ebpf.analysis.opt.equiv import PROVEN, REFUTED, UNPROVEN
from repro.ebpf.isa import R10, Insn, Op, call, exit_, ldx, mov_imm, mov_reg, stx
from repro.ebpf.memory import Pointer, Region
from repro.ebpf.program import Program
from repro.ebpf.verifier import verify
from repro.ebpf.vm import VM, Env
from repro.kernel import Kernel
from repro.testing import faults
from repro.tools.fpmopt import run_audit


def prog(insns, name="opt-test", hook="xdp"):
    return Program(name=name, insns=list(insns), hook=hook)


def run_scalar(program, r3=0, frame=b"\x00" * 64):
    """Execute with the standard entry ABI; returns the r0 verdict."""
    kernel = Kernel("opt-vm")
    region = Region("pkt", bytearray(frame))
    env = Env(kernel, redirect_verdict=4)
    vm = VM(kernel, charge_costs=False)
    return vm.run(program, [Pointer(region, 0), len(frame), r3], env)


# ------------------------------------------------------- equivalence checker

class TestCheckWindow:
    def test_identity_add_zero_proven(self):
        result = check_window([Insn(Op.ADD_IMM, dst=1, imm=0)], [])
        assert result.verdict == PROVEN

    def test_strength_reduction_proven(self):
        result = check_window(
            [Insn(Op.MUL_IMM, dst=1, imm=8)], [Insn(Op.LSH_IMM, dst=1, imm=3)]
        )
        assert result.verdict == PROVEN

    def test_store_load_forward_proven(self):
        original = [stx(R10, 3, -8, 8), ldx(4, R10, -8, 8)]
        candidate = [stx(R10, 3, -8, 8), mov_reg(4, 3)]
        assert check_window(original, candidate).verdict == PROVEN

    def test_unsound_drop_refuted_with_counterexample(self):
        """x + 1 is not x: the checker must find a concrete witness."""
        result = check_window([Insn(Op.ADD_IMM, dst=1, imm=1)], [], rule="bogus", pc=7)
        assert result.verdict == REFUTED
        cex = result.counterexample
        assert isinstance(cex, Counterexample)
        assert cex.rule == "bogus" and cex.pc == 7
        assert cex.expected != cex.got
        as_dict = cex.to_dict()
        assert {"rule", "pc", "stage", "inputs", "expected", "got"} <= set(as_dict)

    def test_wrong_shift_refuted(self):
        result = check_window(
            [Insn(Op.MUL_IMM, dst=1, imm=8)], [Insn(Op.LSH_IMM, dst=1, imm=2)]
        )
        assert result.verdict == REFUTED

    def test_narrow_store_wide_load_not_proven(self):
        """Forwarding across a width mismatch would read stack garbage."""
        original = [stx(R10, 3, -8, 4), ldx(4, R10, -8, 8)]
        candidate = [stx(R10, 3, -8, 4), mov_reg(4, 3)]
        assert check_window(original, candidate).verdict != PROVEN

    def test_unsupported_window_unproven(self):
        result = check_window([call(1)], [])
        assert result.verdict == UNPROVEN

    def test_pointer_only_divergence_is_unproven_not_refuted(self):
        """mul-by-1 elision aborts iff the operand is a pointer — a state
        the verifier excludes but the isolated window cannot. The checker
        must decline (no false 'unsound rule' alarm), not refute."""
        result = check_window([Insn(Op.MUL_IMM, dst=1, imm=1)], [])
        assert result.verdict == UNPROVEN
        assert result.counterexample is None


# --------------------------------------------------------------- the catalog

class TestRules:
    def test_identity_eliminated(self):
        p = prog([mov_reg(0, 3), Insn(Op.ADD_IMM, dst=0, imm=0), exit_()])
        optimized, report = optimize_program(p)
        assert report.status == "optimized"
        assert len(optimized) == 2
        assert report.applied.get("identity") == 1
        assert run_scalar(optimized, r3=41) == run_scalar(p, r3=41) == 41

    def test_strength_reduction_applied(self):
        p = prog([mov_reg(0, 3), Insn(Op.MUL_IMM, dst=0, imm=8), exit_()])
        optimized, report = optimize_program(p)
        assert report.applied.get("strength-reduction") == 1
        assert any(i.op is Op.LSH_IMM for i in optimized.insns)
        for value in (0, 3, 1 << 61):
            assert run_scalar(optimized, r3=value) == run_scalar(p, r3=value)

    def test_spill_reload_collapses(self):
        """minic's signature pattern: spill, reload, use — forwarded then
        the store (now dead in this window-local program) survives, but the
        reload is gone."""
        p = prog(
            [
                mov_reg(6, 3),
                stx(R10, 6, -8, 8),
                ldx(7, R10, -8, 8),
                mov_reg(0, 7),
                exit_(),
            ]
        )
        optimized, report = optimize_program(p)
        assert report.status == "optimized"
        assert len(optimized) < len(p)
        assert report.applied.get("store-load-forward") == 1
        assert run_scalar(optimized, r3=99) == 99

    def test_every_rewrite_is_checked(self):
        """Each applied rule corresponds to a proven window, never a guess."""
        p = prog([mov_reg(0, 3), Insn(Op.DIV_IMM, dst=0, imm=4), exit_()])
        optimized, report = optimize_program(p)
        assert not report.rejected
        assert sum(report.applied.values()) >= 1
        verify(optimized)  # idempotent: the shipped body re-verifies


# -------------------------------------- acceptance: unsound rewrite rejected

class TestUnsoundRuleRejected:
    def test_bogus_rule_refuted_and_not_applied(self):
        """A deliberately unsound catalog entry (claims x+1 == x) must be
        rejected by the equivalence checker, recorded with a counterexample,
        and must not change the program."""

        def match_bogus(insns, pc):
            insn = insns[pc]
            if insn.op is Op.ADD_IMM and insn.imm == 1:
                return (1, [])
            return None

        p = prog([mov_reg(0, 3), Insn(Op.ADD_IMM, dst=0, imm=1), exit_()])
        optimized, report = optimize_program(p, rules=[Rule("bogus-inc-elide", match_bogus)])
        assert report.status == "unchanged"
        assert [i.op for i in optimized.insns] == [i.op for i in p.insns]
        assert len(report.rejected) == 1
        cex = report.rejected[0]
        assert cex.rule == "bogus-inc-elide"
        assert cex.stage in ("abstract", "concrete")
        assert cex.expected != cex.got
        assert run_scalar(optimized, r3=5) == 6

    def test_bogus_rule_alongside_sound_ones(self):
        """The refuted candidate does not poison sound rewrites elsewhere."""

        def match_bogus(insns, pc):
            if insns[pc].op is Op.ADD_IMM and insns[pc].imm == 1:
                return (1, [])
            return None

        p = prog(
            [
                mov_reg(0, 3),
                Insn(Op.ADD_IMM, dst=0, imm=1),
                Insn(Op.ADD_IMM, dst=0, imm=0),  # sound: identity
                exit_(),
            ]
        )
        rules = [Rule("bogus-inc-elide", match_bogus)] + default_rules()
        optimized, report = optimize_program(p, rules=rules)
        assert report.status == "optimized"
        assert len(report.rejected) == 1
        assert report.applied.get("identity") == 1
        assert run_scalar(optimized, r3=5) == 6


# ------------------------------------------------------------ branch folding

class TestBranchFolding:
    def test_constant_branch_folds_and_dead_arm_removed(self):
        p = prog(
            [
                mov_imm(0, 4),
                Insn(Op.JEQ_IMM, dst=0, imm=4, off=1),  # always taken
                mov_imm(0, 7),  # unreachable once folded
                exit_(),
            ]
        )
        optimized, report = optimize_program(p)
        assert report.status == "optimized"
        assert report.folded_branches == 1
        assert len(optimized) < len(p)
        assert run_scalar(optimized) == 4

    def test_live_branch_untouched(self):
        p = prog(
            [
                mov_reg(0, 3),
                Insn(Op.JEQ_IMM, dst=0, imm=4, off=1),
                exit_(),
                mov_imm(0, 7),
                exit_(),
            ]
        )
        optimized, report = optimize_program(p)
        assert report.folded_branches == 0
        assert run_scalar(optimized, r3=4) == 7
        assert run_scalar(optimized, r3=5) == 5


# ---------------------------------------------------------------- fail-closed

class TestFailClosed:
    def test_injected_fault_falls_back_to_original(self):
        p = prog([mov_reg(0, 3), Insn(Op.ADD_IMM, dst=0, imm=0), exit_()])
        with faults.injected(seed=3) as inj:
            inj.arm("optimize", count=1)
            optimized, report = optimize_program(p)
        assert report.status == "fallback"
        assert "InjectedFault" in report.error
        assert optimized is p
        assert inj.fired_at("optimize")

    def test_reverification_failure_falls_back(self, monkeypatch):
        """If the optimized body flunks the verifier, ship the original."""
        import repro.ebpf.analysis.opt.engine as engine

        def reject(program, *args, **kwargs):
            raise faults.InjectedFault("verify", program.name)

        monkeypatch.setattr(engine, "verify", reject)
        p = prog([mov_reg(0, 3), Insn(Op.ADD_IMM, dst=0, imm=0), exit_()])
        optimized, report = optimize_program(p)
        assert report.status == "fallback"
        assert optimized is p
        verify(optimized)  # the fallback program is still the verified one

    def test_unchanged_program_reported(self):
        p = prog([mov_reg(0, 3), exit_()])
        optimized, report = optimize_program(p)
        assert report.status == "unchanged"
        assert optimized is p


# --------------------------------------------------------------- shared DCE

class TestSharedDce:
    def test_unreachable_tail_removed(self):
        insns = [mov_imm(0, 1), exit_(), mov_imm(0, 2), exit_()]
        kept = eliminate_unreachable(insns)
        assert len(kept) == 2

    def test_jump_retargeting(self):
        insns = [
            Insn(Op.JA, off=1),
            mov_imm(0, 9),  # dead: jumped over, no fallthrough in
            mov_imm(0, 1),
            exit_(),
        ]
        kept = remove_insns(insns, {1})
        assert len(kept) == 3
        assert kept[0].op is Op.JA and kept[0].off == 0

    def test_codegen_emits_dce_clean_bytecode(self):
        """compile_c now routes through the shared pass: nothing left over."""
        from repro.ebpf.minic import compile_c

        program = compile_c(
            "u32 main() { if (1) { return 2; } return 3; }", name="dce@xdp", hook="xdp"
        )
        assert eliminate_unreachable(program.insns) == program.insns


# --------------------------------- template sweep + whole-program differential

class TestTemplateSweep:
    @pytest.fixture(scope="class")
    def audit(self):
        return run_audit(packets=24, seed=7)

    def test_net_reduction_on_at_least_five_configs(self, audit):
        assert audit["totals"]["configs"] == 14
        assert audit["totals"]["reduced"] >= 5
        assert audit["totals"]["insns_after"] < audit["totals"]["insns_before"]

    def test_no_fallbacks_no_counterexamples(self, audit):
        assert audit["failures"] == []
        for entry in audit["configs"]:
            assert entry["status"] in ("optimized", "unchanged")
            assert entry["rejected"] == 0

    def test_differential_identical_on_fuzzed_packets(self, audit):
        for entry in audit["configs"]:
            assert entry["differential_mismatches"] == 0
            assert entry["differential_packets"] == 24

    def test_dynamic_cost_never_regresses(self, audit):
        for entry in audit["configs"]:
            assert entry["executed_per_packet_after"] <= entry["executed_per_packet_before"]


# ------------------------------------------------------- control-plane wiring

class TestPipeline:
    def test_env_opt_in(self, monkeypatch):
        from repro.core.synthesizer import Synthesizer

        monkeypatch.delenv("LINUXFP_OPT", raising=False)
        assert Synthesizer().optimize is False
        monkeypatch.setenv("LINUXFP_OPT", "1")
        assert Synthesizer().optimize is True
        assert Synthesizer(optimize=False).optimize is False

    def test_controller_deploys_optimized_paths(self):
        from repro.measure.scenarios import setup_router

        topo = setup_router("linuxfp", optimize=True)
        summary = topo.controller.deployer.optimizer_summary()
        assert summary, "expected deployed interfaces"
        for info in summary.values():
            assert info["status"] == "optimized"
            assert info["insns_removed"] > 0
            assert info["rejected"] == 0
        snapshot = topo.controller.metrics().snapshot()
        assert snapshot["controller"]["optimizer"] == summary
        prom = topo.controller.metrics().to_prometheus()
        assert "linuxfp_optimizer_insns_removed" in prom

    def test_optimizer_fault_raises_incident_but_still_serves(self):
        from repro.measure.scenarios import setup_router

        with faults.injected(seed=11) as inj:
            inj.arm("optimize")  # every optimization attempt fails
            topo = setup_router("linuxfp", optimize=True)
        kinds = {i.kind for i in topo.controller.incidents}
        assert "optimizer-fallback" in kinds
        for entry in topo.controller.deployer.deployed.values():
            assert entry.current is not None  # fail-closed: still on fast path
            assert entry.current.opt_report.status == "fallback"

    def test_baseline_summary_without_optimizer(self):
        from repro.measure.scenarios import setup_router

        topo = setup_router("linuxfp", optimize=False)
        for info in topo.controller.deployer.optimizer_summary().values():
            assert info["status"] == "baseline"
            assert info["insns_removed"] == 0
