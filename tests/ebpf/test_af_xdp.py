"""Tests for the AF_XDP-style userspace path."""

import pytest

from repro.ebpf.af_xdp import XskMap, XskSocket
from repro.ebpf.loader import Loader
from repro.ebpf.maps import MapError
from repro.ebpf.minic import compile_c
from repro.kernel import Kernel
from repro.netsim.packet import Packet, make_udp

XSK_PROG = """
extern map xsks;
u32 main(u8* pkt, u64 len, u64 ifindex) {
    // steer UDP port 9000 to userspace; everything else to the stack
    if (len < 38) { return 2; }
    if (ld16(pkt, 12) != 0x0800) { return 2; }
    if (ld8(pkt, 23) != 17) { return 2; }
    if (ld16(pkt, 36) != 9000) { return 2; }
    return redirect_xsk(xsks, 0, 2);
}
"""


@pytest.fixture
def setup():
    kernel = Kernel("xsk-test")
    dev = kernel.add_physical("eth0")
    kernel.set_link("eth0", True)
    kernel.add_address("eth0", "10.0.0.1/24")
    xsks = XskMap("xsks")
    socket = XskSocket(kernel, dev.ifindex)
    xsks.set_socket(0, socket)
    loader = Loader(kernel)
    attachment = loader.load(compile_c(XSK_PROG, name="xsk", hook="xdp", maps={"xsks": xsks}))
    loader.attach_xdp("eth0", attachment)
    return kernel, dev, socket


def frame_for(dev, dport):
    return make_udp("02:aa:00:00:00:01", dev.mac, "10.0.0.2", "10.0.0.1", dport=dport).to_bytes()


class TestAfXdp:
    def test_matching_traffic_reaches_userspace(self, setup):
        kernel, dev, socket = setup
        dev.nic.receive_from_wire(frame_for(dev, 9000))
        frames = socket.recv()
        assert len(frames) == 1
        assert Packet.from_bytes(frames[0]).l4.dport == 9000
        # consumed by the socket, NOT counted as a drop
        assert kernel.stack.drops.get("xdp_drop", 0) == 0

    def test_other_traffic_passes_to_stack(self, setup):
        kernel, dev, socket = setup
        dev.nic.receive_from_wire(frame_for(dev, 53))
        assert socket.recv() == []
        assert kernel.stack.drops["no_socket"] == 1  # reached local delivery

    def test_empty_slot_falls_back(self, setup):
        kernel, dev, socket = setup
        # unbind the socket: the helper returns the fallback verdict (PASS)
        xsks_map = dev.xdp_prog.program.maps[0]
        xsks_map.delete((0).to_bytes(4, "little"))
        dev.nic.receive_from_wire(frame_for(dev, 9000))
        assert socket.recv() == []
        assert kernel.stack.drops["no_socket"] == 1

    def test_ring_overflow_counted(self, setup):
        kernel, dev, socket = setup
        socket.ring_size = 2
        for __ in range(5):
            dev.nic.receive_from_wire(frame_for(dev, 9000))
        assert len(socket.recv()) == 2
        assert socket.rx_dropped == 3

    def test_userspace_transmit(self, setup):
        kernel, dev, socket = setup
        sent = []
        from repro.netsim.nic import NIC, Wire

        peer = NIC("peer")
        Wire(dev.nic, peer)
        peer.attach(lambda frame, q: sent.append(frame))
        socket.send(b"\x00" * 60)
        assert sent == [b"\x00" * 60]
        assert socket.tx_packets == 1

    def test_recv_budget(self, setup):
        kernel, dev, socket = setup
        for __ in range(10):
            dev.nic.receive_from_wire(frame_for(dev, 9000))
        assert len(socket.recv(budget=4)) == 4
        assert len(socket.recv(budget=100)) == 6

    def test_xskmap_api(self):
        kernel = Kernel("m")
        xsks = XskMap("xsks", max_entries=2)
        socket = XskSocket(kernel, 1)
        with pytest.raises(MapError):
            xsks.set_socket(5, socket)
        with pytest.raises(MapError):
            xsks.update(b"\x00" * 4, b"\x00" * 4)
        xsks.set_socket(1, socket)
        assert xsks.lookup((1).to_bytes(4, "little")) is not None
        assert xsks.lookup((0).to_bytes(4, "little")) is None
