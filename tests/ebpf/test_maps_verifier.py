"""Tests for eBPF maps and the static verifier."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ebpf.isa import Insn, Op, call, exit_, ldx, mov_imm, mov_reg, stx
from repro.ebpf.maps import ArrayMap, DevMap, HashMap, LpmTrieMap, MapError, ProgArray
from repro.ebpf.program import Program, ProgramError
from repro.ebpf.verifier import MAX_INSNS, VerifierError, verify
from repro.netsim.addresses import IPv4Addr


class TestHashMap:
    def test_lookup_update_delete(self):
        m = HashMap("h", 4, 8)
        key, value = b"\x01\x02\x03\x04", b"\x00" * 7 + b"\x2a"
        assert m.lookup(key) is None
        m.update(key, value)
        assert m.lookup(key) == value
        m.delete(key)
        assert m.lookup(key) is None

    def test_key_size_enforced(self):
        m = HashMap("h", 4, 8)
        with pytest.raises(MapError):
            m.lookup(b"\x01")

    def test_value_size_enforced(self):
        m = HashMap("h", 4, 8)
        with pytest.raises(MapError):
            m.update(b"\x01\x02\x03\x04", b"short")

    def test_capacity_enforced(self):
        m = HashMap("h", 1, 1, max_entries=2)
        m.update(b"a", b"x")
        m.update(b"b", b"x")
        with pytest.raises(MapError):
            m.update(b"c", b"x")
        m.update(b"a", b"y")  # replacing existing is fine

    @given(st.binary(min_size=4, max_size=4), st.binary(min_size=8, max_size=8))
    def test_round_trip_property(self, key, value):
        m = HashMap("h", 4, 8)
        m.update(key, value)
        assert m.lookup(key) == value


class TestArrayMap:
    def test_preinitialized_zero(self):
        m = ArrayMap("a", 4, 8)
        assert m.lookup((3).to_bytes(4, "little")) == b"\x00" * 4

    def test_update_and_delete(self):
        m = ArrayMap("a", 4, 8)
        key = (2).to_bytes(4, "little")
        m.update(key, b"\x01\x02\x03\x04")
        assert m.lookup(key) == b"\x01\x02\x03\x04"
        m.delete(key)
        assert m.lookup(key) == b"\x00" * 4

    def test_out_of_range(self):
        m = ArrayMap("a", 4, 2)
        with pytest.raises(MapError):
            m.lookup((5).to_bytes(4, "little"))


class TestLpmTrie:
    def test_longest_prefix_wins(self):
        m = LpmTrieMap("lpm", value_size=4)
        m.update(LpmTrieMap.make_key(8, IPv4Addr.parse("10.0.0.0")), b"aaaa")
        m.update(LpmTrieMap.make_key(24, IPv4Addr.parse("10.1.2.0")), b"bbbb")
        assert m.lookup(LpmTrieMap.make_key(32, IPv4Addr.parse("10.1.2.9"))) == b"bbbb"
        assert m.lookup(LpmTrieMap.make_key(32, IPv4Addr.parse("10.9.9.9"))) == b"aaaa"
        assert m.lookup(LpmTrieMap.make_key(32, IPv4Addr.parse("11.0.0.1"))) is None

    def test_delete(self):
        m = LpmTrieMap("lpm", value_size=4)
        m.update(LpmTrieMap.make_key(16, IPv4Addr.parse("10.1.0.0")), b"aaaa")
        m.delete(LpmTrieMap.make_key(16, IPv4Addr.parse("10.1.0.0")))
        assert m.lookup(LpmTrieMap.make_key(32, IPv4Addr.parse("10.1.0.1"))) is None

    def test_bad_prefix_len(self):
        m = LpmTrieMap("lpm", value_size=4)
        with pytest.raises(MapError):
            m.update(LpmTrieMap.make_key(33, IPv4Addr.parse("10.0.0.0")), b"aaaa")


class TestProgArrayDevMap:
    def test_prog_array_slots(self):
        pa = ProgArray("jmp", max_entries=4)
        sentinel = object()
        pa.set_prog(2, sentinel)
        assert pa.get_prog(2) is sentinel
        pa.clear(2)
        assert pa.get_prog(2) is None

    def test_prog_array_range(self):
        pa = ProgArray("jmp", max_entries=2)
        with pytest.raises(MapError):
            pa.set_prog(2, object())

    def test_prog_array_not_byte_accessible(self):
        pa = ProgArray("jmp")
        with pytest.raises(MapError):
            pa.lookup(b"\x00" * 4)

    def test_devmap(self):
        dm = DevMap("tx", max_entries=4)
        dm.set_dev(1, 42)
        assert dm.get_dev(1) == 42
        assert dm.lookup((1).to_bytes(4, "little")) == (42).to_bytes(4, "little")
        dm.delete((1).to_bytes(4, "little"))
        assert dm.get_dev(1) is None


def prog(insns, maps=None):
    return Program("t", insns, hook="xdp", maps=maps or [])


class TestVerifier:
    def test_accepts_valid_program(self):
        verify(prog([mov_imm(0, 0), exit_()]))

    def test_rejects_empty(self):
        with pytest.raises(ProgramError):
            Program("t", [], hook="xdp")

    def test_rejects_oversized(self):
        insns = [mov_imm(0, 0)] * (MAX_INSNS + 1) + [exit_()]
        with pytest.raises(VerifierError, match="too many"):
            verify(prog(insns))

    def test_rejects_backward_jump(self):
        insns = [mov_imm(0, 0), Insn(Op.JA, off=-1), exit_()]
        with pytest.raises(VerifierError, match="backward"):
            verify(prog(insns))

    def test_rejects_out_of_range_target(self):
        insns = [mov_imm(0, 0), Insn(Op.JA, off=5), exit_()]
        with pytest.raises(VerifierError, match="out of range"):
            verify(prog(insns))

    def test_rejects_fall_off_end(self):
        insns = [mov_imm(0, 0), mov_imm(1, 1)]
        with pytest.raises(VerifierError, match="fall off"):
            verify(prog(insns))

    def test_rejects_write_to_r10(self):
        insns = [mov_imm(10, 0), mov_imm(0, 0), exit_()]
        with pytest.raises(VerifierError, match="frame pointer"):
            verify(prog(insns))

    def test_rejects_bad_access_size(self):
        insns = [ldx(0, 1, 0, 3), exit_()]
        with pytest.raises(VerifierError, match="size"):
            verify(prog(insns))

    def test_rejects_unknown_helper(self):
        insns = [call(999), exit_()]
        with pytest.raises(VerifierError, match="helper"):
            verify(prog(insns))

    def test_rejects_unresolved_map(self):
        insns = [Insn(Op.LD_MAP, dst=1, imm=0), mov_imm(0, 0), exit_()]
        with pytest.raises(VerifierError, match="map"):
            verify(prog(insns))

    def test_rejects_stack_out_of_frame(self):
        insns = [Insn(Op.STX, dst=10, src=1, off=-1024, imm=8), mov_imm(0, 0), exit_()]
        with pytest.raises(VerifierError, match="stack"):
            verify(prog(insns))

    def test_rejects_positive_stack_offset(self):
        insns = [Insn(Op.ST_IMM, dst=10, src=8, off=8, imm=0), mov_imm(0, 0), exit_()]
        with pytest.raises(VerifierError, match="stack"):
            verify(prog(insns))

    def test_rejects_uninitialized_read(self):
        insns = [mov_reg(0, 5), exit_()]
        with pytest.raises(VerifierError, match="uninitialized"):
            verify(prog(insns))

    def test_rejects_uninitialized_r0_at_exit(self):
        insns = [exit_()]
        with pytest.raises(VerifierError, match="r0"):
            verify(prog(insns), entry_regs=(1,))

    def test_join_requires_both_paths_initialized(self):
        # r4 is set on only one branch, then read after the join
        insns = [
            Insn(Op.JEQ_IMM, dst=1, imm=0, off=1),
            mov_imm(4, 1),
            mov_reg(0, 4),
            exit_(),
        ]
        with pytest.raises(VerifierError, match="r4"):
            verify(prog(insns))

    def test_join_accepts_both_paths_initialized(self):
        insns = [
            Insn(Op.JEQ_IMM, dst=1, imm=0, off=2),
            mov_imm(4, 1),
            Insn(Op.JA, off=1),
            mov_imm(4, 2),
            mov_reg(0, 4),
            exit_(),
        ]
        verify(prog(insns))

    def test_call_clobbers_arg_regs(self):
        from repro.ebpf.helpers import HELPER_IDS

        insns = [
            mov_imm(1, 1),
            call(HELPER_IDS["ktime_get_ns"]),
            mov_reg(0, 1),  # r1 no longer initialized
            exit_(),
        ]
        with pytest.raises(VerifierError, match="r1"):
            verify(prog(insns))

    def test_unreachable_code_ignored(self):
        insns = [
            mov_imm(0, 0),
            exit_(),
            mov_reg(0, 9),  # unreachable: must not trip the init check
            exit_(),
        ]
        verify(prog(insns))
