"""Tests for eBPF maps and the static verifier."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ebpf.isa import Insn, Op, call, exit_, ldx, mov_imm, mov_reg, stx
from repro.ebpf.maps import ArrayMap, DevMap, HashMap, LpmTrieMap, MapError, ProgArray
from repro.ebpf.program import Program, ProgramError
from repro.ebpf.verifier import MAX_INSNS, VerifierError, verify
from repro.netsim.addresses import IPv4Addr


class TestHashMap:
    def test_lookup_update_delete(self):
        m = HashMap("h", 4, 8)
        key, value = b"\x01\x02\x03\x04", b"\x00" * 7 + b"\x2a"
        assert m.lookup(key) is None
        m.update(key, value)
        assert m.lookup(key) == value
        m.delete(key)
        assert m.lookup(key) is None

    def test_key_size_enforced(self):
        m = HashMap("h", 4, 8)
        with pytest.raises(MapError):
            m.lookup(b"\x01")

    def test_value_size_enforced(self):
        m = HashMap("h", 4, 8)
        with pytest.raises(MapError):
            m.update(b"\x01\x02\x03\x04", b"short")

    def test_capacity_enforced(self):
        m = HashMap("h", 1, 1, max_entries=2)
        m.update(b"a", b"x")
        m.update(b"b", b"x")
        with pytest.raises(MapError):
            m.update(b"c", b"x")
        m.update(b"a", b"y")  # replacing existing is fine

    @given(st.binary(min_size=4, max_size=4), st.binary(min_size=8, max_size=8))
    def test_round_trip_property(self, key, value):
        m = HashMap("h", 4, 8)
        m.update(key, value)
        assert m.lookup(key) == value


class TestArrayMap:
    def test_preinitialized_zero(self):
        m = ArrayMap("a", 4, 8)
        assert m.lookup((3).to_bytes(4, "little")) == b"\x00" * 4

    def test_update_and_delete(self):
        m = ArrayMap("a", 4, 8)
        key = (2).to_bytes(4, "little")
        m.update(key, b"\x01\x02\x03\x04")
        assert m.lookup(key) == b"\x01\x02\x03\x04"
        m.delete(key)
        assert m.lookup(key) == b"\x00" * 4

    def test_out_of_range(self):
        # Real BPF array lookup returns NULL past max_entries; only writes
        # are rejected.
        m = ArrayMap("a", 4, 2)
        assert m.lookup((5).to_bytes(4, "little")) is None
        with pytest.raises(MapError):
            m.update((5).to_bytes(4, "little"), b"\x01\x02\x03\x04")


class TestLpmTrie:
    def test_longest_prefix_wins(self):
        m = LpmTrieMap("lpm", value_size=4)
        m.update(LpmTrieMap.make_key(8, IPv4Addr.parse("10.0.0.0")), b"aaaa")
        m.update(LpmTrieMap.make_key(24, IPv4Addr.parse("10.1.2.0")), b"bbbb")
        assert m.lookup(LpmTrieMap.make_key(32, IPv4Addr.parse("10.1.2.9"))) == b"bbbb"
        assert m.lookup(LpmTrieMap.make_key(32, IPv4Addr.parse("10.9.9.9"))) == b"aaaa"
        assert m.lookup(LpmTrieMap.make_key(32, IPv4Addr.parse("11.0.0.1"))) is None

    def test_delete(self):
        m = LpmTrieMap("lpm", value_size=4)
        m.update(LpmTrieMap.make_key(16, IPv4Addr.parse("10.1.0.0")), b"aaaa")
        m.delete(LpmTrieMap.make_key(16, IPv4Addr.parse("10.1.0.0")))
        assert m.lookup(LpmTrieMap.make_key(32, IPv4Addr.parse("10.1.0.1"))) is None

    def test_bad_prefix_len(self):
        m = LpmTrieMap("lpm", value_size=4)
        with pytest.raises(MapError):
            m.update(LpmTrieMap.make_key(33, IPv4Addr.parse("10.0.0.0")), b"aaaa")


class TestProgArrayDevMap:
    def test_prog_array_slots(self):
        pa = ProgArray("jmp", max_entries=4)
        sentinel = object()
        pa.set_prog(2, sentinel)
        assert pa.get_prog(2) is sentinel
        pa.clear(2)
        assert pa.get_prog(2) is None

    def test_prog_array_range(self):
        pa = ProgArray("jmp", max_entries=2)
        with pytest.raises(MapError):
            pa.set_prog(2, object())

    def test_prog_array_not_byte_accessible(self):
        pa = ProgArray("jmp")
        with pytest.raises(MapError):
            pa.lookup(b"\x00" * 4)

    def test_devmap(self):
        dm = DevMap("tx", max_entries=4)
        dm.set_dev(1, 42)
        assert dm.get_dev(1) == 42
        assert dm.lookup((1).to_bytes(4, "little")) == (42).to_bytes(4, "little")
        dm.delete((1).to_bytes(4, "little"))
        assert dm.get_dev(1) is None


def prog(insns, maps=None):
    return Program("t", insns, hook="xdp", maps=maps or [])


class TestVerifier:
    def test_accepts_valid_program(self):
        verify(prog([mov_imm(0, 0), exit_()]))

    def test_rejects_empty(self):
        with pytest.raises(ProgramError):
            Program("t", [], hook="xdp")

    def test_rejects_oversized(self):
        insns = [mov_imm(0, 0)] * (MAX_INSNS + 1) + [exit_()]
        with pytest.raises(VerifierError, match="too many"):
            verify(prog(insns))

    def test_rejects_backward_jump(self):
        insns = [mov_imm(0, 0), Insn(Op.JA, off=-1), exit_()]
        with pytest.raises(VerifierError, match="backward"):
            verify(prog(insns))

    def test_rejects_out_of_range_target(self):
        insns = [mov_imm(0, 0), Insn(Op.JA, off=5), exit_()]
        with pytest.raises(VerifierError, match="out of range"):
            verify(prog(insns))

    def test_rejects_fall_off_end(self):
        insns = [mov_imm(0, 0), mov_imm(1, 1)]
        with pytest.raises(VerifierError, match="fall off"):
            verify(prog(insns))

    def test_rejects_write_to_r10(self):
        insns = [mov_imm(10, 0), mov_imm(0, 0), exit_()]
        with pytest.raises(VerifierError, match="frame pointer"):
            verify(prog(insns))

    def test_rejects_bad_access_size(self):
        insns = [ldx(0, 1, 0, 3), exit_()]
        with pytest.raises(VerifierError, match="size"):
            verify(prog(insns))

    def test_rejects_unknown_helper(self):
        insns = [call(999), exit_()]
        with pytest.raises(VerifierError, match="helper"):
            verify(prog(insns))

    def test_rejects_unresolved_map(self):
        insns = [Insn(Op.LD_MAP, dst=1, imm=0), mov_imm(0, 0), exit_()]
        with pytest.raises(VerifierError, match="map"):
            verify(prog(insns))

    def test_rejects_stack_out_of_frame(self):
        insns = [Insn(Op.STX, dst=10, src=1, off=-1024, imm=8), mov_imm(0, 0), exit_()]
        with pytest.raises(VerifierError, match="stack"):
            verify(prog(insns))

    def test_rejects_positive_stack_offset(self):
        insns = [Insn(Op.ST_IMM, dst=10, src=8, off=8, imm=0), mov_imm(0, 0), exit_()]
        with pytest.raises(VerifierError, match="stack"):
            verify(prog(insns))

    def test_rejects_uninitialized_read(self):
        insns = [mov_reg(0, 5), exit_()]
        with pytest.raises(VerifierError, match="uninitialized"):
            verify(prog(insns))

    def test_rejects_uninitialized_r0_at_exit(self):
        insns = [exit_()]
        with pytest.raises(VerifierError, match="r0"):
            verify(prog(insns), entry_regs=(1,))

    def test_join_requires_both_paths_initialized(self):
        # r4 is set on only one branch, then read after the join
        insns = [
            Insn(Op.JEQ_IMM, dst=1, imm=0, off=1),
            mov_imm(4, 1),
            mov_reg(0, 4),
            exit_(),
        ]
        with pytest.raises(VerifierError, match="r4"):
            verify(prog(insns))

    def test_join_accepts_both_paths_initialized(self):
        insns = [
            Insn(Op.JEQ_IMM, dst=1, imm=0, off=2),
            mov_imm(4, 1),
            Insn(Op.JA, off=1),
            mov_imm(4, 2),
            mov_reg(0, 4),
            exit_(),
        ]
        verify(prog(insns))

    def test_call_clobbers_arg_regs(self):
        from repro.ebpf.helpers import HELPER_IDS

        insns = [
            mov_imm(1, 1),
            call(HELPER_IDS["ktime_get_ns"]),
            mov_reg(0, 1),  # r1 no longer initialized
            exit_(),
        ]
        with pytest.raises(VerifierError, match="r1"):
            verify(prog(insns))

    def test_unreachable_code_ignored(self):
        insns = [
            mov_imm(0, 0),
            exit_(),
            mov_reg(0, 9),  # unreachable: must not trip the init check
            exit_(),
        ]
        verify(prog(insns))

    def test_forward_ja_zero_is_noop(self):
        # JA off=0 jumps to pc+1 — a harmless no-op, accepted (the old
        # structural pass had a dead re-check singling this shape out)
        insns = [mov_imm(0, 0), Insn(Op.JA, off=0), exit_()]
        verify(prog(insns))


class TestHelperRegistry:
    """HELPERS / HELPER_IDS / HELPER_SIGS and the capability tiers must
    stay mutually consistent (including the late-registered AF_XDP id)."""

    def test_ids_are_a_bijection_over_the_registry(self):
        from repro.ebpf.helpers import HELPERS, HELPER_IDS

        assert set(HELPER_IDS.values()) == set(HELPERS)
        assert len(set(HELPER_IDS.values())) == len(HELPER_IDS)
        for name, hid in HELPER_IDS.items():
            assert HELPERS[hid][0] == name

    def test_capability_tiers_partition_the_registry(self):
        from repro.ebpf.helpers import (
            BASELINE_HELPERS,
            HELPER_IDS,
            LINUXFP_HELPERS,
            MAINLINE_HELPERS,
        )

        assert MAINLINE_HELPERS | LINUXFP_HELPERS | BASELINE_HELPERS == set(HELPER_IDS)
        assert not MAINLINE_HELPERS & LINUXFP_HELPERS
        assert not MAINLINE_HELPERS & BASELINE_HELPERS
        assert not LINUXFP_HELPERS & BASELINE_HELPERS

    def test_every_helper_declares_a_signature(self):
        from repro.ebpf.helpers import HELPERS, HELPER_IDS, HELPER_SIGS

        assert set(HELPER_SIGS) == set(HELPERS)
        for hid, sig in HELPER_SIGS.items():
            assert HELPER_IDS[sig.name] == hid

    def test_af_xdp_late_registration_is_complete(self):
        from repro.ebpf.helpers import HELPER_SIGS, HELPERS, MAINLINE_HELPERS

        assert HELPERS[14][0] == "redirect_xsk"
        assert HELPER_SIGS[14].name == "redirect_xsk"
        assert "redirect_xsk" in MAINLINE_HELPERS
        assert HELPER_SIGS[14].args[0].map_types == ("xskmap",)

    def test_ret_ranges_are_sound_for_map_helpers(self):
        from repro.ebpf.helpers import HELPER_SIGS

        for hid in (1, 2, 3, 4):
            assert HELPER_SIGS[hid].ret == (0, 1)


def guarded(min_len, body):
    """Prefix: punt (return 0) unless len >= min_len, then run ``body``."""
    return [
        Insn(Op.JGE_IMM, dst=2, imm=min_len, off=2),
        mov_imm(0, 0),
        exit_(),
    ] + body


class TestAdversarialCorpus:
    """Unsafe shapes the range-tracking pass must reject, each with a
    precise structured diagnostic (and a near-identical safe twin that
    must be accepted, to pin the rejection on the actual defect)."""

    def test_oob_packet_read_past_data_end(self):
        # len >= 34 is proven, but the read touches bytes [34, 36)
        insns = guarded(34, [ldx(0, 1, 34, 2), exit_()])
        with pytest.raises(VerifierError, match="packet access \\[34, 36\\)") as exc_info:
            verify(prog(insns))
        assert exc_info.value.code == "packet-out-of-bounds"
        assert exc_info.value.pc == 3
        safe = guarded(34, [ldx(0, 1, 32, 2), exit_()])
        verify(prog(safe))

    def test_unguarded_packet_read_names_the_guarantee(self):
        insns = [ldx(0, 1, 0, 1), exit_()]
        with pytest.raises(VerifierError, match="guaranteed length 0"):
            verify(prog(insns))

    def test_unchecked_map_lookup_deref(self):
        # a helper returning a maybe-NULL map value must be null-checked
        # before any dereference; register one for the duration of the test
        from repro.ebpf.helpers import HELPERS, HELPER_IDS, HELPER_SIGS, ArgSpec, HelperSig

        value_map = HashMap("vals", 4, 8)
        HELPERS[99] = ("test_lookup_ptr", lambda env, args: 0)
        HELPER_IDS["test_lookup_ptr"] = 99
        HELPER_SIGS[99] = HelperSig(
            "test_lookup_ptr",
            (ArgSpec("map", byte_addressable=True),),
            ret="map_value_or_null",
        )
        try:
            deref_unchecked = [
                Insn(Op.LD_MAP, dst=1, imm=0),
                call(99),
                ldx(0, 0, 0, 4),  # r0 may be NULL here
                exit_(),
            ]
            with pytest.raises(VerifierError, match="null-check") as exc_info:
                verify(prog(deref_unchecked, maps=[value_map]))
            assert exc_info.value.code == "maybe-null-deref"

            checked = [
                Insn(Op.LD_MAP, dst=1, imm=0),
                call(99),
                Insn(Op.JNE_IMM, dst=0, imm=0, off=2),
                mov_imm(0, 0),
                exit_(),
                ldx(0, 0, 0, 4),  # non-NULL branch: within value_size 8
                exit_(),
            ]
            verify(prog(checked, maps=[value_map]))

            beyond_value = [
                Insn(Op.LD_MAP, dst=1, imm=0),
                call(99),
                Insn(Op.JNE_IMM, dst=0, imm=0, off=2),
                mov_imm(0, 0),
                exit_(),
                ldx(0, 0, 6, 4),  # [6, 10) exceeds value_size 8
                exit_(),
            ]
            with pytest.raises(VerifierError, match="value size") as exc_info:
                verify(prog(beyond_value, maps=[value_map]))
            assert exc_info.value.code == "map-value-out-of-bounds"
        finally:
            del HELPERS[99], HELPER_IDS["test_lookup_ptr"], HELPER_SIGS[99]

    def test_pointer_leaks_into_scalar_op(self):
        insns = [
            Insn(Op.MUL_IMM, dst=1, imm=2),  # packet pointer * 2
            mov_imm(0, 0),
            exit_(),
        ]
        with pytest.raises(VerifierError, match="pointer") as exc_info:
            verify(prog(insns))
        assert exc_info.value.code == "pointer-leak"

    def test_pointer_cannot_reach_r0_at_exit(self):
        insns = [mov_reg(0, 1), exit_()]
        with pytest.raises(VerifierError, match="exit") as exc_info:
            verify(prog(insns))
        assert exc_info.value.code == "pointer-leak"

    def test_spill_fill_round_trip(self):
        # spilling the packet pointer and filling it back preserves its
        # type and bounds facts (the guard dominates the post-fill load)
        body = [
            stx(10, 1, -8, 8),   # spill pkt ptr
            ldx(3, 10, -8, 8),   # fill into r3
            ldx(0, 3, 0, 1),     # deref: len >= 2 proven
            exit_(),
        ]
        verify(prog(guarded(2, body)))

    def test_narrow_spill_of_pointer_rejected(self):
        body = [stx(10, 1, -8, 4), mov_imm(0, 0), exit_()]
        with pytest.raises(VerifierError, match="spill") as exc_info:
            verify(prog(guarded(2, body)))
        assert exc_info.value.code == "pointer-spill"

    def test_clobbered_spill_does_not_fill_a_pointer(self):
        # a narrow scalar store over the spilled slot destroys the fat
        # pointer; the fill must come back as a scalar, not a pointer
        body = [
            stx(10, 1, -8, 8),                       # spill pkt ptr
            Insn(Op.ST_IMM, dst=10, src=8, off=-8, imm=7),  # overwrite slot
            ldx(3, 10, -8, 8),                       # fill: now a scalar
            ldx(0, 3, 0, 1),                         # deref through scalar
            exit_(),
        ]
        with pytest.raises(VerifierError, match="non-pointer") as exc_info:
            verify(prog(guarded(2, body)))
        assert exc_info.value.code == "bad-access"

    def test_helper_scalar_where_pointer_required(self):
        insns = [
            mov_imm(1, 5),
            mov_imm(2, 7),  # fib_lookup arg 2 must point at a result buffer
            call(6),
            mov_imm(0, 0),
            exit_(),
        ]
        with pytest.raises(VerifierError, match="fib_lookup.*must be a pointer") as exc_info:
            verify(prog(insns))
        assert exc_info.value.code == "helper-signature"

    def test_helper_buffer_too_small(self):
        insns = [
            mov_imm(1, 5),
            mov_reg(2, 10),
            Insn(Op.ADD_IMM, dst=2, imm=-8),  # 8 bytes left; fib needs 18
            call(6),
            mov_imm(0, 0),
            exit_(),
        ]
        with pytest.raises(VerifierError, match="fib_lookup") as exc_info:
            verify(prog(insns))
        assert exc_info.value.code == "stack-out-of-bounds"

    def test_structured_diagnostics_round_trip(self):
        insns = [ldx(0, 1, 0, 4), exit_()]
        with pytest.raises(VerifierError) as exc_info:
            verify(prog(insns))
        detail = exc_info.value.to_dict()
        assert detail["program"] == "t"
        assert detail["pc"] == 0
        assert detail["code"] == "packet-out-of-bounds"
        assert "ldx" in detail["insn"]


class TestMapHelperFailSoft:
    """Map failure modes the verifier cannot see statically (full map, bad
    LPM prefix, array index out of range) must surface to programs as error
    codes, never as exceptions — otherwise an accepted program could still
    blow up the VM and the verifier's safety contract would be a lie."""

    @staticmethod
    def _env():
        from repro.ebpf.vm import Env
        from repro.kernel import Kernel

        kernel = Kernel("t")
        return Env(kernel, 4)

    @staticmethod
    def _buf(data):
        from repro.ebpf.memory import Pointer, Region

        return Pointer(Region("b", bytearray(data)), 0)

    def test_full_map_update_returns_error_code(self):
        from repro.ebpf.helpers import bpf_map_update_elem

        m = HashMap("h", 1, 1, max_entries=1)
        m.update(b"a", b"x")
        assert bpf_map_update_elem(self._env(), [m, self._buf(b"b"), self._buf(b"y")]) == 1
        assert bpf_map_update_elem(self._env(), [m, self._buf(b"a"), self._buf(b"y")]) == 0

    def test_array_index_out_of_range_fails_soft(self):
        from repro.ebpf.helpers import bpf_map_lookup_elem, bpf_map_update_elem

        m = ArrayMap("a", 4, 4)
        big = (99).to_bytes(4, "little")
        assert bpf_map_lookup_elem(self._env(), [m, self._buf(big)]) == 0
        assert bpf_map_update_elem(self._env(), [m, self._buf(big), self._buf(b"\x00" * 4)]) == 1

    def test_bad_lpm_prefix_fails_soft(self):
        from repro.ebpf.helpers import bpf_map_delete_elem, bpf_map_read

        m = LpmTrieMap("lpm", 4)
        bad_key = (77).to_bytes(4, "little") + b"\x0a\x00\x00\x01"  # prefix 77 > 32
        assert bpf_map_read(self._env(), [m, self._buf(bad_key), self._buf(b"\x00" * 4)]) == 0
        assert bpf_map_delete_elem(self._env(), [m, self._buf(bad_key)]) == 1

    def test_fault_injection_absorbed_by_helper(self):
        # inside a program, an injected map fault is an error *code* (the
        # program degrades to PASS) with the failure counted on the map —
        # never an exception escaping the hook
        from repro.ebpf.helpers import bpf_map_update_elem
        from repro.testing import faults

        m = HashMap("h", 1, 1)
        with faults.injected() as injector:
            injector.arm("map_update", count=1)
            assert bpf_map_update_elem(self._env(), [m, self._buf(b"a"), self._buf(b"x")]) == 1
        assert m.update_errors == 1

    def test_fault_injection_still_propagates_to_control_plane(self):
        # direct map.update() calls (deployer seeding, tests) still see the
        # fault: the self-healing suites depend on it
        from repro.testing import faults

        m = HashMap("h", 1, 1)
        with faults.injected() as injector:
            injector.arm("map_update", count=1)
            with pytest.raises(faults.InjectedFault):
                m.update(b"a", b"x")
