"""Property test: the range domain over-approximates the production VM.

The optimizer's equivalence proofs lean on :mod:`repro.ebpf.analysis.domain`
interval arithmetic (via ``abstract_eval_window``'s ``rng_of``). Soundness
means: for any straight-line ALU window and any entry registers drawn from
the declared intervals, the concrete value the VM computes for every
register lies inside the interval the abstract evaluation reports. If this
ever fails, a "proven" rewrite could rest on a wrong constant fold.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ebpf.analysis.domain import Range
from repro.ebpf.analysis.opt.equiv import abstract_eval_window, concrete_eval_window
from repro.ebpf.isa import MASK64, Insn, Op

_IMM_OPS = (
    Op.ADD_IMM,
    Op.SUB_IMM,
    Op.MUL_IMM,
    Op.DIV_IMM,
    Op.MOD_IMM,
    Op.AND_IMM,
    Op.OR_IMM,
    Op.XOR_IMM,
    Op.LSH_IMM,
    Op.RSH_IMM,
)
_REG_OPS = (
    Op.ADD_REG,
    Op.SUB_REG,
    Op.MUL_REG,
    Op.DIV_REG,
    Op.MOD_REG,
    Op.AND_REG,
    Op.OR_REG,
    Op.XOR_REG,
    Op.LSH_REG,
    Op.RSH_REG,
)
_SHIFT_OPS = (Op.LSH_IMM, Op.RSH_IMM)

_NUM_REGS = 6  # r0–r5: plain scalars, no pointer/ABI roles in a raw window

interesting = st.sampled_from(
    [0, 1, 2, 3, 7, 8, 63, 64, 255, 256, (1 << 32) - 1, 1 << 32, (1 << 63), MASK64]
)
values = interesting | st.integers(min_value=0, max_value=MASK64)


@st.composite
def insn_windows(draw):
    """A random straight-line scalar window (1–6 instructions)."""
    insns = []
    for _ in range(draw(st.integers(min_value=1, max_value=6))):
        dst = draw(st.integers(min_value=0, max_value=_NUM_REGS - 1))
        kind = draw(st.integers(min_value=0, max_value=3))
        if kind == 0:
            insns.append(Insn(Op.MOV_IMM, dst=dst, imm=draw(values)))
        elif kind == 1:
            src = draw(st.integers(min_value=0, max_value=_NUM_REGS - 1))
            insns.append(Insn(Op.MOV_REG, dst=dst, src=src))
        elif kind == 2:
            op = draw(st.sampled_from(_IMM_OPS + (Op.NEG,)))
            imm = 0
            if op in _SHIFT_OPS:
                imm = draw(st.integers(min_value=0, max_value=63))
            elif op is not Op.NEG:
                imm = draw(values)
            insns.append(Insn(op, dst=dst, imm=imm))
        else:
            src = draw(st.integers(min_value=0, max_value=_NUM_REGS - 1))
            insns.append(Insn(draw(st.sampled_from(_REG_OPS)), dst=dst, src=src))
    return insns


@st.composite
def entry_states(draw):
    """Per-register (interval, concrete point inside it) pairs."""
    ranges = {}
    concrete = {}
    for reg in range(_NUM_REGS):
        a, b = draw(values), draw(values)
        lo, hi = min(a, b), max(a, b)
        ranges[reg] = Range(lo, hi)
        concrete[reg] = draw(st.integers(min_value=lo, max_value=hi))
    return ranges, concrete


@settings(max_examples=200, deadline=None)
@given(window=insn_windows(), entry=entry_states())
def test_abstract_ranges_contain_concrete_results(window, entry):
    init_ranges, init_concrete = entry
    abstract = abstract_eval_window(window, init_ranges, with_ranges=True)
    assert abstract is not None, "pure ALU windows are always in the fragment"
    final_ranges = abstract[2]
    outcome = concrete_eval_window(window, init_concrete)
    assert outcome[0] == "ok", "scalar ALU cannot abort (div/mod-by-zero are total)"
    final_regs = outcome[1]
    for reg in range(_NUM_REGS):
        value = final_regs[reg]
        rng = final_ranges[reg]
        assert rng.lo <= value <= rng.hi, (
            f"r{reg}: concrete {value:#x} escapes abstract [{rng.lo:#x}, {rng.hi:#x}] "
            f"after {[str(i) for i in window]} from {init_ranges}"
        )
