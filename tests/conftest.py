"""Shared test configuration: Hypothesis profiles.

CI runs with ``HYPOTHESIS_PROFILE=ci`` for derandomized, reproducible
property tests; local runs keep Hypothesis's default randomized exploration.
"""

import os

from hypothesis import HealthCheck, settings

settings.register_profile(
    "ci",
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    print_blob=True,
)

settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))
