"""Property tests: every message schema round-trips through wire bytes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netlink import messages as m
from repro.netlink.messages import NetlinkMsg
from repro.netsim.addresses import IPv4Addr, MacAddr

ip_values = st.builds(IPv4Addr, st.integers(min_value=0, max_value=0xFFFFFFFF))
mac_values = st.builds(MacAddr, st.integers(min_value=0, max_value=(1 << 48) - 1))
names = st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789-.", min_size=1, max_size=15)


class TestSchemaRoundTrips:
    @settings(max_examples=40, deadline=None)
    @given(
        ifindex=st.integers(min_value=0, max_value=0xFFFFFFFF),
        ifname=names,
        kind=st.sampled_from(["physical", "veth", "bridge", "vxlan", "loopback"]),
        operstate=st.integers(min_value=0, max_value=1),
        mac=mac_values,
        mtu=st.integers(min_value=68, max_value=65535),
        stp=st.integers(min_value=0, max_value=1),
        vlan=st.integers(min_value=0, max_value=1),
        ageing=st.integers(min_value=0, max_value=100000),
    )
    def test_link_with_bridge_info(self, ifindex, ifname, kind, operstate, mac, mtu, stp, vlan, ageing):
        attrs = {
            "ifindex": ifindex,
            "ifname": ifname,
            "kind": kind,
            "operstate": operstate,
            "address": mac,
            "mtu": mtu,
            "bridge": {"stp_state": stp, "vlan_filtering": vlan, "ageing_time": ageing},
        }
        parsed = NetlinkMsg.from_bytes(NetlinkMsg(m.RTM_NEWLINK, attrs).to_bytes())
        assert parsed.attrs == attrs

    @settings(max_examples=40, deadline=None)
    @given(
        dst=ip_values,
        dst_len=st.integers(min_value=0, max_value=32),
        gateway=st.one_of(st.none(), ip_values),
        oif=st.integers(min_value=0, max_value=0xFFFF),
        metric=st.integers(min_value=0, max_value=0xFFFF),
    )
    def test_route(self, dst, dst_len, gateway, oif, metric):
        attrs = {"dst": dst, "dst_len": dst_len, "oif": oif, "metric": metric}
        if gateway is not None:
            attrs["gateway"] = gateway
        parsed = NetlinkMsg.from_bytes(NetlinkMsg(m.RTM_NEWROUTE, attrs).to_bytes())
        assert parsed.attrs == attrs

    @settings(max_examples=40, deadline=None)
    @given(
        chain=st.sampled_from(["INPUT", "FORWARD", "OUTPUT"]),
        handle=st.integers(min_value=0, max_value=0xFFFFFFFF),
        src=st.one_of(st.none(), ip_values),
        proto=st.one_of(st.none(), st.sampled_from([1, 6, 17])),
        dport=st.one_of(st.none(), st.integers(min_value=0, max_value=65535)),
        target=st.sampled_from(["ACCEPT", "DROP", "RETURN"]),
        ct_state=st.one_of(st.none(), st.sampled_from(["NEW", "ESTABLISHED"])),
    )
    def test_rule(self, chain, handle, src, proto, dport, target, ct_state):
        attrs = {"table": "filter", "chain": chain, "handle": handle, "target": target}
        if src is not None:
            attrs["src"] = src
            attrs["src_len"] = 24
        if proto is not None:
            attrs["proto"] = proto
        if dport is not None:
            attrs["dport"] = dport
        if ct_state is not None:
            attrs["ct_state"] = ct_state
        parsed = NetlinkMsg.from_bytes(NetlinkMsg(m.NFT_NEWRULE, attrs).to_bytes())
        assert parsed.attrs == attrs

    @settings(max_examples=40, deadline=None)
    @given(
        name=names,
        set_type=st.sampled_from(["hash:ip", "hash:net"]),
        entries=st.lists(
            st.fixed_dictionaries({"ip": ip_values, "prefixlen": st.integers(min_value=0, max_value=32)}),
            max_size=8,
        ),
    )
    def test_ipset(self, name, set_type, entries):
        attrs = {"name": name, "set_type": set_type, "entries": entries}
        parsed = NetlinkMsg.from_bytes(NetlinkMsg(m.IPSET_NEWSET, attrs).to_bytes())
        assert parsed.attrs == attrs

    @settings(max_examples=40, deadline=None)
    @given(
        vip=ip_values,
        vport=st.integers(min_value=0, max_value=65535),
        proto=st.sampled_from([6, 17]),
        scheduler=st.sampled_from(["rr", "wrr", "lc"]),
        rs=ip_values,
        rport=st.integers(min_value=0, max_value=65535),
        weight=st.integers(min_value=0, max_value=1000),
    )
    def test_ipvs(self, vip, vport, proto, scheduler, rs, rport, weight):
        attrs = {
            "vip": vip, "vport": vport, "proto": proto, "scheduler": scheduler,
            "rs": rs, "rport": rport, "weight": weight,
        }
        parsed = NetlinkMsg.from_bytes(NetlinkMsg(m.IPVS_NEWDEST, attrs).to_bytes())
        assert parsed.attrs == attrs

    @settings(max_examples=40, deadline=None)
    @given(
        ifindex=st.integers(min_value=0, max_value=0xFFFF),
        lladdr=mac_values,
        vlan=st.integers(min_value=0, max_value=4095),
        dst=st.one_of(st.none(), ip_values),
    )
    def test_fdb(self, ifindex, lladdr, vlan, dst):
        attrs = {"ifindex": ifindex, "lladdr": lladdr, "vlan": vlan, "state": 0}
        if dst is not None:
            attrs["dst"] = dst
        parsed = NetlinkMsg.from_bytes(NetlinkMsg(m.RTM_NEWFDB, attrs).to_bytes())
        assert parsed.attrs == attrs


class TestDumpFastPath:
    def test_dump_contains_source_and_disassembly(self):
        from repro.core import Controller
        from repro.measure.topology import LineTopology

        topo = LineTopology()
        topo.install_prefixes(3)
        controller = Controller(topo.dut, hook="xdp")
        controller.start()
        dump = controller.dump_fast_path("eth0")
        assert "fpm_router" in dump
        assert "; program linuxfp_eth0_xdp" in dump
        assert controller.dump_fast_path("ghost0") is None
