"""Bounded per-socket notification queues and ENOBUFS overrun semantics."""

import pytest

from repro.netlink.bus import DEFAULT_MAX_PENDING, NetlinkBus
from repro.netlink.messages import RTM_NEWLINK, NetlinkMsg
from repro.testing import faults


def notify(bus, n=1):
    for i in range(n):
        bus.notify("link", NetlinkMsg(RTM_NEWLINK, {"ifindex": i + 1}))


class TestBoundedQueue:
    def test_default_depth(self):
        bus = NetlinkBus()
        assert bus.open_socket().max_pending == DEFAULT_MAX_PENDING

    def test_bad_depth_rejected(self):
        with pytest.raises(ValueError):
            NetlinkBus().open_socket(max_pending=0)

    def test_fill_to_boundary_no_overrun(self):
        bus = NetlinkBus()
        sock = bus.open_socket(max_pending=3)
        sock.subscribe("link")
        notify(bus, 3)
        assert sock.pending() == 3
        assert not sock.overrun
        assert sock.overruns == 0

    def test_overflow_sets_overrun_and_drops(self):
        bus = NetlinkBus()
        sock = bus.open_socket(max_pending=3)
        sock.subscribe("link")
        notify(bus, 5)
        # the queue holds exactly max_pending; the excess was dropped but
        # never silently — the overrun flag is the ENOBUFS the reader sees
        assert sock.pending() == 3
        assert sock.overrun
        assert sock.overruns == 2

    def test_overrun_is_sticky_until_cleared(self):
        bus = NetlinkBus()
        sock = bus.open_socket(max_pending=1)
        sock.subscribe("link")
        notify(bus, 2)
        assert sock.overrun
        sock.drain()  # reading does not acknowledge the loss
        assert sock.overrun
        sock.clear_overrun()
        assert not sock.overrun
        assert sock.overruns == 1  # the counter is history, not state

    def test_drain_frees_capacity(self):
        bus = NetlinkBus()
        sock = bus.open_socket(max_pending=2)
        sock.subscribe("link")
        notify(bus, 2)
        assert [m.attrs["ifindex"] for m in sock.drain()] == [1, 2]
        assert sock.pending() == 0
        notify(bus, 2)
        assert sock.pending() == 2
        assert not sock.overrun

    def test_recv_at_boundary(self):
        bus = NetlinkBus()
        sock = bus.open_socket(max_pending=1)
        sock.subscribe("link")
        notify(bus, 1)
        assert sock.recv().attrs["ifindex"] == 1
        assert sock.recv() is None

    def test_listener_mode_bypasses_queue(self):
        bus = NetlinkBus()
        sock = bus.open_socket(max_pending=1)
        sock.subscribe("link")
        seen = []
        sock.add_listener(seen.append)
        notify(bus, 5)
        assert len(seen) == 5
        assert sock.pending() == 0
        assert not sock.overrun


class TestDeliveryFaults:
    def test_drop_action_raises_overrun(self):
        bus = NetlinkBus()
        sock = bus.open_socket()
        sock.subscribe("link")
        seen = []
        sock.add_listener(seen.append)
        with faults.injected() as inj:
            inj.arm("netlink_deliver", action="drop", count=1)
            notify(bus, 2)
        assert len(seen) == 1  # first message lost...
        assert sock.overrun  # ...but not silently

    def test_dup_action_delivers_twice(self):
        bus = NetlinkBus()
        sock = bus.open_socket()
        sock.subscribe("link")
        with faults.injected() as inj:
            inj.arm("netlink_deliver", action="dup", count=1)
            notify(bus, 1)
        assert sock.pending() == 2
        assert not sock.overrun

    def test_drop_targets_one_socket(self):
        bus = NetlinkBus()
        victim = bus.open_socket()
        bystander = bus.open_socket()
        for sock in (victim, bystander):
            sock.subscribe("link")
        with faults.injected() as inj:
            inj.arm("netlink_deliver", match=f"pid{victim.pid}")
            notify(bus, 1)
        assert victim.pending() == 0 and victim.overrun
        assert bystander.pending() == 1 and not bystander.overrun
