"""Tests for netlink messages and the bus."""

import pytest

from repro.netlink.bus import NetlinkBus
from repro.netlink.messages import (
    NLM_F_DUMP,
    NLM_F_REQUEST,
    NLMSG_DONE,
    NLMSG_ERROR,
    RTM_GETLINK,
    RTM_NEWLINK,
    RTM_NEWROUTE,
    SYSCTL_SET,
    NetlinkError,
    NetlinkMsg,
    ack_msg,
    done_msg,
    error_msg,
)
from repro.netsim.addresses import IPv4Addr, MacAddr


class TestNetlinkMsg:
    def test_round_trip(self):
        msg = NetlinkMsg(RTM_NEWLINK, {"ifindex": 3, "ifname": "eth0", "operstate": 1}, seq=7, pid=2)
        parsed = NetlinkMsg.from_bytes(msg.to_bytes())
        assert parsed.msg_type == RTM_NEWLINK
        assert parsed.attrs == {"ifindex": 3, "ifname": "eth0", "operstate": 1}
        assert (parsed.seq, parsed.pid) == (7, 2)

    def test_round_trip_with_addresses(self):
        msg = NetlinkMsg(
            RTM_NEWROUTE,
            {"dst": IPv4Addr.parse("10.1.0.0"), "dst_len": 16, "gateway": IPv4Addr.parse("192.168.0.1"), "oif": 2},
        )
        parsed = NetlinkMsg.from_bytes(msg.to_bytes())
        assert parsed.attrs["gateway"] == IPv4Addr.parse("192.168.0.1")

    def test_nested_linkinfo_round_trip(self):
        msg = NetlinkMsg(
            RTM_NEWLINK,
            {
                "ifindex": 5,
                "ifname": "br0",
                "kind": "bridge",
                "address": MacAddr.parse("02:00:00:00:00:05"),
                "bridge": {"stp_state": 1, "vlan_filtering": 0, "ageing_time": 300},
            },
        )
        parsed = NetlinkMsg.from_bytes(msg.to_bytes())
        assert parsed.attrs["bridge"] == {"stp_state": 1, "vlan_filtering": 0, "ageing_time": 300}

    def test_parse_stream_multiple(self):
        stream = (
            NetlinkMsg(RTM_NEWLINK, {"ifindex": 1}).to_bytes()
            + NetlinkMsg(RTM_NEWLINK, {"ifindex": 2}).to_bytes()
            + done_msg().to_bytes()
        )
        msgs = NetlinkMsg.parse_stream(stream)
        assert [m.msg_type for m in msgs] == [RTM_NEWLINK, RTM_NEWLINK, NLMSG_DONE]

    def test_error_raise(self):
        with pytest.raises(NetlinkError):
            error_msg(-2, "no such device").raise_for_error()

    def test_ack_does_not_raise(self):
        ack_msg().raise_for_error()

    def test_type_name(self):
        assert NetlinkMsg(RTM_NEWLINK).type_name == "RTM_NEWLINK"

    def test_unknown_type_rejected(self):
        with pytest.raises(Exception):
            NetlinkMsg(9999, {}).to_bytes()


class TestBus:
    def make_bus(self):
        bus = NetlinkBus()
        links = [{"ifindex": 1, "ifname": "lo"}, {"ifindex": 2, "ifname": "eth0"}]

        def get_link(req):
            return [NetlinkMsg(RTM_NEWLINK, dict(link)) for link in links]

        def new_link(req):
            links.append(dict(req.attrs))
            bus.notify("link", NetlinkMsg(RTM_NEWLINK, dict(req.attrs)))
            return []

        bus.register_handler(RTM_GETLINK, get_link)
        bus.register_handler(RTM_NEWLINK, new_link)
        return bus, links

    def test_dump_request(self):
        bus, __ = self.make_bus()
        sock = bus.open_socket()
        replies = sock.request(NetlinkMsg(RTM_GETLINK, flags=NLM_F_REQUEST | NLM_F_DUMP))
        assert [r.attrs["ifname"] for r in replies] == ["lo", "eth0"]

    def test_set_request_acked(self):
        bus, links = self.make_bus()
        sock = bus.open_socket()
        replies = sock.request(NetlinkMsg(RTM_NEWLINK, {"ifindex": 3, "ifname": "eth1"}))
        assert replies == []
        assert links[-1]["ifname"] == "eth1"

    def test_unhandled_type_errors(self):
        bus, __ = self.make_bus()
        sock = bus.open_socket()
        with pytest.raises(NetlinkError):
            sock.request(NetlinkMsg(SYSCTL_SET, {"name": "x", "value": "1"}))

    def test_multicast_only_to_subscribers(self):
        bus, __ = self.make_bus()
        subscriber = bus.open_socket()
        bystander = bus.open_socket()
        subscriber.subscribe("link")
        configurer = bus.open_socket()
        configurer.request(NetlinkMsg(RTM_NEWLINK, {"ifindex": 9, "ifname": "veth9"}))
        assert subscriber.pending() == 1
        assert bystander.pending() == 0
        note = subscriber.recv()
        assert note.msg_type == RTM_NEWLINK and note.attrs["ifname"] == "veth9"

    def test_recv_empty_returns_none(self):
        bus, __ = self.make_bus()
        sock = bus.open_socket()
        assert sock.recv() is None

    def test_push_listener(self):
        bus, __ = self.make_bus()
        sock = bus.open_socket()
        sock.subscribe("link")
        seen = []
        sock.add_listener(seen.append)
        bus.open_socket().request(NetlinkMsg(RTM_NEWLINK, {"ifindex": 4, "ifname": "x"}))
        assert len(seen) == 1 and sock.pending() == 0

    def test_unknown_group_rejected(self):
        bus, __ = self.make_bus()
        sock = bus.open_socket()
        with pytest.raises(ValueError):
            sock.subscribe("nonexistent-group")

    def test_closed_socket_gets_no_notifications(self):
        bus, __ = self.make_bus()
        sock = bus.open_socket()
        sock.subscribe("link")
        sock.close()
        bus.open_socket().request(NetlinkMsg(RTM_NEWLINK, {"ifindex": 5, "ifname": "y"}))
        assert sock.pending() == 0

    def test_handler_netlink_error_propagates(self):
        bus = NetlinkBus()

        def failing(req):
            raise NetlinkError(-17, "exists")

        bus.register_handler(RTM_NEWLINK, failing)
        sock = bus.open_socket()
        with pytest.raises(NetlinkError) as exc:
            sock.request(NetlinkMsg(RTM_NEWLINK, {"ifindex": 1}))
        assert exc.value.code == -17

    def test_duplicate_handler_rejected(self):
        bus = NetlinkBus()
        bus.register_handler(RTM_NEWLINK, lambda r: [])
        with pytest.raises(ValueError):
            bus.register_handler(RTM_NEWLINK, lambda r: [])

    def test_unsubscribe(self):
        bus, __ = self.make_bus()
        sock = bus.open_socket()
        sock.subscribe("link")
        sock.unsubscribe("link")
        bus.open_socket().request(NetlinkMsg(RTM_NEWLINK, {"ifindex": 5, "ifname": "y"}))
        assert sock.pending() == 0
