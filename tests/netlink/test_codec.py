"""Tests for the TLV attribute codec."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.netlink.codec import (
    AttrDef,
    AttrSchema,
    CodecError,
    pack_attr,
    schema,
    unpack_attrs,
)
from repro.netsim.addresses import IPv4Addr, MacAddr


class TestTLV:
    def test_round_trip_single(self):
        raw = pack_attr(5, b"hello")
        assert unpack_attrs(raw) == [(5, b"hello")]

    def test_padding_to_four_bytes(self):
        raw = pack_attr(1, b"abc")
        assert len(raw) % 4 == 0
        assert unpack_attrs(raw) == [(1, b"abc")]

    def test_multiple_attrs(self):
        raw = pack_attr(1, b"a") + pack_attr(2, b"bb") + pack_attr(3, b"")
        assert unpack_attrs(raw) == [(1, b"a"), (2, b"bb"), (3, b"")]

    def test_truncated_header_rejected(self):
        with pytest.raises(CodecError):
            unpack_attrs(b"\x01\x00")

    def test_bad_length_rejected(self):
        raw = bytearray(pack_attr(1, b"abcd"))
        raw[0] = 200  # length longer than buffer
        with pytest.raises(CodecError):
            unpack_attrs(bytes(raw))

    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=0xFFFF), st.binary(max_size=40)), max_size=8))
    def test_round_trip_property(self, attrs):
        raw = b"".join(pack_attr(t, p) for t, p in attrs)
        assert unpack_attrs(raw) == attrs


SUB = schema("sub", x=(1, "u16"), y=(2, "string"))
TOP = schema(
    "top",
    num=(1, "u32"),
    name=(2, "string"),
    addr=(3, "ip4"),
    hw=(4, "mac"),
    inner=(5, "nested", SUB),
    items=(6, "list", SUB),
    on=(7, "flag"),
    big=(8, "u64"),
    signed=(9, "s32"),
    blob=(10, "bytes"),
)


class TestSchema:
    def test_scalar_round_trip(self):
        values = {"num": 42, "name": "eth0", "big": 1 << 40, "signed": -7, "blob": b"\x01\x02"}
        assert TOP.decode(TOP.encode(values)) == values

    def test_address_types(self):
        values = {"addr": IPv4Addr.parse("10.0.0.1"), "hw": MacAddr.parse("02:00:00:00:00:01")}
        assert TOP.decode(TOP.encode(values)) == values

    def test_ip_accepts_string(self):
        decoded = TOP.decode(TOP.encode({"addr": "10.0.0.9"}))
        assert decoded["addr"] == IPv4Addr.parse("10.0.0.9")

    def test_nested_round_trip(self):
        values = {"inner": {"x": 3, "y": "deep"}}
        assert TOP.decode(TOP.encode(values)) == values

    def test_list_round_trip(self):
        values = {"items": [{"x": 1, "y": "a"}, {"x": 2, "y": "b"}]}
        assert TOP.decode(TOP.encode(values)) == values

    def test_flag_presence(self):
        assert TOP.decode(TOP.encode({"on": True})) == {"on": True}
        assert TOP.decode(TOP.encode({"on": False})) == {}

    def test_none_values_skipped(self):
        assert TOP.decode(TOP.encode({"num": None, "name": "x"})) == {"name": "x"}

    def test_unknown_attr_name_rejected_on_encode(self):
        with pytest.raises(CodecError):
            TOP.encode({"nope": 1})

    def test_unknown_attr_id_skipped_on_decode(self):
        raw = TOP.encode({"num": 1}) + pack_attr(99, b"future-extension")
        assert TOP.decode(raw) == {"num": 1}

    def test_bad_value_type_rejected(self):
        with pytest.raises(CodecError):
            TOP.encode({"num": "not-an-int"})

    def test_duplicate_ids_rejected(self):
        with pytest.raises(CodecError):
            AttrSchema("dup", {"a": AttrDef(1, "u8"), "b": AttrDef(1, "u8")})

    def test_nested_without_subschema_rejected(self):
        with pytest.raises(CodecError):
            AttrSchema("bad", {"inner": AttrDef(1, "nested")})

    def test_unknown_kind_rejected(self):
        with pytest.raises(CodecError):
            AttrDef(1, "float")

    @given(
        st.integers(min_value=0, max_value=0xFFFFFFFF),
        st.text(alphabet=st.characters(codec="ascii", exclude_characters="\x00"), max_size=20),
        st.integers(min_value=0, max_value=0xFFFFFFFF),
    )
    def test_schema_round_trip_property(self, num, name, ip_value):
        values = {"num": num, "name": name, "addr": IPv4Addr(ip_value)}
        assert TOP.decode(TOP.encode(values)) == values
