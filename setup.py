"""Setuptools shim.

This offline environment has setuptools but no ``wheel`` package, so PEP 660
editable installs (``pip install -e .`` with build isolation) fail with
``invalid command 'bdist_wheel'``. This shim lets the legacy editable path
work: ``pip install -e . --no-build-isolation --no-use-pep517``.
"""

from setuptools import setup

setup()
