"""Table VII: XDP vs TC hook — throughput and latency per network function.

Paper: XDP beats TC for every function (no sk_buff allocation, processing
closer to the wire): bridge 1.91 vs 0.89 Mpps, forwarding 1.77 vs 0.85,
filtering 1.18 vs 0.68; latencies ordered the same way. Bridging is the
cheapest function, filtering the most expensive.
"""

from repro.core import Controller
from repro.kernel import Kernel
from repro.measure.netperf import Netperf
from repro.measure.pktgen import Pktgen
from repro.measure.scenarios import setup_gateway, setup_router
from repro.measure.topology import LineTopology
from repro.netsim.clock import Clock
from repro.netsim.nic import Wire
from repro.netsim.packet import make_udp
from repro.tools import brctl, ip

HOOKS = ("xdp", "tc")
FUNCTIONS = ("bridge", "forwarding", "filtering")


def bridge_topology(hook):
    """source ── dut(br0: eth0+eth1) ── sink, one L2 segment."""
    clock = Clock()
    source, dut, sink = Kernel("source", clock=clock), Kernel("dut", clock=clock), Kernel("sink", clock=clock)
    src_eth = source.add_physical("eth0")
    dut_in = dut.add_physical("eth0")
    dut_out = dut.add_physical("eth1")
    sink_eth = sink.add_physical("eth0")
    for kernel, names in ((source, ["eth0"]), (dut, ["eth0", "eth1"]), (sink, ["eth0"])):
        for name in names:
            kernel.set_link(name, True)
    Wire(src_eth.nic, dut_in.nic)
    Wire(dut_out.nic, sink_eth.nic)
    source.add_address("eth0", "10.0.3.2/24")
    sink.add_address("eth0", "10.0.3.3/24")
    brctl(dut, "addbr br0")
    ip(dut, "link set br0 up")
    brctl(dut, "addif br0 eth0")
    brctl(dut, "addif br0 eth1")
    controller = Controller(dut, hook=hook)
    controller.start()
    # static FDB entries (a warmed-up bridge): both endpoints learned
    dut.fdb_add("eth0", src_eth.mac)
    dut.fdb_add("eth1", sink_eth.mac)
    return source, dut, sink, src_eth, dut_in, sink_eth


def measure_bridge(hook):
    source, dut, sink, src_eth, dut_in, sink_eth = bridge_topology(hook)
    delivered = []
    sink_eth.nic.attach(lambda frame, q: delivered.append(1))
    frames = [
        make_udp(src_eth.mac, sink_eth.mac, "10.0.3.2", "10.0.3.3", sport=1000 + i).to_bytes()
        for i in range(32)
    ]
    for i in range(100):  # warm-up
        dut_in.nic.receive_from_wire(frames[i % 32])
    delivered.clear()
    t0 = dut.clock.now_ns
    packets = 800
    for i in range(packets):
        dut_in.nic.receive_from_wire(frames[i % 32])
    per_packet = (dut.clock.now_ns - t0) / packets
    assert len(delivered) == packets, f"bridge({hook}) lost packets"
    return per_packet


def measure_forwarding(hook):
    topo = setup_router("linuxfp", hook=hook)
    result = Pktgen(topo).measure_per_packet_ns(packets=800)
    assert result.delivered == result.sent
    return result.per_packet_ns


def measure_filtering(hook):
    topo = setup_gateway("linuxfp", hook=hook)
    result = Pktgen(topo).measure_per_packet_ns(packets=800)
    assert result.delivered == result.sent
    return result.per_packet_ns


def run_table7():
    measurers = {"bridge": measure_bridge, "forwarding": measure_forwarding, "filtering": measure_filtering}
    cells = {}
    for function in FUNCTIONS:
        for hook in HOOKS:
            service_ns = measurers[function](hook)
            pps = 1e9 / service_ns
            latency = Netperf(dut_service_ns=service_ns, base_rtt_ns=8000, sessions=128).run(2500)
            cells[(function, hook)] = (pps, latency.avg_us)
    return cells


def test_table7_xdp_vs_tc(benchmark, report):
    cells = benchmark.pedantic(run_table7, rounds=1, iterations=1)

    lines = [f"{'':12s} {'XDP pps':>12s} {'TC pps':>12s} {'XDP lat(µs)':>12s} {'TC lat(µs)':>12s}"]
    for function in FUNCTIONS:
        xdp_pps, xdp_lat = cells[(function, "xdp")]
        tc_pps, tc_lat = cells[(function, "tc")]
        lines.append(f"{function:12s} {xdp_pps:12,.0f} {tc_pps:12,.0f} {xdp_lat:12.1f} {tc_lat:12.1f}")
    lines.append("(single core, 128 sessions for latency)")
    report.table("table7_xdp_vs_tc", "Table VII: XDP vs TC hook", lines)

    for function in FUNCTIONS:
        xdp_pps, xdp_lat = cells[(function, "xdp")]
        tc_pps, tc_lat = cells[(function, "tc")]
        assert xdp_pps > tc_pps, function  # no skb alloc at XDP
        assert xdp_lat < tc_lat, function
    # function ordering: bridge cheapest, filtering dearest (per hook)
    for hook in HOOKS:
        assert cells[("bridge", hook)][0] > cells[("forwarding", hook)][0]
        assert cells[("forwarding", hook)][0] > cells[("filtering", hook)][0]
