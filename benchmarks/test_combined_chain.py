"""Extended evaluation: subsystems individually and in combination.

The paper evaluates bridging, forwarding, and filtering "individually and
in combinations" (§VII). This bench measures the LinuxFP speedup for each
composition on the same hardware model — showing the speedup survives
chaining because FPMs are inlined (no per-module dispatch cost).
"""

from repro.core import Controller
from repro.kernel import Kernel
from repro.measure.pktgen import Pktgen
from repro.measure.scenarios import setup_gateway, setup_router
from repro.netsim.clock import Clock
from repro.netsim.nic import Wire
from repro.netsim.packet import make_udp
from repro.tools import brctl, ip, iptables, sysctl


def bridged_l3_dut(accelerated, filtering):
    """DUT bridging the ingress into an L3 uplink (bridge -> [filter] -> router)."""
    clock = Clock()
    dut = Kernel("dut", clock=clock)
    source = Kernel("source", clock=clock)
    sink = Kernel("sink", clock=clock)
    for peer, dut_if in ((source, "eth0"), (sink, "eth2")):
        dut.add_physical(dut_if)
        ip(dut, f"link set {dut_if} up")
        peer.add_physical("eth0")
        ip(peer, "link set eth0 up")
        Wire(dut.devices.by_name(dut_if).nic, peer.devices.by_name("eth0").nic)
    brctl(dut, "addbr br0")
    brctl(dut, "addif br0 eth0")
    ip(dut, "addr add 10.1.0.1/24 dev br0")
    ip(dut, "link set br0 up")
    ip(dut, "addr add 10.2.0.1/24 dev eth2")
    ip(dut, "route add 10.100.0.0/16 via 10.2.0.2")
    sysctl(dut, "-w net.ipv4.ip_forward=1")
    if filtering:
        for i in range(100):
            iptables(dut, f"-A FORWARD -s 172.16.{i % 256}.0/24 -j DROP")
    if accelerated:
        Controller(dut, hook="xdp").start()
    src_mac = source.devices.by_name("eth0").mac
    dut.fdb_add("eth0", src_mac)
    dut.neigh_add("eth2", "10.2.0.2", sink.devices.by_name("eth0").mac)
    sink.devices.by_name("eth0").nic.attach(lambda f, q: None)
    bridge_mac = dut.devices.by_name("br0").mac
    frame = make_udp(src_mac, bridge_mac, "10.1.0.10", "10.100.0.1").to_bytes()
    return dut, frame


def measure_bridged(accelerated, filtering, packets=600):
    dut, frame = bridged_l3_dut(accelerated, filtering)
    nic = dut.devices.by_name("eth0").nic
    for __ in range(80):
        nic.receive_from_wire(frame)
    t0 = dut.clock.now_ns
    for __ in range(packets):
        nic.receive_from_wire(frame)
    return (dut.clock.now_ns - t0) / packets


def run_combined():
    rows = {}
    # forwarding only
    linux = Pktgen(setup_router("linux")).measure_per_packet_ns(packets=600)
    linuxfp = Pktgen(setup_router("linuxfp")).measure_per_packet_ns(packets=600)
    rows["forwarding"] = (linux.per_packet_ns, linuxfp.per_packet_ns)
    # forwarding + filtering
    linux = Pktgen(setup_gateway("linux")).measure_per_packet_ns(packets=600)
    linuxfp = Pktgen(setup_gateway("linuxfp")).measure_per_packet_ns(packets=600)
    rows["fwd+filter"] = (linux.per_packet_ns, linuxfp.per_packet_ns)
    # bridge + forwarding
    rows["bridge+fwd"] = (measure_bridged(False, False), measure_bridged(True, False))
    # bridge + filter + forwarding (the full chain)
    rows["bridge+filter+fwd"] = (measure_bridged(False, True), measure_bridged(True, True))
    return rows


def test_combined_subsystem_chains(benchmark, report):
    rows = benchmark.pedantic(run_combined, rounds=1, iterations=1)

    lines = [f"{'chain':20s} {'Linux ns':>9s} {'LinuxFP ns':>10s} {'speedup':>8s}"]
    for chain, (slow, fast) in rows.items():
        lines.append(f"{chain:20s} {slow:9.0f} {fast:10.0f} {slow / fast:8.2f}x")
    lines.append("(single core, 64B; combinations synthesized as one inlined program)")
    report.table("combined_chain", "Extended: subsystem combinations", lines)

    for chain, (slow, fast) in rows.items():
        assert fast < slow, chain
    # chaining FPMs must not erode the speedup below a healthy floor
    speedups = {chain: slow / fast for chain, (slow, fast) in rows.items()}
    assert min(speedups.values()) > 1.25
