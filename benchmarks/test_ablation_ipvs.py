"""Ablation: the prototype ipvs FPM (paper §VIII future work).

The paper reports "initial prototyping showing promising results" for
accelerating ipvs. Our reproduction includes that prototype behind
``Controller(enable_ipvs=True)``: established (conntrack-pinned) flows are
DNAT'd in the fast path; new flows still reach the slow-path scheduler.
This bench measures the steady-state win.
"""

from repro.core import Controller
from repro.measure.pktgen import Pktgen
from repro.measure.topology import LineTopology
from repro.netsim.packet import IPPROTO_TCP, make_tcp
from repro.tools import ip, ipvsadm


def build(accelerated):
    topo = LineTopology()
    dut = topo.dut
    ip(dut, "addr add 10.96.0.1/32 dev lo")
    ip(dut, "route add 10.200.0.0/24 via 10.0.2.2")
    ipvsadm(dut, "-A -t 10.96.0.1:80 -s rr")
    ipvsadm(dut, "-a -t 10.96.0.1:80 -r 10.200.0.10:8080")
    topo.prewarm_neighbors()
    if accelerated:
        topo.controller = Controller(dut, hook="xdp", enable_ipvs=True)
        topo.controller.start()
    # pin the flow (slow-path scheduling happens on this first packet)
    first = make_tcp(topo.src_eth.mac, topo.dut_in.mac, "10.0.1.2", "10.96.0.1",
                     sport=7777, dport=80).to_bytes()
    topo.dut_in.nic.receive_from_wire(first)
    return topo


def run_ablation():
    results = {}
    for label, accelerated in (("slow-path ipvs", False), ("ipvs FPM", True)):
        topo = build(accelerated)
        flow = make_tcp(topo.src_eth.mac, topo.dut_in.mac, "10.0.1.2", "10.96.0.1",
                        sport=7777, dport=80).to_bytes()
        generator = Pktgen(topo, frames=[flow])
        results[label] = generator.throughput(cores=1, packets=600)
    return results


def test_ablation_ipvs_fast_path(benchmark, report):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    slow = results["slow-path ipvs"]
    fast = results["ipvs FPM"]
    speedup = slow.per_packet_ns / fast.per_packet_ns
    lines = [
        f"{'variant':16s} {'ns/pkt':>8s} {'Mpps':>7s}",
        f"{'slow-path ipvs':16s} {slow.per_packet_ns:8.0f} {slow.mpps:7.3f}",
        f"{'ipvs FPM':16s} {fast.per_packet_ns:8.0f} {fast.mpps:7.3f}",
        f"(established-flow DNAT; speedup {speedup:.2f}x — the paper calls the "
        f"prototype 'promising')",
    ]
    report.table("ablation_ipvs", "Ablation: ipvs FPM prototype (future work)", lines)

    assert slow.delivery_ratio == fast.delivery_ratio == 1.0
    assert speedup > 1.2
