"""Ablation: on-demand synthesis vs a generic always-everything fast path.

LinuxFP's dynamic composability thesis (§III-A): "less code leads to more
efficient code paths". We compare the minimal synthesized router fast path
against a *generic* path that — like a fixed-function platform — always
compiles in filtering and ipvs handling even when nothing is configured.
"""

from repro.core.fpm.library import render_fast_path
from repro.ebpf.loader import Loader
from repro.ebpf.minic import compile_c
from repro.measure.pktgen import Pktgen
from repro.measure.topology import LineTopology

MINIMAL_NODES = {"router": {"conf": {"decrement_ttl": True}, "next_nf": None}}
GENERIC_NODES = {
    "ipvs": {"conf": {"services": []}, "next_nf": "filter"},
    "filter": {"conf": {"chain": "FORWARD"}, "next_nf": "router"},
    "router": {"conf": {"decrement_ttl": True}, "next_nf": None},
}


def measure(nodes):
    topo = LineTopology()
    topo.install_prefixes(50)
    topo.prewarm_neighbors()
    source = render_fast_path("eth0", "xdp", nodes)
    program = compile_c(source, name="ablate", hook="xdp")
    loader = Loader(topo.dut)
    loader.attach_xdp("eth0", loader.load(program))
    result = Pktgen(topo).throughput(cores=1, packets=800)
    assert result.delivery_ratio == 1.0
    return result, len(program)


def run_ablation():
    minimal, minimal_insns = measure(MINIMAL_NODES)
    generic, generic_insns = measure(GENERIC_NODES)
    return minimal, minimal_insns, generic, generic_insns


def test_ablation_minimal_vs_generic_fast_path(benchmark, report):
    minimal, minimal_insns, generic, generic_insns = benchmark.pedantic(
        run_ablation, rounds=1, iterations=1
    )

    overhead = (generic.per_packet_ns - minimal.per_packet_ns) / minimal.per_packet_ns
    lines = [
        f"{'variant':12s} {'insns':>7s} {'ns/pkt':>8s} {'Mpps':>7s}",
        f"{'minimal':12s} {minimal_insns:7d} {minimal.per_packet_ns:8.0f} {minimal.mpps:7.3f}",
        f"{'generic':12s} {generic_insns:7d} {generic.per_packet_ns:8.0f} {generic.mpps:7.3f}",
        f"(generic = filter+ipvs always compiled in; overhead {overhead * 100:.1f}% "
        f"with ZERO rules/services configured)",
    ]
    report.table("ablation_minimality", "Ablation: minimal synthesis vs generic fast path", lines)

    assert generic_insns > minimal_insns
    assert generic.per_packet_ns > minimal.per_packet_ns
    assert overhead > 0.05  # the minimality win is measurable
