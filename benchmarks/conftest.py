"""Benchmark harness support.

Each benchmark regenerates one of the paper's tables/figures. Result rows
are collected by the ``report`` fixture, printed in the terminal summary
(so they survive pytest's output capture), and written to
``benchmarks/results/<name>.txt`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from typing import List, Tuple

import pytest

_REPORTS: List[Tuple[str, List[str]]] = []
RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


class Reporter:
    def table(self, name: str, title: str, lines: List[str]) -> None:
        _REPORTS.append((title, list(lines)))
        os.makedirs(RESULTS_DIR, exist_ok=True)
        with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as handle:
            handle.write(title + "\n")
            handle.write("\n".join(lines) + "\n")


@pytest.fixture(scope="session")
def report() -> Reporter:
    return Reporter()


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.write_line("")
    terminalreporter.write_line("=" * 72)
    terminalreporter.write_line("PAPER REPRODUCTION RESULTS")
    terminalreporter.write_line("=" * 72)
    for title, lines in _REPORTS:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"--- {title} ---")
        for line in lines:
            terminalreporter.write_line(line)
