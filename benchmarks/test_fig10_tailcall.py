"""Fig 10: chaining N trivial network functions — function call vs tail call.

The paper's platform-independent microbenchmark: N trivial NFs in front of
one function that rewrites Ethernet/IP headers and XDP_REDIRECTs out the
other interface. Inlined function calls keep throughput ~steady; tail calls
lose ~1 % per added function.
"""

from repro.ebpf.loader import Loader
from repro.ebpf.maps import ProgArray
from repro.ebpf.minic import compile_c
from repro.measure.pktgen import Pktgen
from repro.measure.topology import LineTopology

NS = tuple(range(0, 11))

FORWARD_BODY = """
    u64 dst = ld32(pkt, 30);
    u64 fib[2];
    if (fib_lookup(dst, fib) != 0) { return 2; }
    st48(pkt, 0, ld48(fib, 10));
    st48(pkt, 6, ld48(fib, 4));
    return redirect(ld32(fib, 0), 0);
"""


def build_function_call_chain(n):
    """One program: N trivial inlined NFs, then the forwarding NF."""
    parts = []
    for i in range(n):
        parts.append(f"static u64 nf{i}(u8* pkt) {{ if (ld16(pkt, 12) == 0) {{ return 1; }} return 0; }}")
    calls = "\n".join(f"    if (nf{i}(pkt) != 0) {{ return 1; }}" for i in range(n))
    source = "\n".join(parts) + f"""
u32 main(u8* pkt, u64 len, u64 ifindex) {{
    if (len < 34) {{ return 2; }}
{calls}
{FORWARD_BODY}
}}
"""
    return compile_c(source, name=f"fnchain{n}", hook="xdp")


def build_tail_call_chain(n, jmp):
    """N+1 programs chained through a prog array."""
    programs = []
    for i in range(n):
        source = f"""
extern map jmp;
u32 main(u8* pkt, u64 len, u64 ifindex) {{
    if (ld16(pkt, 12) == 0) {{ return 1; }}
    tail_call(pkt, jmp, {i + 1});
    return 2;
}}
"""
        programs.append(compile_c(source, name=f"tc_nf{i}", hook="xdp", maps={"jmp": jmp}))
    final = compile_c(
        f"u32 main(u8* pkt, u64 len, u64 ifindex) {{\n    if (len < 34) {{ return 2; }}\n{FORWARD_BODY}\n}}",
        name="tc_fwd",
        hook="xdp",
    )
    programs.append(final)
    for i, program in enumerate(programs):
        jmp.set_prog(i, program)
    return programs[0]


def measure(variant, n):
    topo = LineTopology()
    topo.install_prefixes(8)
    topo.prewarm_neighbors()
    loader = Loader(topo.dut)
    if variant == "function":
        head = build_function_call_chain(n)
    else:
        jmp = ProgArray("jmp", max_entries=16)
        head = build_tail_call_chain(n, jmp)
    loader.attach_xdp("eth0", loader.load(head))
    result = Pktgen(topo, num_prefixes=8).throughput(cores=1, packets=400)
    assert result.delivery_ratio == 1.0
    return result.mpps


def run_fig10():
    return {
        variant: [measure(variant, n) for n in NS]
        for variant in ("function", "tailcall")
    }


def test_fig10_function_vs_tail_call(benchmark, report):
    series = benchmark.pedantic(run_fig10, rounds=1, iterations=1)

    lines = ["N NFs     " + " ".join(str(n).rjust(7) for n in NS)]
    for variant in ("function", "tailcall"):
        lines.append(f"{variant:9s} " + " ".join(f"{v:7.3f}" for v in series[variant]))
    fn_drop = 1 - series["function"][-1] / series["function"][0]
    tc_drop = 1 - series["tailcall"][-1] / series["tailcall"][0]
    lines.append(f"(Mpps; drop over 10 NFs: function={fn_drop * 100:.1f}%, tailcall={tc_drop * 100:.1f}%)")
    report.table("fig10_tailcall", "Fig 10: function call vs tail call", lines)

    # paper: tail calls lose ~1% per added function; function calls steady
    per_fn_tail = tc_drop / 10
    per_fn_inline = fn_drop / 10
    assert 0.004 < per_fn_tail < 0.02
    assert per_fn_inline < per_fn_tail / 2
    assert series["function"][10] > series["tailcall"][10]
