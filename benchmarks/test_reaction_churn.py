"""Extended: controller reaction under Kubernetes pod churn.

The paper measures single-command reaction times (Table VI); production
CNI environments generate *bursts* of netlink events as pods come and go.
This bench churns pods on an accelerated node and reports the reaction-
time distribution and the synthesis-skipping efficiency (events that only
needed graph re-evaluation vs full resynthesis).
"""

import statistics

from repro.k8s import Cluster
from repro.measure.stats import summarize


def run_churn(pod_rounds=6, pods_per_round=3):
    cluster = Cluster(workers=2)
    cluster.accelerate()
    node = cluster.workers[0]
    controller = node.controller
    for __ in range(pod_rounds):
        created = [cluster.create_pod(node) for __i in range(pods_per_round)]
        # tear one down each round: DELLINK + route churn
        victim = created[0]
        node.kernel.del_device(node.host_veth_names()[-pods_per_round])
    reactions = controller.reactions
    times_ms = [r.seconds * 1e3 for r in reactions]
    redeploys = [r for r in reactions if r.redeployed]
    breadth = [len(r.redeployed) for r in redeploys]
    return {
        "events": len(reactions),
        "redeploys": len(redeploys),
        "mean_breadth": statistics.mean(breadth) if breadth else 0.0,
        "max_breadth": max(breadth, default=0),
        "summary": summarize(times_ms),
        "deployed": len(controller.deployed_summary()),
    }


def test_reaction_under_pod_churn(benchmark, report):
    result = benchmark.pedantic(run_churn, rounds=1, iterations=1)

    summary = result["summary"]
    lines = [
        f"netlink events processed : {result['events']}",
        f"events causing redeploys : {result['redeploys']} "
        f"({result['redeploys'] / result['events'] * 100:.0f}%)",
        f"redeploy breadth         : mean {result['mean_breadth']:.1f} / "
        f"max {result['max_breadth']} interfaces per event "
        f"(of {result['deployed']} deployed)",
        f"reaction time mean/p99   : {summary.mean:.2f} / {summary.p99:.2f} ms",
        "(pod create/delete events are structural and resynthesize, but each",
        " redeploy is scoped to the interfaces whose graph actually changed)",
    ]
    report.table("reaction_churn", "Extended: reaction time under pod churn", lines)

    assert result["events"] > 20
    assert result["redeploys"] < result["events"]
    # scoped redeploys: a pod event must not resynthesize the whole node
    assert result["mean_breadth"] < 3.0
    assert result["max_breadth"] <= 3
    assert summary.p99 < 1000.0  # sub-second even at P99
