"""Fig 1: flame graph of Linux forwarding — the hot-spot motivation.

Reproduces the observation that drives LinuxFP's design: for a given
configuration, the majority of traffic follows one sequence of kernel
functions, so a small synthesized fast path can capture most of the cost.
"""

from repro.measure.flamegraph import profile_forwarding


def test_fig1_forwarding_flamegraph(benchmark, report):
    graph = benchmark.pedantic(lambda: profile_forwarding(packets=400), rounds=1, iterations=1)

    lines = ["collapsed stacks (self-time ns):"]
    lines += ["  " + line for line in graph.collapsed()]
    lines.append("")
    lines.append("hottest functions (share of self time):")
    for name, share in graph.hottest(6):
        lines.append(f"  {name:32s} {share * 100:5.1f}%")
    lines.append("")
    lines.append("flame view:")
    lines += ["  " + line for line in graph.render_ascii().splitlines()]
    report.table("fig1_flamegraph", "Fig 1: Linux forwarding flame graph", lines)

    # the paper's claim: forwarding has concentrated hot spots
    hottest = graph.hottest(6)
    assert hottest[0][1] > 0.15
    top3_share = sum(share for __, share in hottest[:3])
    assert top3_share > 0.45
    names = {name for name, __ in hottest}
    assert {"dev_queue_xmit", "fib_table_lookup"} & names
