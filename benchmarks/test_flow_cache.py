"""Megaflow-style flow cache: steady-state speedup (extension beyond the paper).

A gateway DUT with 8 installed prefixes and 128 non-matching FORWARD rules
forwards a steady 64-flow Pktgen workload. With the flow cache off, every
packet pays the full synthesized fast path — including the linear iptables
scan. With the cache on, the first packet of each flow records its verdict
and every later packet replays it after an O(1) lookup plus generation-tag
revalidation. The acceptance bar for this extension is a ≥2x simulated
packets-per-second improvement at steady state.
"""

from repro.core import Controller
from repro.kernel.netfilter import Rule
from repro.measure.pktgen import Pktgen
from repro.measure.stats import format_flow_cache
from repro.measure.topology import LineTopology

NUM_PREFIXES = 8
NUM_FLOWS = 64
NUM_RULES = 128
PACKETS = 2000
WARMUP = 200


def run_variant(flow_cache):
    topo = LineTopology()
    topo.install_prefixes(NUM_PREFIXES)
    for i in range(NUM_RULES):
        # dport never matches the workload (Pktgen sends dport=9): the rules
        # only exist to make the per-packet iptables scan cost realistic
        topo.dut.ipt_append("FORWARD", Rule(target="DROP", dport=20_000 + i))
    Controller(topo.dut, hook="xdp", flow_cache=flow_cache).start()
    gen = Pktgen(topo, num_flows=NUM_FLOWS, num_prefixes=NUM_PREFIXES)
    result = gen.measure_per_packet_ns(packets=PACKETS, warmup=WARMUP)
    stats = topo.dut.flow_cache.stats if flow_cache else None
    return result, stats


def run_comparison():
    off_result, _ = run_variant(flow_cache=False)
    on_result, on_stats = run_variant(flow_cache=True)
    return off_result, on_result, on_stats


def test_flow_cache_speedup(benchmark, report):
    off_result, on_result, on_stats = benchmark.pedantic(run_comparison, rounds=1, iterations=1)

    speedup = off_result.per_packet_ns / on_result.per_packet_ns
    lines = [
        f"workload: {NUM_FLOWS} flows, {NUM_PREFIXES} prefixes, {NUM_RULES} FORWARD rules, "
        f"{PACKETS} packets after {WARMUP} warm-up",
        f"  cache off: {off_result.per_packet_ns:7.1f} ns/pkt  {off_result.mpps:5.2f} Mpps/core",
        f"  cache on:  {on_result.per_packet_ns:7.1f} ns/pkt  {on_result.mpps:5.2f} Mpps/core",
        f"  speedup:   {speedup:5.2f}x",
        "",
    ] + format_flow_cache(on_stats)
    report.table("flow_cache", "Flow cache steady-state speedup (beyond the paper)", lines)

    # every packet must still be delivered on both variants
    assert off_result.delivered == off_result.sent
    assert on_result.delivered == on_result.sent
    # 64 steady flows -> 64 records during warm-up, everything after is a hit
    assert sum(on_stats.misses.values()) == NUM_FLOWS
    assert sum(on_stats.hits.values()) >= PACKETS
    # the acceptance bar for this extension
    assert speedup >= 2.0
