"""Table I: the fast-path / slow-path division of labor, verified.

For each subsystem we drive the *common case* and each *corner case* the
table assigns to the control plane + slow path, and check where the packet
actually went (fast-path redirect vs slow-path stack counters).
"""

from repro.core import Controller
from repro.kernel import Kernel
from repro.kernel.hooks_api import XDP_PASS, XDP_REDIRECT
from repro.measure.topology import LineTopology
from repro.netsim.clock import Clock
from repro.netsim.nic import Wire
from repro.netsim.packet import Ethernet, Packet, make_arp_request, make_udp
from repro.tools import brctl, ip, iptables, sysctl


def router_case():
    topo = LineTopology()
    topo.install_prefixes(4)
    Controller(topo.dut, hook="xdp").start()
    topo.prewarm_neighbors()
    dut = topo.dut
    rows = []

    def verdicts():
        return dict(dut.stack.xdp_actions)

    def classify(name, frame):
        before = verdicts()
        topo.dut_in.nic.receive_from_wire(frame)
        after = verdicts()
        fast = after.get(XDP_REDIRECT, 0) > before.get(XDP_REDIRECT, 0)
        rows.append((name, "FAST" if fast else "slow path"))

    classify("forwarding: known route, resolved neighbor",
             make_udp(topo.src_eth.mac, topo.dut_in.mac, "10.0.1.2", topo.flow_destination(0, 4)).to_bytes())
    classify("forwarding: ARP request (control traffic)",
             make_arp_request(topo.src_eth.mac, "10.0.1.2", "10.0.1.1").to_bytes())
    fragment = make_udp(topo.src_eth.mac, topo.dut_in.mac, "10.0.1.2", topo.flow_destination(0, 4))
    fragment.ip.flags = 0x1
    classify("forwarding: IP fragment", fragment.to_bytes())
    unresolved = make_udp(topo.src_eth.mac, topo.dut_in.mac, "10.0.1.2", topo.flow_destination(1, 4))
    dut.neighbors.remove(topo.dut_out.ifindex, "10.0.2.2")
    classify("forwarding: unresolved neighbor (needs ARP)", unresolved.to_bytes())
    return rows


def bridge_case():
    clock = Clock()
    dut = Kernel("dut", clock=clock)
    host_a, host_b = Kernel("a", clock=clock), Kernel("b", clock=clock)
    for peer, dut_if in ((host_a, "eth0"), (host_b, "eth1")):
        dut.add_physical(dut_if)
        ip(dut, f"link set {dut_if} up")
        peer.add_physical("eth0")
        ip(peer, "link set eth0 up")
        Wire(dut.devices.by_name(dut_if).nic, peer.devices.by_name("eth0").nic)
    brctl(dut, "addbr br0")
    brctl(dut, "addif br0 eth0")
    brctl(dut, "addif br0 eth1")
    ip(dut, "link set br0 up")
    brctl(dut, "stp br0 on")
    Controller(dut, hook="xdp").start()
    mac_a = host_a.devices.by_name("eth0").mac
    mac_b = host_b.devices.by_name("eth0").mac
    dut.fdb_add("eth0", mac_a)
    dut.fdb_add("eth1", mac_b)
    rows = []

    def classify(name, frame):
        before = dict(dut.stack.xdp_actions)
        host_a.devices.by_name("eth0").nic.transmit(frame)
        after = dict(dut.stack.xdp_actions)
        fast = after.get(XDP_REDIRECT, 0) > before.get(XDP_REDIRECT, 0)
        rows.append((name, "FAST" if fast else "slow path"))

    classify("bridging: learned FDB entry",
             make_udp(mac_a, mac_b, "10.0.0.1", "10.0.0.2").to_bytes())
    classify("bridging: FDB miss (flooding)",
             make_udp(mac_a, "02:99:00:00:00:01", "10.0.0.1", "10.0.0.9").to_bytes())
    classify("bridging: broadcast",
             make_udp(mac_a, "ff:ff:ff:ff:ff:ff", "10.0.0.1", "10.0.0.255").to_bytes())
    from repro.kernel.bridge import STP_MULTICAST

    bpdu = Packet(eth=Ethernet(dst=STP_MULTICAST, src=mac_a, ethertype=0x0027),
                  payload=(0).to_bytes(20, "big")).to_bytes()
    classify("bridging: STP BPDU (protocol processing)", bpdu)
    classify("bridging: unlearned source (MAC learning)",
             make_udp("02:99:00:00:00:02", mac_b, "10.0.0.9", "10.0.0.2").to_bytes())
    return rows


def filter_case():
    topo = LineTopology()
    topo.install_prefixes(4)
    iptables(topo.dut, "-A FORWARD -s 172.16.0.0/24 -j DROP")
    Controller(topo.dut, hook="xdp").start()
    topo.prewarm_neighbors()
    dut = topo.dut
    rows = []

    def classify(name, frame, expect_drop=False):
        before_redirect = dut.stack.xdp_actions.get(XDP_REDIRECT, 0)
        before_drop = dut.stack.drops.get("xdp_drop", 0)
        topo.dut_in.nic.receive_from_wire(frame)
        if expect_drop:
            fast = dut.stack.drops.get("xdp_drop", 0) > before_drop
        else:
            fast = dut.stack.xdp_actions.get(XDP_REDIRECT, 0) > before_redirect
        rows.append((name, "FAST" if fast else "slow path"))

    classify("filtering: accept + forward",
             make_udp(topo.src_eth.mac, topo.dut_in.mac, "10.0.1.2", topo.flow_destination(0, 4)).to_bytes())
    classify("filtering: matched DROP rule",
             make_udp(topo.src_eth.mac, topo.dut_in.mac, "172.16.0.9", topo.flow_destination(0, 4)).to_bytes(),
             expect_drop=True)
    return rows


def run_table1():
    return router_case() + bridge_case() + filter_case()


def test_table1_fast_slow_split(benchmark, report):
    rows = benchmark.pedantic(run_table1, rounds=1, iterations=1)

    lines = [f"{'case':50s} {'path':>10s}"]
    for name, path in rows:
        lines.append(f"{name:50s} {path:>10s}")
    report.table("table1_split", "Table I: fast/slow path division, observed", lines)

    expected = {
        "forwarding: known route, resolved neighbor": "FAST",
        "forwarding: ARP request (control traffic)": "slow path",
        "forwarding: IP fragment": "slow path",
        "forwarding: unresolved neighbor (needs ARP)": "slow path",
        "bridging: learned FDB entry": "FAST",
        "bridging: FDB miss (flooding)": "slow path",
        "bridging: broadcast": "slow path",
        "bridging: STP BPDU (protocol processing)": "slow path",
        "bridging: unlearned source (MAC learning)": "slow path",
        "filtering: accept + forward": "FAST",
        "filtering: matched DROP rule": "FAST",
    }
    assert dict(rows) == expected
