"""Table V: pod-to-pod latency with a single pod pair (ms).

Paper: Linux intra 9.68/20.1/2.02, LinuxFP intra 7.92/15.9/1.53,
Linux inter 29.2/34.7/3.09, LinuxFP inter 25.2/30.9/2.91 (avg/P99/std) —
LinuxFP cuts mean RTT ~18 % intra and ~14 % inter, transparently.
"""

from repro.measure.k8s_bench import measure_pod_rr

ROWS = (
    ("Linux (intra)", True, False),
    ("LinuxFP (intra)", True, True),
    ("Linux (inter)", False, False),
    ("LinuxFP (inter)", False, True),
)


def run_table5():
    return {
        label: measure_pod_rr(intra=intra, accelerated=accel, transactions=2500)
        for label, intra, accel in ROWS
    }


def test_table5_pod_latency(benchmark, report):
    rows = benchmark.pedantic(run_table5, rounds=1, iterations=1)

    lines = [f"{'':18s} {'Avg.':>8s} {'P_99':>8s} {'Std.Dev':>8s}"]
    for label, __, __a in ROWS:
        r = rows[label]
        lines.append(f"{label:18s} {r.avg_ms:8.3f} {r.p99_ms:8.1f} {r.std_ms:8.3f}")
    lines.append("(ms, single pod pair, netperf TCP_RR)")
    report.table("table5_k8s_latency", "Table V: pod-to-pod latency", lines)

    intra_ratio = rows["LinuxFP (intra)"].avg_ms / rows["Linux (intra)"].avg_ms
    inter_ratio = rows["LinuxFP (inter)"].avg_ms / rows["Linux (inter)"].avg_ms
    assert 0.75 < intra_ratio < 0.92  # paper: 0.818
    assert 0.80 < inter_ratio < 0.97  # paper: 0.861
    # inter-node crosses the vxlan overlay: strictly slower
    assert rows["Linux (inter)"].avg_ms > rows["Linux (intra)"].avg_ms
    # P99 above mean everywhere
    for label, __, __a in ROWS:
        assert rows[label].p99_ms > rows[label].avg_ms
