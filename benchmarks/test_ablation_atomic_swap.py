"""Ablation: naive XDP re-attach vs LinuxFP's atomic tail-call swap (Fig 4).

"Swapping the eBPF program currently deployed on either hook can incur
packet loss for several seconds" (§IV-A2). We reconfigure the gateway five
times while a packet stream is in flight:

- *naive*: each reconfiguration loads a new program and re-attaches it at
  the hook, resetting the driver rings (a ring's worth of loss each time);
- *LinuxFP*: the dispatcher stays attached; only a prog-array slot is
  updated — an atomic pointer write, zero loss.
"""

from repro.core import Controller
from repro.core.fpm.library import render_fast_path
from repro.ebpf.loader import Loader, XDP_REPLACE_RESET_FRAMES
from repro.ebpf.minic import compile_c
from repro.measure.pktgen import Pktgen
from repro.measure.topology import LineTopology
from repro.netsim.packet import make_udp
from repro.tools import iptables

PACKETS = 2000
RECONFIGS_AT = (300, 600, 900, 1200, 1500)

GATEWAY_NODES = {
    "filter": {"conf": {"chain": "FORWARD"}, "next_nf": "router"},
    "router": {"conf": {"decrement_ttl": True}, "next_nf": None},
}


def run_variant(naive):
    topo = LineTopology()
    topo.install_prefixes(8)
    topo.prewarm_neighbors()
    delivered = []
    topo.sink_eth.nic.attach(lambda frame, q: delivered.append(1))

    loader = Loader(topo.dut, model_reset_loss=True)
    if naive:
        source = render_fast_path("eth0", "xdp", GATEWAY_NODES)
        loader.attach_xdp("eth0", loader.load(compile_c(source, name="gw0", hook="xdp")))
    else:
        controller = Controller(topo.dut, hook="xdp")
        controller.start()

    frame = make_udp(topo.src_eth.mac, topo.dut_in.mac, "10.0.1.2", topo.flow_destination(0, 8)).to_bytes()
    reconfigs = 0
    for i in range(PACKETS):
        if i in RECONFIGS_AT:
            reconfigs += 1
            if naive:
                # operator reloads the (re)generated program at the hook
                source = render_fast_path("eth0", "xdp", GATEWAY_NODES)
                program = compile_c(source, name=f"gw{reconfigs}", hook="xdp")
                loader.attach_xdp("eth0", loader.load(program))
            else:
                # the same logical change through the controller
                iptables(topo.dut, f"-A FORWARD -s 172.16.{reconfigs}.0/24 -j DROP")
        topo.dut_in.nic.receive_from_wire(frame)
    return PACKETS - len(delivered), topo.dut_in.nic.stats.rx_reset_dropped


def run_ablation():
    naive_lost, naive_reset = run_variant(naive=True)
    swap_lost, swap_reset = run_variant(naive=False)
    return naive_lost, naive_reset, swap_lost, swap_reset


def test_ablation_atomic_swap(benchmark, report):
    naive_lost, naive_reset, swap_lost, swap_reset = benchmark.pedantic(
        run_ablation, rounds=1, iterations=1
    )

    lines = [
        f"{PACKETS} packets in flight, {len(RECONFIGS_AT)} reconfigurations:",
        f"  naive re-attach:        {naive_lost:4d} packets lost "
        f"({naive_reset} to driver resets of ~{XDP_REPLACE_RESET_FRAMES} frames each)",
        f"  LinuxFP tail-call swap: {swap_lost:4d} packets lost",
        "(Fig 4: atomic prog-array update vs program replacement)",
    ]
    report.table("ablation_atomic_swap", "Ablation: atomic swap vs naive re-attach", lines)

    assert naive_lost == len(RECONFIGS_AT) * XDP_REPLACE_RESET_FRAMES
    assert swap_lost == 0
