"""Fig 8: single-core gateway throughput vs number of filtering rules.

Paper shape: Linux and plain-iptables LinuxFP degrade linearly with rule
count (iptables' linear scan, inherited by ``bpf_ipt_lookup``); Polycube's
bitvector classifier is nearly flat; LinuxFP with ipset aggregation is flat
AND fastest.
"""

from repro.measure.scenarios import measure_throughput, setup_gateway

RULE_COUNTS = (10, 50, 100, 200, 500, 1000)
VARIANTS = (
    ("linux", "linux", {}),
    ("linuxfp", "linuxfp", {}),
    ("linuxfp-ipset", "linuxfp", {"use_ipset": True}),
    ("polycube", "polycube", {}),
)


def run_fig8():
    series = {}
    for name, platform, kwargs in VARIANTS:
        row = []
        for rules in RULE_COUNTS:
            topo = setup_gateway(platform, num_rules=rules, **kwargs)
            row.append(measure_throughput(topo, cores=1, packets=300).mpps)
        series[name] = row
    return series


def test_fig8_throughput_vs_rule_count(benchmark, report):
    series = benchmark.pedantic(run_fig8, rounds=1, iterations=1)

    header = "variant         " + " ".join(f"{r}r".rjust(7) for r in RULE_COUNTS)
    lines = [header]
    for name, __, __kw in VARIANTS:
        lines.append(f"{name:15s} " + " ".join(f"{v:7.3f}" for v in series[name]))
    lines.append("(Mpps, single core, 64B packets)")
    report.table("fig8_rule_scaling", "Fig 8: gateway throughput vs #filter rules", lines)

    # linear-scan systems degrade substantially from 10 -> 1000 rules
    assert series["linux"][-1] / series["linux"][0] < 0.55
    assert series["linuxfp"][-1] / series["linuxfp"][0] < 0.55
    # classifier/ipset systems stay nearly flat
    assert series["polycube"][-1] / series["polycube"][0] > 0.90
    assert series["linuxfp-ipset"][-1] / series["linuxfp-ipset"][0] > 0.90
    # at scale, ipset-aggregated LinuxFP is the fastest eBPF option
    assert series["linuxfp-ipset"][-1] > series["polycube"][-1]
    assert series["linuxfp-ipset"][-1] > series["linuxfp"][-1]
    # crossover: plain LinuxFP beats Polycube only at low rule counts
    assert series["linuxfp"][0] > series["polycube"][0] * 0.9
    assert series["linuxfp"][-1] < series["polycube"][-1]
