"""Fig 3: the JSON processing-graph model and the synthesis steps.

The paper's example: "a JSON model of a bridge with STP and VLAN configured
would have bridge as the key and {STP_enabled: True, VLAN_enabled: True} as
the conf attributes". We configure exactly that (plus routing, to exercise
``next_nf``), print the derived model, and verify the pipeline stages
(introspect → graph → synthesize → verify → deploy) each produce their
artifact.
"""

import json

from repro.core import Controller
from repro.kernel import Kernel
from repro.tools import brctl, bridge_tool, ip, sysctl


def build():
    kernel = Kernel("fig3")
    kernel.add_physical("eth0")
    kernel.add_physical("eth1")
    ip(kernel, "link set eth0 up")
    ip(kernel, "link set eth1 up")
    brctl(kernel, "addbr br0")
    brctl(kernel, "addif br0 eth0")
    brctl(kernel, "stp br0 on")
    bridge_tool(kernel, "link set dev br0 vlan_filtering on")
    ip(kernel, "addr add 10.1.0.1/24 dev br0")
    ip(kernel, "link set br0 up")
    ip(kernel, "addr add 10.2.0.1/24 dev eth1")
    ip(kernel, "route add 10.99.0.0/16 via 10.2.0.2")
    sysctl(kernel, "-w net.ipv4.ip_forward=1")
    controller = Controller(kernel, hook="xdp")
    controller.start()
    return kernel, controller


def test_fig3_processing_graph(benchmark, report):
    kernel, controller = benchmark.pedantic(build, rounds=1, iterations=1)

    model_text = controller.current_graph.to_json()
    model = json.loads(model_text)

    lines = ["derived JSON model (paper Fig 3):"]
    lines += ["  " + line for line in model_text.splitlines()]
    path = controller.deployer.deployed["eth0"].current
    lines.append("")
    lines.append(f"synthesis: {len(path.source.splitlines())} lines of C "
                 f"-> {len(path.program)} verified instructions -> "
                 f"tail-call slot swap #{controller.deployer.deployed['eth0'].swaps}")
    report.table("fig3_graph_model", "Fig 3: processing graph model + synthesis steps", lines)

    # the paper's example conf attributes, verbatim
    bridge_conf = model["eth0"]["bridge"]["conf"]
    assert bridge_conf["STP_enabled"] is True
    assert bridge_conf["VLAN_enabled"] is True
    # next_nf chaining: bridge has L3 (addresses + routes) => router next
    assert model["eth0"]["bridge"]["next_nf"] == "router"
    # the plain L3 uplink gets only a router node
    assert set(model["eth1"].keys()) == {"router"}
    # synthesized source reflects the conf specialization
    assert "vid = ld16" in path.source  # VLAN parsing synthesized in
    assert "fdb_lookup" in path.source and "fib_lookup" in path.source
