"""Fig 9: Kubernetes pod-to-pod throughput vs number of pod pairs.

netperf TCP_RR between Flannel-connected pods, intra-node and inter-node,
with and without LinuxFP (TC hook) on the nodes. Paper: LinuxFP reaches
120 % (intra) / 116 % (inter) of Linux throughput, uniformly across 1–10
pairs — with the CNI plugin completely unmodified.
"""

from repro.measure.k8s_bench import measure_pod_rr

PAIRS = (1, 2, 4, 6, 8, 10)


def run_fig9():
    from repro.measure.k8s_bench import PAIR_SCALING_LOSS

    series = {}
    for intra in (True, False):
        for accelerated in (False, True):
            # one cluster measurement per config; pair scaling derives from it
            base = measure_pod_rr(intra=intra, accelerated=accelerated, pairs=1, transactions=1200)
            row = [
                base.transactions_per_s * pairs * max(0.0, 1.0 - PAIR_SCALING_LOSS * (pairs - 1))
                for pairs in PAIRS
            ]
            label = ("intra" if intra else "inter") + ("-linuxfp" if accelerated else "-linux")
            series[label] = row
    return series


def test_fig9_pod_to_pod_throughput(benchmark, report):
    series = benchmark.pedantic(run_fig9, rounds=1, iterations=1)

    lines = ["pairs            " + " ".join(str(p).rjust(9) for p in PAIRS)]
    for label in ("intra-linux", "intra-linuxfp", "inter-linux", "inter-linuxfp"):
        lines.append(f"{label:16s} " + " ".join(f"{v:9.0f}" for v in series[label]))
    intra_ratio = series["intra-linuxfp"][0] / series["intra-linux"][0]
    inter_ratio = series["inter-linuxfp"][0] / series["inter-linux"][0]
    lines.append(f"(RR transactions/s; ratios: intra={intra_ratio * 100:.0f}%, inter={inter_ratio * 100:.0f}%"
                 f" — paper: 120%/116%)")
    report.table("fig9_k8s_throughput", "Fig 9: pod-to-pod throughput vs pod pairs", lines)

    assert 1.08 < intra_ratio < 1.35
    assert 1.04 < inter_ratio < 1.30
    # throughput grows with pairs for every config
    for label, row in series.items():
        assert row[-1] > row[0] * 5
