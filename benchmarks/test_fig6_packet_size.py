"""Fig 6: single-core router throughput vs packet size.

Paper shape: per-packet cost is nearly size-independent, so pps holds
roughly flat while bits/s grow with the frame; LinuxFP and Polycube reach
near line rate (25 Gbps) at 1500 B with one core, Linux does not.
"""

from repro.measure.scenarios import measure_throughput, setup_router

SIZES = (64, 128, 256, 512, 1024, 1500)
PLATFORMS = ("linux", "linuxfp", "polycube", "vpp")


def run_fig6():
    series = {}
    for platform in PLATFORMS:
        topo = setup_router(platform)
        row = []
        for size in SIZES:
            result = measure_throughput(topo, cores=1, packet_size=size, packets=400)
            row.append((result.mpps, result.gbps))
        series[platform] = row
    return series


def test_fig6_throughput_vs_packet_size(benchmark, report):
    series = benchmark.pedantic(run_fig6, rounds=1, iterations=1)

    header = "platform   " + " ".join(f"{s}B".rjust(12) for s in SIZES)
    lines = [header]
    for platform in PLATFORMS:
        cells = " ".join(f"{mpps:5.2f}/{gbps:5.1f}".rjust(12) for mpps, gbps in series[platform])
        lines.append(f"{platform:10s} {cells}")
    lines.append("(Mpps/Gbps, single core)")
    report.table("fig6_packet_size", "Fig 6: single-core throughput vs packet size", lines)

    # near line rate at 1500B for the fast paths (paper: LinuxFP+Polycube)
    for platform in ("linuxfp", "polycube", "vpp"):
        assert series[platform][-1][1] > 20.0, platform
    # Linux stays clearly below line rate at 1500B
    assert series["linux"][-1][1] < 16.0
    # pps roughly flat across sizes until the line-rate cap binds
    for platform in PLATFORMS:
        small = series[platform][0][0]
        mid = series[platform][2][0]
        assert mid / small > 0.85
