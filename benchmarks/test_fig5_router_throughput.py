"""Fig 5: virtual router throughput as a function of core count.

Paper shape: LinuxFP ≈ 1.77× Linux and ≈ Polycube (±20 %); VPP highest
(vector processing on dedicated 100 %-utilization cores); all scale
near-linearly with cores at 64 B packets (line rate is far away).
"""

import pytest

from repro.measure.scenarios import measure_throughput, setup_router

CORES = (1, 2, 3, 4, 5, 6)
PLATFORMS = ("linux", "linuxfp", "polycube", "vpp")


def run_fig5():
    series = {}
    for platform in PLATFORMS:
        topo = setup_router(platform)
        # one probe per platform; core scaling derives from it
        per_core = measure_throughput(topo, cores=1, packets=1500)
        row = []
        for cores in CORES:
            result = measure_throughput(topo, cores=cores, packets=200)
            row.append(result.mpps)
        series[platform] = (per_core.per_packet_ns, row)
    return series


def test_fig5_router_throughput_vs_cores(benchmark, report):
    series = benchmark.pedantic(run_fig5, rounds=1, iterations=1)

    header = "platform    ns/pkt " + " ".join(f"{c}c".rjust(7) for c in CORES)
    lines = [header]
    for platform in PLATFORMS:
        ns, row = series[platform]
        lines.append(f"{platform:10s} {ns:7.0f} " + " ".join(f"{v:7.2f}" for v in row))
    lines.append("(Mpps, 64B packets, 50 prefixes)")
    report.table("fig5_router_throughput", "Fig 5: virtual router throughput vs cores", lines)

    linux = series["linux"][1]
    linuxfp = series["linuxfp"][1]
    polycube = series["polycube"][1]
    vpp = series["vpp"][1]
    # paper: LinuxFP nearly doubles Linux (77%)
    assert 1.6 < linuxfp[0] / linux[0] < 2.0
    # paper: LinuxFP and Polycube similar
    assert abs(linuxfp[0] - polycube[0]) / polycube[0] < 0.25
    # paper: VPP above the eBPF systems
    assert vpp[0] > linuxfp[0]
    # near-linear core scaling for every platform
    for platform in PLATFORMS:
        row = series[platform][1]
        assert 5.0 < row[5] / row[0] <= 6.0
