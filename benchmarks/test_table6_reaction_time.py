"""Table VI: LinuxFP reaction time per management command.

Wall-clock seconds from the moment the controller sees the configuration
change (netlink notification) to confirmed fast-path deployment —
including graph derivation, template rendering, minic compilation,
verification, loading, and the atomic tail-call swap.

Paper (clang-based pipeline on CloudLab): 0.49–1.03 s. Our pipeline is a
small Python compiler, so absolute times are milliseconds; the comparison
is per-command *relative* cost (the iptables change is the most expensive,
link-level changes the cheapest).
"""

import statistics

from repro.core import Controller
from repro.measure.topology import LineTopology
from repro.tools import brctl, ip, iptables

COMMANDS = [
    ("ip addr add 10.10.1.1/24 dev ens1f0np0", "addr"),
    ("brctl addbr br0", "addbr"),
    ("brctl addif br0 veth11", "addif"),
    ("iptables -d 10.10.3.0/24 -A FORWARD -j DROP", "iptables"),
]


def run_table6():
    topo = LineTopology()
    topo.install_prefixes(50)
    dut = topo.dut
    # the interfaces the commands reference
    dut.add_physical("ens1f0np0")
    ip(dut, "link set ens1f0np0 up")
    dut.add_veth_pair("veth11", "veth11-peer")
    ip(dut, "link set veth11 up")

    controller = Controller(dut, hook="xdp")
    controller.start()

    timings = {}
    before = len(controller.reactions)
    ip(dut, "addr add 10.10.1.1/24 dev ens1f0np0")
    timings["ip addr add 10.10.1.1/24 dev ens1f0np0"] = _elapsed(controller, before)

    before = len(controller.reactions)
    brctl(dut, "addbr br0")
    ip(dut, "link set br0 up")
    timings["brctl addbr br0"] = _elapsed(controller, before)

    before = len(controller.reactions)
    brctl(dut, "addif br0 veth11")
    timings["brctl addif br0 veth11"] = _elapsed(controller, before)

    before = len(controller.reactions)
    iptables(dut, "-A FORWARD -d 10.10.3.0/24 -j DROP")
    timings["iptables -d 10.10.3.0/24 -A FORWARD -j DROP"] = _elapsed(controller, before)
    return timings


def _elapsed(controller, before):
    """Wall time attributed to one command: its largest single reaction.

    A command can emit several netlink notifications (``ip addr add`` also
    announces the connected route); the rebuilds overlap, and the data
    plane is current once the biggest one lands.
    """
    new = controller.reactions[before:]
    return max((r.seconds for r in new), default=0.0)


def test_table6_reaction_time(benchmark, report):
    timings = benchmark.pedantic(run_table6, rounds=1, iterations=1)

    lines = [f"{'Command':50s} {'Time (ms)':>10s}"]
    for command, seconds in timings.items():
        lines.append(f"{command:50s} {seconds * 1e3:10.2f}")
    lines.append("(wall-clock; paper reports 0.49-1.03 s with a clang pipeline)")
    report.table("table6_reaction_time", "Table VI: LinuxFP reaction time", lines)

    values = list(timings.values())
    # every command produced a reaction, sub-second
    assert all(0 < v < 1.0 for v in values)
    # the iptables change (full filter+router resynthesis on every
    # interface) is among the most expensive, as in the paper
    assert timings["iptables -d 10.10.3.0/24 -A FORWARD -j DROP"] >= 0.75 * max(values)
    # pure-evaluation commands are much cheaper than resynthesizing ones
    assert timings["brctl addbr br0"] < timings["iptables -d 10.10.3.0/24 -A FORWARD -j DROP"]
