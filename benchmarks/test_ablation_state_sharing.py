"""Ablation: helper-based state sharing vs duplicated map-based state.

LinuxFP reads kernel tables through helpers, so a control-plane change is
visible to the very next packet. A map-mirroring platform (Polycube-style)
must re-synchronize its own tables; until its control plane is told, the
data plane follows stale state. We change a route mid-stream on both
systems — using the kernel API for LinuxFP and observing that the same
kernel API does nothing for Polycube — and count stale deliveries.
"""

from repro.core import Controller
from repro.measure.scenarios import setup_router
from repro.measure.topology import LineTopology
from repro.netsim.packet import Packet, make_udp
from repro.platforms import Polycube
from repro.tools import ip

FLOW_DST = "10.100.0.1"


def drive(topo, count):
    outs = []
    topo.sink_eth.nic.attach(lambda frame, q: outs.append(Packet.from_bytes(frame)))
    frame = make_udp(topo.src_eth.mac, topo.dut_in.mac, "10.0.1.2", FLOW_DST).to_bytes()
    for __ in range(count):
        topo.dut_in.nic.receive_from_wire(frame)
    return outs


def run_ablation():
    results = {}

    # LinuxFP: route change through the standard API is instantly coherent
    topo = setup_router("linuxfp", num_prefixes=1)
    drive(topo, 5)
    # retarget 10.100.0.0/16 to a new next hop (back out eth0)
    ip(topo.dut, "route del 10.100.0.0/16")
    ip(topo.dut, "route add 10.100.0.0/16 via 10.0.1.2")
    topo.dut.neigh_add("eth0", "10.0.1.2", topo.src_eth.mac)
    outs_after = drive(topo, 10)
    results["linuxfp_stale"] = len(outs_after)  # still egressing eth1 = stale

    # Polycube: the same kernel-API route change does not reach its maps
    topo = setup_router("polycube", num_prefixes=1)
    drive(topo, 5)
    topo.dut.sysctl_set("net.ipv4.ip_forward", "1")
    ip(topo.dut, "route add 10.100.0.0/16 via 10.0.1.2")  # kernel-only change
    outs_after = drive(topo, 10)
    results["polycube_stale"] = len(outs_after)
    # only an explicit pcn command fixes it
    topo.polycube.pcn_router(f"del route 10.100.0.0/16")
    outs_fixed = drive(topo, 10)
    results["polycube_after_pcn"] = len(outs_fixed)
    return results


def test_ablation_state_sharing(benchmark, report):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    lines = [
        "after retargeting the route away from the sink (10 packets sent):",
        f"  LinuxFP  (kernel API change):   {results['linuxfp_stale']} stale deliveries",
        f"  Polycube (kernel API change):   {results['polycube_stale']} stale deliveries",
        f"  Polycube (after pcn-router cmd): {results['polycube_after_pcn']} stale deliveries",
        "(helpers read live kernel state; duplicated maps need their own resync)",
    ]
    report.table("ablation_state_sharing", "Ablation: helper state sharing vs map mirroring", lines)

    assert results["linuxfp_stale"] == 0  # coherent immediately
    assert results["polycube_stale"] == 10  # every packet followed stale maps
    assert results["polycube_after_pcn"] == 0
