"""Fig 7: virtual gateway (forwarding + 100-rule IP blacklist) throughput
vs cores.

Paper shape: LinuxFP nearly doubles Linux; plain-iptables LinuxFP inherits
the linear rule scan, but ipset aggregation lets it beat Polycube; VPP
above all.
"""

from repro.measure.scenarios import measure_throughput, setup_gateway

CORES = (1, 2, 3, 4, 5, 6)
VARIANTS = (
    ("linux", {}),
    ("linuxfp", {}),
    ("linuxfp-ipset", {"use_ipset": True}),
    ("polycube", {}),
    ("vpp", {}),
)


def run_fig7():
    series = {}
    for name, kwargs in VARIANTS:
        platform = name.split("-")[0]
        topo = setup_gateway(platform, **kwargs)
        row = [measure_throughput(topo, cores=c, packets=250).mpps for c in CORES]
        series[name] = row
    return series


def test_fig7_gateway_throughput_vs_cores(benchmark, report):
    series = benchmark.pedantic(run_fig7, rounds=1, iterations=1)

    header = "variant         " + " ".join(f"{c}c".rjust(7) for c in CORES)
    lines = [header]
    for name, __ in VARIANTS:
        lines.append(f"{name:15s} " + " ".join(f"{v:7.2f}" for v in series[name]))
    lines.append("(Mpps, 64B packets, 100 blacklist rules + 50 prefixes)")
    report.table("fig7_gateway_throughput", "Fig 7: virtual gateway throughput vs cores", lines)

    # paper: LinuxFP nearly doubles Linux for this use case
    assert series["linuxfp"][0] / series["linux"][0] > 1.35
    # paper: ipset aggregation beats Polycube; plain rules do not
    assert series["linuxfp-ipset"][0] > series["polycube"][0]
    assert series["linuxfp"][0] < series["polycube"][0]
    # VPP on top
    assert series["vpp"][0] > series["linuxfp-ipset"][0]
