"""Table IV: virtual gateway RTT with a single core (µs).

Paper: Linux 388.9, Linux(ipset) 331.5, Polycube 181.5, VPP 85.6,
LinuxFP 212.8, LinuxFP(ipset) 161.5 — LinuxFP with ipset beats Polycube.
"""

from repro.measure.scenarios import measure_latency, setup_gateway

VARIANTS = (
    ("linux", "linux", {}),
    ("linux-ipset", "linux", {"use_ipset": True}),
    ("polycube", "polycube", {}),
    ("vpp", "vpp", {}),
    ("linuxfp", "linuxfp", {}),
    ("linuxfp-ipset", "linuxfp", {"use_ipset": True}),
)


def run_table4():
    return {
        name: measure_latency(setup_gateway(platform, **kwargs), transactions=3000)
        for name, platform, kwargs in VARIANTS
    }


def test_table4_gateway_rtt(benchmark, report):
    rows = benchmark.pedantic(run_table4, rounds=1, iterations=1)

    lines = [f"{'':15s} {'Avg.':>10s} {'P_99':>10s} {'Std.Dev':>10s}"]
    for name, __, __kw in VARIANTS:
        result = rows[name]
        lines.append(f"{name:15s} {result.avg_us:10.3f} {result.p99_us:10.3f} {result.std_us:10.3f}")
    lines.append("(µs; single core, 128 sessions, 100 blacklist rules)")
    report.table("table4_gateway_latency", "Table IV: virtual gateway RTT, single core", lines)

    # orderings the paper reports
    assert rows["linuxfp"].avg_us < rows["linux"].avg_us
    assert rows["linux-ipset"].avg_us < rows["linux"].avg_us
    assert rows["linuxfp-ipset"].avg_us < rows["linuxfp"].avg_us
    assert rows["linuxfp-ipset"].avg_us < rows["polycube"].avg_us  # the ipset win
    assert rows["polycube"].avg_us < rows["linuxfp"].avg_us  # plain rules lose
    assert rows["vpp"].avg_us < rows["linuxfp-ipset"].avg_us
