"""Table III: virtual router RTT with a single core (µs).

128 parallel netperf TCP_RR sessions saturate the DUT core. Paper:
Linux 326.9/512.4, Polycube 145.8/269.8, VPP 85.6/182.3, LinuxFP
151.7/279.4 (avg/P99 µs) — LinuxFP ≈ 53 % below Linux, ≈ Polycube.
"""

from repro.measure.scenarios import measure_latency, setup_router

PLATFORMS = ("linux", "polycube", "vpp", "linuxfp")


def run_table3():
    return {
        platform: measure_latency(setup_router(platform), transactions=3000)
        for platform in PLATFORMS
    }


def test_table3_router_rtt(benchmark, report):
    rows = benchmark.pedantic(run_table3, rounds=1, iterations=1)

    lines = [f"{'':10s} {'Avg.':>10s} {'P_99':>10s} {'Std.Dev':>10s}"]
    for platform in PLATFORMS:
        result = rows[platform]
        lines.append(f"{platform:10s} {result.avg_us:10.3f} {result.p99_us:10.3f} {result.std_us:10.3f}")
    lines.append("(µs; single core, 128 netperf TCP_RR sessions)")
    report.table("table3_router_latency", "Table III: virtual router RTT, single core", lines)

    linux, linuxfp = rows["linux"], rows["linuxfp"]
    polycube, vpp = rows["polycube"], rows["vpp"]
    # paper: ~53% latency reduction vs Linux
    assert 0.40 < linuxfp.avg_us / linux.avg_us < 0.65
    # paper: LinuxFP ≈ Polycube
    assert abs(linuxfp.avg_us - polycube.avg_us) / polycube.avg_us < 0.20
    # paper: VPP lowest
    assert vpp.avg_us < linuxfp.avg_us
    # tails: P99 above mean for everyone
    for platform in PLATFORMS:
        assert rows[platform].p99_us > rows[platform].avg_us
